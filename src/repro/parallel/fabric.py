"""The multicore fabric: worker pool, dispatcher, and parallel service.

This is the front end of :mod:`repro.parallel`.  A
:class:`WorkerPool` packs every shard's replicated table into shared
memory once (:func:`~repro.parallel.shm.pack_table`), boots ``procs``
worker processes, and wires one request + one response SPSC ring per
worker (:mod:`repro.parallel.ring`).  A
:class:`ParallelDictionaryService` then reuses the *entire* in-process
serving brain — keyspace sharding, micro-batching, routing policies,
admission control from :class:`~repro.serve.service.
ShardedDictionaryService` — and swaps only the execution engine: where
the in-process service runs ``query_batch_on`` inline, the parallel
service ships each routed group to a worker as one raw ``uint64``
frame and reads the packed answers back.

**Determinism.**  All nondeterminism lives in the single-threaded
dispatcher: batching, routing, and one RNG draw per routed group (the
group's probe seed).  A worker's execution is the pure function
``(group_seed, keys, replica) -> (answers, probes)``, so *which*
worker runs a group cannot change any answer or any per-cell count —
the merged worker counters are byte-identical (same
:meth:`~repro.cellprobe.counters.ProbeCounter.digest`) to the
``procs=0`` inline engine running the same plan, for any worker count.
That is the E22 equivalence gate.

**Failure model.**  A crashed worker is detected while collecting
responses; its finished responses are drained from its ring (shared
memory outlives the process), its unfinished groups are resent to a
survivor, and the pool can rebuild the dead slot with
:meth:`WorkerPool.respawn` (fresh rings, same table and counter
segments — probes already charged stay charged, honest accounting).
Only a fabric with *no* live workers raises
:class:`~repro.errors.FabricError`.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import pickle
import subprocess
import sys
import tempfile
import time
import zlib
from pathlib import Path

import numpy as np

import repro
from repro.cellprobe.counters import ProbeCounter
from repro.errors import FabricError, ParameterError, RingFullError
from repro.parallel.ring import (
    FRAME_QUERY,
    FRAME_RESPONSE,
    RingBuffer,
)
from repro.parallel.shm import (
    KIND_TABLE,
    LINE_WORDS,
    create_counter_segment,
    destroy_segment,
    pack_table,
    read_counter,
    segment_name,
    verify_header,
)
from repro.parallel.worker import unpack_answers
from repro.serve.service import ShardedDictionaryService, build_service
from repro.utils.validation import check_positive_integer

#: Preallocated step capacity of each worker's shared counter matrix.
#: Far above any scheme's probe depth; exceeding it is a typed error.
DEFAULT_MAX_STEPS = 48

#: Default ring capacity in ``uint64`` words (512 KiB per ring).
DEFAULT_RING_WORDS = 1 << 16

#: Words of frame header before the keys: [gid, shard, replica, seed, n].
_QUERY_HEAD = 5


@dataclasses.dataclass
class FabricStats:
    """Lifetime counters of the dispatch fabric itself."""

    groups: int = 0
    failovers: int = 0
    respawns: int = 0
    ring_full_retries: int = 0
    kills: int = 0
    segment_corruptions: int = 0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _Group:
    """One routed group in flight: the unit of fabric dispatch."""

    gid: int
    shard: int
    replica: int
    seed: int
    keys: np.ndarray
    positions: np.ndarray
    worker_id: int = -1

    def payload(self) -> np.ndarray:
        """The group's request frame payload (uint64 words)."""
        head = np.array(
            [self.gid, self.shard, self.replica, self.seed, self.keys.size],
            dtype=np.uint64,
        )
        return np.concatenate([head, self.keys.astype(np.uint64)])


@dataclasses.dataclass
class WorkerHandle:
    """One worker slot: its process, rings, and on-disk boot files."""

    worker_id: int
    proc: subprocess.Popen
    req: RingBuffer
    resp: RingBuffer
    spec_path: str
    stderr_path: str
    alive: bool = True

    def poll_dead(self) -> bool:
        """Refresh and return whether the worker process has exited."""
        if self.alive and self.proc.poll() is not None:
            self.alive = False
        return not self.alive


class WorkerPool:
    """Owns the fabric's processes and every shared segment they use.

    The pool is the single *owner* in the shared-memory protocol: it
    creates (and is the only thing that ever unlinks) the table
    segments, the per-worker counter segments, and the rings.  Workers
    only attach and close.  :meth:`close` is idempotent and registered
    with ``atexit``, so even an interrupted session leaves ``/dev/shm``
    clean (the segment layer adds a second atexit net of its own).
    """

    def __init__(
        self,
        shards,
        procs: int,
        max_steps: int = DEFAULT_MAX_STEPS,
        ring_words: int = DEFAULT_RING_WORDS,
        prefix: str = "repro",
        boot_timeout: float = 60.0,
    ):
        self.procs = check_positive_integer("procs", procs)
        self.max_steps = check_positive_integer("max_steps", max_steps)
        self.ring_words = int(ring_words)
        self.boot_timeout = float(boot_timeout)
        self._prefix = prefix
        self._shards = list(shards)
        self._closed = False
        self.table_segs = [
            pack_table(segment_name(prefix, f"tab{i}"), s.table)
            for i, s in enumerate(self._shards)
        ]
        # counter_segs[w][i]: worker w's counter for shard i.  One per
        # (worker, shard) so merging them is the whole accounting story.
        self.counter_segs = [
            [
                create_counter_segment(
                    segment_name(prefix, f"cnt{w}s{i}"),
                    max_steps,
                    s.table.counter.num_cells,
                )
                for i, s in enumerate(self._shards)
            ]
            for w in range(self.procs)
        ]
        self.workers: list[WorkerHandle] = [
            self._spawn(w) for w in range(self.procs)
        ]
        atexit.register(self.close)
        self.wait_ready()

    # -- boot ------------------------------------------------------------------

    def _spawn(self, w: int) -> WorkerHandle:
        """Create rings + spec for slot ``w`` and boot its process."""
        req = RingBuffer.create(
            segment_name(self._prefix, f"req{w}"), self.ring_words
        )
        resp = RingBuffer.create(
            segment_name(self._prefix, f"rsp{w}"), self.ring_words
        )
        spec = {
            "worker_id": w,
            "req_ring": req.seg.name,
            "resp_ring": resp.seg.name,
            "shards": [
                {
                    "inner": s.inner,
                    "replicas": s.replicas,
                    "table_seg": self.table_segs[i].name,
                    "counter_seg": self.counter_segs[w][i].name,
                }
                for i, s in enumerate(self._shards)
            ],
        }
        fd, spec_path = tempfile.mkstemp(
            prefix="repro-fabric-spec-", suffix=".pkl"
        )
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(spec, fh)
        err_fd, stderr_path = tempfile.mkstemp(
            prefix="repro-fabric-worker-", suffix=".log"
        )
        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel.worker", spec_path],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=err_fd,
        )
        os.close(err_fd)
        return WorkerHandle(w, proc, req, resp, spec_path, stderr_path)

    def wait_ready(self) -> None:
        """Block until every live worker verified its segments and is serving."""
        deadline = time.monotonic() + self.boot_timeout
        for h in self.workers:
            if not h.alive:
                continue
            while not h.req.ready:
                if h.poll_dead() or time.monotonic() > deadline:
                    raise FabricError(
                        f"worker {h.worker_id} failed to become ready "
                        f"(exit={h.proc.poll()}): {self._stderr_tail(h)}"
                    )
                time.sleep(0.005)

    def _stderr_tail(self, h: WorkerHandle) -> str:
        """Last line of a worker's captured stderr, for diagnostics."""
        try:
            with open(h.stderr_path, "r", errors="replace") as fh:
                lines = [ln.strip() for ln in fh if ln.strip()]
            return lines[-1] if lines else "(no stderr)"
        except OSError:  # pragma: no cover - boot race
            return "(stderr unavailable)"

    # -- health ----------------------------------------------------------------

    def live_workers(self) -> list[WorkerHandle]:
        """Workers whose process is still running (refreshes liveness)."""
        return [h for h in self.workers if not h.poll_dead()]

    def respawn(self, worker_id: int) -> WorkerHandle:
        """Rebuild a dead worker slot: fresh rings, same table/counters.

        The old rings are destroyed (their cursors are in an unknown
        state after a crash); the counter segments are *kept*, so every
        probe the dead worker already charged stays charged — crash
        recovery never falsifies the accounting.
        """
        old = self.workers[worker_id]
        if not old.poll_dead():
            raise ParameterError(
                f"worker {worker_id} is still alive; stop it first"
            )
        self._reap(old)
        self.workers[worker_id] = self._spawn(worker_id)
        self.wait_ready()
        return self.workers[worker_id]

    def _reap(self, h: WorkerHandle) -> None:
        """Destroy one dead slot's rings and boot files."""
        for ring in (h.req, h.resp):
            ring.close()
            destroy_segment(ring.seg)
        for path in (h.spec_path, h.stderr_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- fault injection (the chaos/adversary surface) --------------------------

    def kill_worker(self, worker_id: int) -> bool:
        """SIGKILL one live worker slot; the red-team crash primitive.

        Refuses (returns ``False``) when the target is already dead or
        is the *last* live worker — a fabric with no workers cannot
        fail over, so the adversary is never allowed to orphan it.
        The slot stays rebuildable via :meth:`respawn`, and every probe
        the victim already charged stays in its counter segment.
        """
        worker_id = int(worker_id)
        if not 0 <= worker_id < self.procs:
            raise ParameterError(
                f"worker_id must be in [0, {self.procs}), got {worker_id}"
            )
        h = self.workers[worker_id]
        if h.poll_dead():
            return False
        if len(self.live_workers()) <= 1:
            return False
        h.proc.kill()
        h.proc.wait()
        h.poll_dead()
        return True

    def corrupt_table_segment(self, shard: int, cells, masks) -> bool:
        """XOR masks into a shared table's packed payload words.

        Flips bits directly in the shared pages every worker serves
        from — the header (and its payload CRC) is left untouched, so
        already-attached workers keep serving the corrupted cells while
        any *fresh* attach fails payload verification.  Word indices
        wrap modulo the payload size; returns ``False`` when there is
        nothing to apply.
        """
        if not 0 <= int(shard) < len(self._shards):
            raise ParameterError(
                f"shard must be in [0, {len(self._shards)}), got {shard}"
            )
        cells = [int(c) for c in cells]
        masks = [int(m) & 0xFFFFFFFFFFFFFFFF for m in masks]
        if not cells or not masks:
            return False
        seg = self.table_segs[int(shard)]
        table = self._shards[int(shard)].table
        nwords = table.rows * table.s
        word_size = np.dtype(np.uint64).itemsize
        words = np.ndarray(
            nwords, dtype=np.uint64, buffer=seg.buf,
            offset=LINE_WORDS * word_size,
        )
        applied = False
        for cell, mask in zip(cells, masks):
            if mask == 0:
                continue
            words[cell % nwords] ^= np.uint64(mask)
            applied = True
        return applied

    def table_crc_ok(self, shard: int) -> bool:
        """Recompute one table segment's payload CRC against its header.

        ``True`` while the shared pages still match the checksum stamped
        at :func:`~repro.parallel.shm.pack_table` time — i.e. no
        :meth:`corrupt_table_segment` damage (or any other writer) has
        touched the payload.
        """
        seg = self.table_segs[int(shard)]
        rows, s, payload_crc = verify_header(seg.buf, KIND_TABLE, seg.name)
        word_size = np.dtype(np.uint64).itemsize
        view = np.ndarray(
            (rows, s), dtype=np.uint64, buffer=seg.buf,
            offset=LINE_WORDS * word_size,
        )
        return (zlib.crc32(view.tobytes()) & 0xFFFFFFFF) == payload_crc

    # -- introspection ----------------------------------------------------------

    def queue_depths(self) -> list[int]:
        """Live request-ring depth (words) per worker slot."""
        return [h.req.depth_words for h in self.workers]

    def merged_counter(self, shard: int) -> ProbeCounter:
        """Merge every worker's shared counter for ``shard`` into one.

        The merge is element-wise addition over per-step matrices
        (:meth:`ProbeCounter.merge`), so the result is exactly what one
        in-process counter would have recorded for the same groups.
        """
        num_cells = self._shards[shard].table.counter.num_cells
        merged = ProbeCounter(num_cells)
        for w in range(self.procs):
            merged.merge(read_counter(self.counter_segs[w][shard]))
        return merged

    # -- teardown ---------------------------------------------------------------

    def close(self) -> None:
        """Stop workers, then unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for h in self.workers:
            if not h.poll_dead():
                h.req.set_stop()
                h.resp.set_stop()
        deadline = time.monotonic() + 5.0
        for h in self.workers:
            if h.proc.poll() is None:
                try:
                    h.proc.wait(
                        timeout=max(0.1, deadline - time.monotonic())
                    )
                except subprocess.TimeoutExpired:  # pragma: no cover
                    h.proc.kill()
                    h.proc.wait()
            self._reap(h)
        for seg in self.table_segs:
            destroy_segment(seg)
        for per_worker in self.counter_segs:
            for seg in per_worker:
                destroy_segment(seg)


class ParallelDictionaryService(ShardedDictionaryService):
    """The in-process serving brain driving out-of-process muscle.

    Subclasses :class:`~repro.serve.service.ShardedDictionaryService`
    and keeps its entire request path — ``submit``/``advance``/
    ``drain`` tickets, micro-batching, admission control, per-shard
    routers — replacing only batch *execution*:

    - ``procs >= 1``: each routed group becomes one request frame on a
      worker's ring; workers run the group against the shared table and
      respond with packed answers (the **process engine**);
    - ``procs == 0``: the same dispatch plan (same routing, same
      per-group seeds) executes inline (the **inline engine**) — the
      reference the equivalence tests compare digests against.

    Either way, per-group probe RNGs are seeded from one dispatcher
    draw, so answers and merged probe accounting are independent of
    the engine and of the worker count.
    """

    def __init__(
        self,
        shards,
        boundaries,
        procs: int = 2,
        router: str = "least-loaded",
        max_batch: int = 32,
        max_delay: float = 1.0,
        capacity: int = 1024,
        probe_time: float = 0.0,
        seed=0,
        max_steps: int = DEFAULT_MAX_STEPS,
        ring_words: int = DEFAULT_RING_WORDS,
        dispatch_timeout: float = 60.0,
    ):
        super().__init__(
            shards,
            boundaries,
            router=router,
            max_batch=max_batch,
            max_delay=max_delay,
            capacity=capacity,
            probe_time=probe_time,
            seed=seed,
        )
        if int(procs) < 0:
            raise ParameterError(f"procs must be >= 0, got {procs}")
        self.procs = int(procs)
        self._max_batch = check_positive_integer("max_batch", max_batch)
        self.dispatch_timeout = float(dispatch_timeout)
        self.fabric_stats = FabricStats()
        self._group_id = 0
        self._next_worker = 0
        self.pool = (
            WorkerPool(
                self.shards, self.procs,
                max_steps=max_steps, ring_words=ring_words,
            )
            if self.procs >= 1
            else None
        )

    # -- healing is an in-process feature ---------------------------------------

    def enable_healing(self, config=None, seed=0):
        """Unsupported on the fabric: worker crash recovery replaces it.

        The in-process healing layer (scrub, witness dispatch, replica
        rebuild) manipulates replica state the dispatcher no longer
        executes against.  The fabric's failure story is worker-level:
        crash failover plus :meth:`WorkerPool.respawn`.  Raises
        :class:`~repro.errors.ParameterError` unconditionally.
        """
        raise ParameterError(
            "healing runs in-process only; the parallel fabric handles "
            "worker crashes via failover + WorkerPool.respawn"
        )

    # -- engine -----------------------------------------------------------------

    def _make_group(self, shard, replica, keys, positions) -> _Group:
        """Stamp a routed group with its id and probe seed (one RNG draw)."""
        g = _Group(
            gid=self._group_id,
            shard=int(shard),
            replica=int(replica),
            seed=int(self._rng.integers(0, 2**63 - 1)),
            keys=np.asarray(keys, dtype=np.int64),
            positions=np.asarray(positions, dtype=np.int64),
        )
        self._group_id += 1
        self.fabric_stats.groups += 1
        return g

    def _pick_worker(self) -> WorkerHandle:
        """Deterministic round-robin over live workers."""
        live = self.pool.live_workers()
        if not live:
            raise FabricError("no live workers to dispatch to")
        h = live[self._next_worker % len(live)]
        self._next_worker += 1
        return h

    def _send_group(self, g: _Group) -> None:
        """Enqueue one group, draining responses under backpressure."""
        payload = g.payload()
        deadline = time.monotonic() + self.dispatch_timeout
        while True:
            h = self._pick_worker()
            try:
                h.req.enqueue(FRAME_QUERY, payload)
                g.worker_id = h.worker_id
                return
            except RingFullError:
                self.fabric_stats.ring_full_retries += 1
                if time.monotonic() > deadline:
                    raise FabricError(
                        f"request ring stayed full past "
                        f"{self.dispatch_timeout}s deadline"
                    ) from None
                time.sleep(1e-4)

    def _execute(self, groups: list[_Group]) -> dict[int, tuple]:
        """Run groups on the configured engine: ``gid -> (answers, probes)``."""
        if self.procs == 0:
            return self._execute_inline(groups)
        return self._execute_procs(groups)

    def _execute_inline(self, groups: list[_Group]) -> dict[int, tuple]:
        """Reference engine: the identical plan, run in this process."""
        results: dict[int, tuple] = {}
        for g in groups:
            counter = self.shards[g.shard].table.counter
            before = counter.total_probes()
            answers = self.shards[g.shard].query_batch_on(
                g.keys, g.replica, np.random.default_rng(g.seed)
            )
            results[g.gid] = (
                np.asarray(answers, dtype=bool),
                counter.total_probes() - before,
            )
        return results

    def _execute_procs(self, groups: list[_Group]) -> dict[int, tuple]:
        """Process engine: ship every group, then collect with failover."""
        pending: dict[int, _Group] = {}
        for g in groups:
            self._send_group(g)
            pending[g.gid] = g
        return self._collect(pending)

    def _collect(self, pending: dict[int, _Group]) -> dict[int, tuple]:
        """Await every pending group's response, failing over crashes.

        Dead workers' finished responses are drained first (their
        rings outlive them in shared memory); only then do their
        unfinished groups resend to survivors.
        """
        results: dict[int, tuple] = {}
        deadline = time.monotonic() + self.dispatch_timeout
        while pending:
            progress = False
            for h in self.workers_for_collection():
                for kind, payload in h.resp.consume_batch(128):
                    if kind != FRAME_RESPONSE:
                        continue
                    gid, nkeys, probes = (
                        int(payload[0]), int(payload[1]), int(payload[2]),
                    )
                    g = pending.pop(gid, None)
                    if g is None:
                        continue
                    results[gid] = (
                        unpack_answers(payload[3:], nkeys), probes
                    )
                    progress = True
            if not pending:
                break
            progress |= self._failover(pending)
            if progress:
                deadline = time.monotonic() + self.dispatch_timeout
            else:
                if time.monotonic() > deadline:
                    raise FabricError(
                        f"fabric made no progress for "
                        f"{self.dispatch_timeout}s with "
                        f"{len(pending)} groups outstanding"
                    )
                time.sleep(1e-4)
        return results

    def workers_for_collection(self) -> list[WorkerHandle]:
        """All worker slots with usable rings — dead ones included.

        A crashed worker's response ring lives in shared memory, so
        responses it finished before dying are still collectable; only
        after that drain do its unfinished groups fail over.
        """
        return list(self.pool.workers)

    def _failover(self, pending: dict[int, _Group]) -> bool:
        """Resend any pending group whose worker died; True if any moved."""
        dead_ids = {
            h.worker_id for h in self.pool.workers if h.poll_dead()
        }
        moved = False
        for g in pending.values():
            if g.worker_id in dead_ids:
                self.fabric_stats.failovers += 1
                self._send_group(g)
                moved = True
        return moved

    # -- ticket path (overrides the in-process execution only) ------------------

    def _dispatch(self, shard: int, batch) -> int:
        """Route one flushed batch, execute on the engine, complete tickets."""
        router = self.routers[shard]
        tickets = batch.requests
        hub = self.telemetry
        batch_span = (
            hub.on_batch(shard, batch, tickets) if hub is not None else None
        )
        xs = np.asarray([t.key for t in tickets], dtype=np.int64)
        assignment = router.assign(xs.shape[0])
        order = np.arange(xs.shape[0])
        groups = []
        for replica in np.unique(assignment):
            sel = order[assignment == replica]
            groups.append(self._make_group(shard, int(replica), xs[sel], sel))
            if hub is not None:
                hub.on_route(
                    shard, int(replica), router.name, int(sel.size),
                    float(batch.flushed), batch_span,
                )
        results = self._execute(groups)
        now = float(batch.flushed)
        busy = self._busy_until[shard]
        for g in groups:
            answers, probes = results[g.gid]
            router.record(g.replica, probes)
            self.stats.probes += probes
            start = max(now, float(busy[g.replica]))
            finish = start + probes * self.probe_time
            busy[g.replica] = finish
            if hub is not None:
                hub.on_dispatch(
                    g.shard, g.replica, probes, start, finish, batch_span,
                )
            for pos, i in enumerate(g.positions):
                tickets[i].answer = bool(answers[pos])
                tickets[i].completion = finish
                tickets[i].replica = g.replica
        self.stats.batches += 1
        done = [t for t in tickets if t.done]
        self.admission.release(len(done))
        self.stats.completed += len(done)
        if hub is not None:
            hub.on_batch_done(shard, done, batch_span, service=self)
        if self.on_complete is not None and done:
            self.on_complete(done)
        return len(done)

    # -- bulk path (the E22 throughput surface) ---------------------------------

    def query_batch(self, xs: np.ndarray) -> np.ndarray:
        """Serve a key array through the fabric, pipelined, in one call.

        The bulk surface E22 measures: keys are sharded and chunked
        exactly like the ticket path (``max_batch`` per routed batch,
        one router assignment per chunk), every routed group is shipped
        before the first response is awaited — so all workers run
        concurrently — and the answers come back in input order.
        Bypasses admission control: this is a closed-loop measurement
        surface, not an open-loop server.
        """
        xs = np.asarray(xs, dtype=np.int64)
        if xs.ndim != 1:
            raise ParameterError("query_batch expects a 1-d key array")
        shard_of_each = (
            np.searchsorted(self._boundaries, xs, side="right") - 1
        )
        groups: list[_Group] = []
        for shard in range(self.num_shards):
            idx = np.nonzero(shard_of_each == shard)[0]
            router = self.routers[shard]
            for lo in range(0, idx.size, self._max_batch):
                sel = idx[lo:lo + self._max_batch]
                assignment = router.assign(sel.size)
                for replica in np.unique(assignment):
                    pick = sel[assignment == replica]
                    groups.append(
                        self._make_group(shard, int(replica), xs[pick], pick)
                    )
        results = self._execute(groups)
        answers = np.zeros(xs.size, dtype=bool)
        for g in groups:
            got, probes = results[g.gid]
            self.routers[g.shard].record(g.replica, probes)
            self.stats.probes += probes
            answers[g.positions] = got
        self.stats.batches += 1
        return answers

    # -- accounting + metrics ----------------------------------------------------

    def merged_counter(self, shard: int = 0) -> ProbeCounter:
        """One shard's complete probe accounting, engine-independent.

        Process engine: the element-wise merge of every worker's shared
        counter.  Inline engine: a copy of the shard's own counter.
        Digest equality across engines and worker counts is the E22
        equivalence gate.
        """
        if self.pool is not None:
            return self.pool.merged_counter(shard)
        merged = ProbeCounter(self.shards[shard].table.counter.num_cells)
        return merged.merge(self.shards[shard].table.counter)

    def queue_depths(self) -> list[int]:
        """Per-worker request-ring depth in words (empty list inline)."""
        return self.pool.queue_depths() if self.pool is not None else []

    def respawn_worker(self, worker_id: int) -> WorkerHandle:
        """Rebuild one dead worker slot (see :meth:`WorkerPool.respawn`).

        The fabric's replica-rebuild analogue: the slot comes back with
        fresh rings against the same shared tables and counters, and
        the respawn is counted in :attr:`fabric_stats`.
        """
        handle = self.pool.respawn(worker_id)
        self.fabric_stats.respawns += 1
        return handle

    def apply_fabric_event(self, event) -> bool:
        """Apply one fabric-level chaos event; ``True`` if it landed.

        The hook :func:`~repro.serve.chaos._apply_event` dispatches
        ``FABRIC_KINDS`` through.  ``kill-worker`` SIGKILLs the slot
        ``event.worker`` (wrapped modulo ``procs``); ``corrupt-segment``
        XORs ``event.masks`` into ``event.cells`` (flat packed words) of
        ``event.shard``'s shared table.  Returns ``False`` — the event
        is *skipped*, not an error — on the inline engine (no pool), on
        a spared last-live-worker kill, or on an empty corruption.
        """
        if self.pool is None:
            return False
        if event.kind == "kill-worker":
            victim = int(event.worker) % self.procs if self.procs else 0
            if self.pool.kill_worker(victim):
                self.fabric_stats.kills += 1
                return True
            return False
        if event.kind == "corrupt-segment":
            shard = int(event.shard) % self.num_shards
            if self.pool.corrupt_table_segment(
                shard, event.cells, event.masks
            ):
                self.fabric_stats.segment_corruptions += 1
                return True
            return False
        return False

    def export_metrics(self, registry) -> None:
        """Publish fabric gauges/counters into a MetricsRegistry.

        Sets ``repro_parallel_queue_depth_w{i}`` and
        ``repro_parallel_worker_up_w{i}`` per worker plus fabric-level
        group/failover counters — the ``serve --metrics`` surface.
        """
        depths = self.queue_depths()
        live = (
            {h.worker_id for h in self.pool.live_workers()}
            if self.pool is not None
            else set()
        )
        for w, depth in enumerate(depths):
            registry.gauge(
                f"repro_parallel_queue_depth_w{w}",
                "Request-ring depth (words) of one fabric worker.",
            ).set(float(depth))
            registry.gauge(
                f"repro_parallel_worker_up_w{w}",
                "1 if the fabric worker process is alive, else 0.",
            ).set(1.0 if w in live else 0.0)
        registry.gauge(
            "repro_parallel_workers",
            "Number of worker processes in the fabric pool.",
        ).set(float(self.procs))
        registry.gauge(
            "repro_parallel_groups_total",
            "Routed groups dispatched by the fabric.",
        ).set(float(self.fabric_stats.groups))
        registry.gauge(
            "repro_parallel_failovers_total",
            "Groups resent after a worker crash.",
        ).set(float(self.fabric_stats.failovers))

    def close(self) -> None:
        """Tear the pool down (idempotent; inline engine is a no-op)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ParallelDictionaryService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the pool."""
        self.close()


def build_parallel_service(
    keys: np.ndarray,
    universe_size: int,
    procs: int = 2,
    num_shards: int = 1,
    replicas: int = 3,
    scheme: str = "low-contention",
    router: str = "least-loaded",
    max_batch: int = 32,
    max_delay: float = 1.0,
    capacity: int = 1024,
    probe_time: float = 0.0,
    seed=0,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ParallelDictionaryService:
    """Construct a fabric service: build shards in-process, then share them.

    Mirrors :func:`~repro.serve.service.build_service` (same sharding,
    same construction seeds for the same ``seed``) and wraps the result
    in a :class:`ParallelDictionaryService` with ``procs`` workers
    (``procs=0`` selects the inline reference engine).
    """
    built = build_service(
        keys,
        universe_size,
        num_shards=num_shards,
        replicas=replicas,
        scheme=scheme,
        router=router,
        max_batch=max_batch,
        max_delay=max_delay,
        capacity=capacity,
        probe_time=probe_time,
        seed=seed,
    )
    return ParallelDictionaryService(
        built.shards,
        [int(b) for b in built._boundaries],
        procs=procs,
        router=router,
        max_batch=max_batch,
        max_delay=max_delay,
        capacity=capacity,
        probe_time=probe_time,
        seed=seed,
        max_steps=max_steps,
    )
