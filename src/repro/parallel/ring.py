"""Cache-line-padded SPSC ring buffers over shared memory.

The fabric's hot path: one request ring and one response ring per
worker, each a single-producer/single-consumer circular buffer of
``uint64`` slots in a shared segment — queries travel as raw key words
and answers as packed bitmaps, so **nothing is pickled per request**.
The design follows the classic lock-free SPSC recipe (SNIPPETS.md
Snippet 3): a power-of-two capacity so wrap-around is one bitwise AND,
monotone head/tail cursors each written by exactly one side and kept
on their own 64-byte cache line (no false sharing between producer and
consumer), and batched consume — one cursor publication drains every
complete frame available.

**Frame protocol.**  A frame is ``[seq, desc, payload...]`` where
``seq`` is the ring's monotone frame number and ``desc`` packs
``(kind << 48) | payload_words``.  The producer writes descriptor and
payload first and publishes ``seq`` *last*; the consumer reads ``seq``
*first* and treats a mismatch as "not yet visible" — the
sequence-number handshake that makes publication explicit rather than
inferred from the tail cursor alone.  Cursors only ever advance, so
``tail - head`` is always the exact number of live words (the queue
depth the metrics export).

**Backpressure.**  ``enqueue`` on a full ring raises the typed
:class:`~repro.errors.RingFullError` (an
:class:`~repro.errors.OverloadError`) instead of spinning — deadlock
is impossible by construction; callers decide whether to drain, shed,
or wait.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ParameterError, RingFullError, SegmentFormatError
from repro.parallel.shm import (
    KIND_RING,
    LINE_WORDS,
    attach_segment,
    create_segment,
    verify_header,
    write_header,
)

#: Frame kinds (high 16 bits of the descriptor word).
FRAME_QUERY = 1
FRAME_RESPONSE = 2
FRAME_STOP = 3

#: Control flags (flags line, word 0/1).
_FLAG_STOP = 0
_FLAG_READY = 1

_WORD = np.dtype(np.uint64).itemsize

#: Words of ring overhead per frame (sequence + descriptor).
FRAME_OVERHEAD = 2


def ring_segment_size(capacity_words: int) -> int:
    """Bytes for a ring segment: header + 3 padded lines + data."""
    return (4 * LINE_WORDS + capacity_words) * _WORD


class RingBuffer:
    """One SPSC ring over a shared segment; see module docs for layout.

    Exactly one process may call the producer methods (``enqueue``,
    ``set_stop``) and exactly one the consumer methods
    (``consume_batch``) — the single-writer-per-cursor discipline is
    what makes the ring lock-free.  Both sides may read ``depth_words``
    and the flags.
    """

    def __init__(self, seg, create: bool = False, capacity_words: int = 0):
        if create:
            if capacity_words < 64 or capacity_words & (capacity_words - 1):
                raise ParameterError(
                    "ring capacity must be a power of two >= 64 words, "
                    f"got {capacity_words}"
                )
            write_header(seg.buf, KIND_RING, capacity_words)
        else:
            capacity_words, _, _ = verify_header(seg.buf, KIND_RING, seg.name)
        self.seg = seg
        self.capacity = int(capacity_words)
        self._mask = self.capacity - 1
        base = LINE_WORDS * _WORD
        # One cache line each: producer cursor, consumer cursor, flags.
        self._tail = np.ndarray(LINE_WORDS, dtype=np.uint64, buffer=seg.buf,
                                offset=base)
        self._head = np.ndarray(LINE_WORDS, dtype=np.uint64, buffer=seg.buf,
                                offset=base + LINE_WORDS * _WORD)
        self._flags = np.ndarray(LINE_WORDS, dtype=np.uint64, buffer=seg.buf,
                                 offset=base + 2 * LINE_WORDS * _WORD)
        self._data = np.ndarray(self.capacity, dtype=np.uint64,
                                buffer=seg.buf,
                                offset=base + 3 * LINE_WORDS * _WORD)
        # Local (unshared) frame sequence numbers for the handshake.
        self._produced = 0
        self._consumed = 0

    @classmethod
    def create(cls, name: str, capacity_words: int = 1 << 16) -> "RingBuffer":
        """Create an owned ring segment (dispatcher side)."""
        seg = create_segment(name, ring_segment_size(capacity_words))
        return cls(seg, create=True, capacity_words=capacity_words)

    @classmethod
    def attach(cls, name: str) -> "RingBuffer":
        """Attach an existing ring by name (worker side; never unlinks)."""
        return cls(attach_segment(name))

    # -- flags (either side) ---------------------------------------------------

    def set_stop(self) -> None:
        """Raise the stop flag (checked by the worker's idle loop)."""
        self._flags[_FLAG_STOP] = 1

    @property
    def stopped(self) -> bool:
        """Whether the stop flag is raised."""
        return bool(self._flags[_FLAG_STOP])

    def set_ready(self) -> None:
        """Signal that the attaching side has verified and is serving."""
        self._flags[_FLAG_READY] = 1

    @property
    def ready(self) -> bool:
        """Whether the attaching side has signalled readiness."""
        return bool(self._flags[_FLAG_READY])

    # -- introspection (either side) -------------------------------------------

    @property
    def depth_words(self) -> int:
        """Live words in the ring right now (the queue-depth metric)."""
        return int(self._tail[0]) - int(self._head[0])

    # -- producer --------------------------------------------------------------

    def enqueue(self, kind: int, payload: np.ndarray) -> None:
        """Append one frame, or raise :class:`RingFullError` if it won't fit.

        The payload is copied into the ring (wrap-around handled as two
        slices); the sequence word is stored last, publishing the frame
        to the consumer.
        """
        payload = np.ascontiguousarray(payload, dtype=np.uint64)
        need = FRAME_OVERHEAD + payload.size
        if need > self.capacity:
            raise ParameterError(
                f"frame of {need} words exceeds ring capacity "
                f"{self.capacity}"
            )
        tail = int(self._tail[0])
        used = tail - int(self._head[0])
        if self.capacity - used < need:
            raise RingFullError(used, self.capacity)
        data, mask = self._data, self._mask
        data[(tail + 1) & mask] = (kind << 48) | payload.size
        start = (tail + FRAME_OVERHEAD) & mask
        first = min(payload.size, self.capacity - start)
        data[start:start + first] = payload[:first]
        if first < payload.size:
            data[:payload.size - first] = payload[first:]
        # Publish: sequence word last, then the cursor.
        data[tail & mask] = self._produced
        self._produced += 1
        self._tail[0] = tail + need

    # -- consumer --------------------------------------------------------------

    def consume_batch(
        self, max_frames: int = 64
    ) -> list[tuple[int, np.ndarray]]:
        """Drain up to ``max_frames`` complete frames, in FIFO order.

        Returns ``(kind, payload_copy)`` pairs.  The head cursor is
        published once, after all copies — batched consume, one
        cursor write per drain.  A frame whose sequence word does not
        match the expected number is treated as not yet fully
        published and ends the batch.
        """
        out: list[tuple[int, np.ndarray]] = []
        head = int(self._head[0])
        tail = int(self._tail[0])
        data, mask = self._data, self._mask
        while len(out) < max_frames and tail - head >= FRAME_OVERHEAD:
            if int(data[head & mask]) != self._consumed:
                break  # published cursor ahead of visible payload
            desc = int(data[(head + 1) & mask])
            kind, length = desc >> 48, desc & 0xFFFFFFFFFFFF
            if kind not in (FRAME_QUERY, FRAME_RESPONSE, FRAME_STOP) or (
                FRAME_OVERHEAD + length > self.capacity
            ):
                raise SegmentFormatError(
                    f"{self.seg.name}: corrupt frame descriptor {desc:#x}"
                )
            if tail - head < FRAME_OVERHEAD + length:
                break  # frame not yet fully in the ring
            start = (head + FRAME_OVERHEAD) & mask
            payload = np.empty(length, dtype=np.uint64)
            first = min(length, self.capacity - start)
            payload[:first] = data[start:start + first]
            if first < length:
                payload[first:] = data[:length - first]
            out.append((kind, payload))
            self._consumed += 1
            head += FRAME_OVERHEAD + length
        self._head[0] = head
        return out

    def wait_ready(self, timeout: float, poll: float = 0.002) -> bool:
        """Block until :meth:`set_ready` was called or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        while not self.ready:
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll)
        return True

    def close(self) -> None:
        """Drop this side's mapping (does not unlink; owner protocol)."""
        try:
            self.seg.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass
