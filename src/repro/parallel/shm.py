"""Shared-memory segments: checksummed headers, zero-copy table views.

The packed :class:`~repro.cellprobe.table.Table` is already a flat
``np.uint64`` array, so a replica set maps onto one named
``multiprocessing.shared_memory`` segment with **no serialization at
all**: the owner copies the cells in once, workers attach the same
physical pages and wrap them in a zero-copy ``np.ndarray`` view.  The
same mechanism carries per-worker probe-counter state back to the
dispatcher (:class:`ShmProbeCounter`) and the request/response rings
(:mod:`repro.parallel.ring`).

Every segment starts with an 8-word (64-byte) **header** — magic,
layout version, kind, geometry, CRC32 — that the attaching side
verifies before trusting a single byte (:func:`verify_header`); table
segments additionally carry a CRC32 of the packed cells so a worker
never serves from a torn or stale copy.  Verification failures raise
the typed :class:`~repro.errors.SegmentFormatError`.

**Ownership protocol** (leak hardening): exactly one process — the
dispatcher that created a segment — ever calls ``unlink``; workers
only ever ``close``.  Owners register every created segment in a
process-wide registry flushed by ``atexit``, so a ``KeyboardInterrupt``
or crashed-worker session still leaves ``/dev/shm`` clean.  Workers
attach through :func:`attach_segment`, which *unregisters* the mapping
from their ``multiprocessing.resource_tracker`` — otherwise a worker's
tracker would unlink segments the owner is still serving from when the
worker exits (a long-standing CPython wart, fixed by ``track=False``
only in 3.13+).
"""

from __future__ import annotations

import atexit
import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.cellprobe.table import Table
from repro.errors import ParameterError, SegmentFormatError
from repro.io.integrity import crc32_bytes
from repro.utils.validation import check_positive_integer

#: First header word of every fabric segment ("replow" + layout rev).
MAGIC = 0x7265706C6F770001

#: Bumped whenever any segment layout changes shape.
LAYOUT_VERSION = 1

#: Segment kinds (header word 2).
KIND_TABLE = 1
KIND_RING = 2
KIND_COUNTER = 3

#: Words per header / control line (64 bytes: one x86 cache line).
LINE_WORDS = 8

_WORD = np.dtype(np.uint64).itemsize


def segment_name(prefix: str, role: str) -> str:
    """A collision-free ``/dev/shm`` name: ``{prefix}-{role}-{nonce}``."""
    return f"{prefix}-{role}-{secrets.token_hex(4)}"


# -- owner registry (atexit leak protection) ---------------------------------

_OWNED: dict[int, shared_memory.SharedMemory] = {}


def _cleanup_owned() -> None:
    """Best-effort close+unlink of every still-registered owned segment."""
    for seg in list(_OWNED.values()):
        for op in (seg.close, seg.unlink):
            try:
                op()
            except (FileNotFoundError, OSError, BufferError):
                pass
    _OWNED.clear()


atexit.register(_cleanup_owned)


def create_segment(name: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create an owned segment and register it for atexit cleanup."""
    seg = shared_memory.SharedMemory(name=name, create=True, size=int(nbytes))
    _OWNED[id(seg)] = seg
    return seg


def destroy_segment(seg: shared_memory.SharedMemory) -> None:
    """Owner-side teardown: close, unlink, drop from the atexit registry."""
    _OWNED.pop(id(seg), None)
    # close() raises BufferError while numpy views are still exported;
    # unlink (the part that actually frees /dev/shm) still succeeds.
    for op in (seg.close, seg.unlink):
        try:
            op()
        except (FileNotFoundError, OSError, BufferError):
            pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment *without* adopting unlink responsibility.

    Unregisters the mapping from this process's resource tracker so a
    worker exiting (cleanly or not) can never unlink a segment the
    owner is still serving from — the owner protocol is the only
    unlink path.
    """
    seg = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker impl detail
        pass
    return seg


# -- headers -----------------------------------------------------------------


def _header_crc(words: np.ndarray) -> int:
    """CRC32 of the first 6 header words (the checksum lives in word 6)."""
    return crc32_bytes(words[:6])


def write_header(
    buf, kind: int, geom0: int = 0, geom1: int = 0, extra: int = 0
) -> None:
    """Write the 8-word verified header at the start of ``buf``.

    Layout: ``[magic, version, kind, geom0, geom1, extra, crc, 0]``
    where the two geometry words and ``extra`` are kind-specific
    (table: rows, s, payload CRC; ring: capacity words; counter:
    max_steps, num_cells).
    """
    words = np.ndarray(LINE_WORDS, dtype=np.uint64, buffer=buf)
    words[0] = MAGIC
    words[1] = LAYOUT_VERSION
    words[2] = int(kind)
    words[3] = int(geom0)
    words[4] = int(geom1)
    words[5] = int(extra)
    words[6] = _header_crc(words)
    words[7] = 0


def verify_header(buf, kind: int, name: str = "segment") -> tuple[int, int, int]:
    """Verify magic/version/kind/CRC; return ``(geom0, geom1, extra)``.

    Raises :class:`~repro.errors.SegmentFormatError` on any mismatch —
    the caller must not touch the payload after a failed verify.
    """
    words = np.ndarray(LINE_WORDS, dtype=np.uint64, buffer=buf).copy()
    if int(words[0]) != MAGIC:
        raise SegmentFormatError(f"{name}: bad magic {int(words[0]):#x}")
    if int(words[1]) != LAYOUT_VERSION:
        raise SegmentFormatError(
            f"{name}: layout version {int(words[1])} != {LAYOUT_VERSION}"
        )
    if int(words[2]) != kind:
        raise SegmentFormatError(
            f"{name}: kind {int(words[2])} != expected {kind}"
        )
    if int(words[6]) != _header_crc(words):
        raise SegmentFormatError(f"{name}: header checksum mismatch")
    return int(words[3]), int(words[4]), int(words[5])


# -- table segments ----------------------------------------------------------


def pack_table(name: str, table: Table) -> shared_memory.SharedMemory:
    """Pack a table's cells into a new owned segment (one copy, ever).

    The header carries ``(rows, s)`` and a CRC32 of the packed payload;
    workers re-verify both before serving, so layout drift or a torn
    copy is caught at attach time, not as silent wrong answers.
    """
    cells = table._cells
    nbytes = LINE_WORDS * _WORD + cells.nbytes
    seg = create_segment(name, nbytes)
    view = np.ndarray(cells.shape, dtype=np.uint64, buffer=seg.buf,
                      offset=LINE_WORDS * _WORD)
    view[:] = cells
    write_header(
        seg.buf, KIND_TABLE, table.rows, table.s,
        crc32_bytes(view),
    )
    return seg


def attach_table(
    seg: shared_memory.SharedMemory,
    counter: ProbeCounter,
    verify_payload: bool = True,
) -> Table:
    """Wrap an attached table segment in a zero-copy :class:`Table`.

    The returned table shares the segment's physical pages (no
    allocation, no copy) and charges probes to ``counter``.  With
    ``verify_payload`` the packed cells are checksummed against the
    header before serving.
    """
    rows, s, payload_crc = verify_header(seg.buf, KIND_TABLE, seg.name)
    view = np.ndarray((rows, s), dtype=np.uint64, buffer=seg.buf,
                      offset=LINE_WORDS * _WORD)
    if verify_payload:
        measured = crc32_bytes(view)
        if measured != payload_crc:
            raise SegmentFormatError(
                f"{seg.name}: table payload checksum mismatch "
                f"({measured:#x} != {payload_crc:#x})"
            )
    if counter.num_cells != rows * s:
        raise ParameterError(
            f"counter tracks {counter.num_cells} cells, segment holds "
            f"{rows * s}"
        )
    table = object.__new__(Table)
    table.rows = rows
    table.s = s
    table._cells = view
    table.writes = 0
    table.counter = counter
    return table


# -- counter segments --------------------------------------------------------

#: Control words (one line after the header): steps used, executions.
_CTRL_STEPS = 0
_CTRL_EXECUTIONS = 1


def counter_segment_size(max_steps: int, num_cells: int) -> int:
    """Bytes needed for a counter segment of the given geometry."""
    return (2 * LINE_WORDS + max_steps * num_cells) * _WORD


def create_counter_segment(
    name: str, max_steps: int, num_cells: int
) -> shared_memory.SharedMemory:
    """Create an owned, zero-filled counter segment with a header."""
    max_steps = check_positive_integer("max_steps", max_steps)
    num_cells = check_positive_integer("num_cells", num_cells)
    seg = create_segment(name, counter_segment_size(max_steps, num_cells))
    write_header(seg.buf, KIND_COUNTER, max_steps, num_cells)
    return seg


class ShmProbeCounter(ProbeCounter):
    """A :class:`ProbeCounter` whose per-step matrices live in shared memory.

    Behaviorally identical to the in-process counter — the same lazy
    step allocation (``record_batch(step)`` allocates every step row up
    to ``step``, even when all entries are skipped), the same skip
    contract for negative cells — but each step row is a zero-copy view
    into a preallocated shared segment, and the allocation high-water
    mark plus the execution count are mirrored into the segment's
    control line, so the dispatcher can read the exact accounting state
    back with :func:`read_counter` and fold it into a global counter via
    :meth:`ProbeCounter.merge`.  ``digest()`` equality with the
    in-process service is the E22 deterministic-equivalence gate.
    """

    def __init__(self, seg: shared_memory.SharedMemory):
        max_steps, num_cells, _ = verify_header(
            seg.buf, KIND_COUNTER, seg.name
        )
        super().__init__(num_cells)
        self.max_steps = max_steps
        self._ctrl = np.ndarray(
            LINE_WORDS, dtype=np.uint64, buffer=seg.buf,
            offset=LINE_WORDS * _WORD,
        )
        self._rows = np.ndarray(
            (max_steps, num_cells), dtype=np.int64, buffer=seg.buf,
            offset=2 * LINE_WORDS * _WORD,
        )
        #: Running total of probes charged (cheap per-dispatch delta —
        #: summing the whole matrix per group would swamp the hot loop).
        self.probes_charged = 0
        # Resume from whatever a previous attach already recorded.
        for step in range(int(self._ctrl[_CTRL_STEPS])):
            self._per_step.append(self._rows[step])
        self.executions = int(self._ctrl[_CTRL_EXECUTIONS])
        self.probes_charged = int(self.total_probes())

    def _grow_to(self, step: int) -> None:
        if step >= self.max_steps:
            raise ParameterError(
                f"step {step} exceeds segment capacity "
                f"({self.max_steps} steps)"
            )
        while len(self._per_step) <= step:
            self._per_step.append(self._rows[len(self._per_step)])
        self._ctrl[_CTRL_STEPS] = len(self._per_step)

    def record(self, step: int, flat_cell: int) -> None:
        if step < 0:
            raise ParameterError("step must be non-negative")
        if not 0 <= flat_cell < self.num_cells:
            raise ParameterError(
                f"cell {flat_cell} out of range [0, {self.num_cells})"
            )
        self._grow_to(step)
        self._per_step[step][flat_cell] += 1
        self.probes_charged += 1

    def record_batch(self, step: int, flat_cells: np.ndarray) -> None:
        if step < 0:
            raise ParameterError("step must be non-negative")
        flat_cells = np.asarray(flat_cells, dtype=np.int64)
        active = flat_cells >= 0
        if np.any(flat_cells[active] >= self.num_cells):
            raise ParameterError("cell index out of range in batch")
        self._grow_to(step)
        np.add.at(self._per_step[step], flat_cells[active], 1)
        self.probes_charged += int(np.count_nonzero(active))

    def finish_execution(self, count: int = 1) -> None:
        super().finish_execution(count)
        self._ctrl[_CTRL_EXECUTIONS] = self.executions

    def reset(self) -> None:
        super().reset()
        self._rows[:] = 0
        self._ctrl[_CTRL_STEPS] = 0
        self._ctrl[_CTRL_EXECUTIONS] = 0
        self.probes_charged = 0


def read_counter(seg: shared_memory.SharedMemory) -> ProbeCounter:
    """Copy a counter segment's state into a plain :class:`ProbeCounter`.

    Used by the dispatcher to fold per-worker accounting into one
    global counter: only the allocated step rows are copied (exactly
    mirroring the in-process counter's lazy allocation), so the merge
    of all workers digests identically to an in-process run of the
    same groups.
    """
    max_steps, num_cells, _ = verify_header(seg.buf, KIND_COUNTER, seg.name)
    ctrl = np.ndarray(
        LINE_WORDS, dtype=np.uint64, buffer=seg.buf,
        offset=LINE_WORDS * _WORD,
    )
    rows = np.ndarray(
        (max_steps, num_cells), dtype=np.int64, buffer=seg.buf,
        offset=2 * LINE_WORDS * _WORD,
    )
    out = ProbeCounter(num_cells)
    out._per_step = [rows[i].copy() for i in range(int(ctrl[_CTRL_STEPS]))]
    out.executions = int(ctrl[_CTRL_EXECUTIONS])
    return out
