"""The shard worker process: attach, verify, serve — no pickling after boot.

Each worker is a separate OS process (spawned with ``subprocess``, so
it works even when the parent is itself a daemonized experiment
worker).  At boot it loads a one-shot pickled spec (query-algorithm
objects and segment names — the only pickle of the worker's lifetime),
attaches every shared segment by name, **verifies each checksummed
header and the table payload CRC before serving a single query**, and
signals readiness on its request ring.

The serve loop is the fabric's hot path:

1. batched dequeue of query frames from the request ring;
2. per group: seed the probe RNG from the frame (deterministic — the
   dispatcher drew the seed), run the inner scheme's vectorized
   ``query_batch_on`` directly against the zero-copy shared table
   view, charging every probe to this worker's shared-memory
   :class:`~repro.parallel.shm.ShmProbeCounter`;
3. pack the boolean answers into a bitmap and enqueue one response
   frame.

Nothing on this path allocates proportional to the table, pickles, or
locks: requests and responses are raw ``uint64`` words, probes land in
the shared counter matrix, and the paper's accounting is exactly the
in-process service's (the E22 digest-equivalence gate).

Shutdown: a stop flag (or STOP frame, or ``SIGTERM``/``SIGINT``) ends
the loop; the worker closes its mappings and exits.  Workers never
unlink — segment lifetime is the owner's (see
:mod:`repro.parallel.shm`).
"""

from __future__ import annotations

import pickle
import signal
import sys
import time

import numpy as np

from repro.cellprobe.counters import ProbeCounter  # noqa: F401  (doc link)
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.errors import RingFullError
from repro.faults import FaultStats
from repro.parallel.ring import (
    FRAME_QUERY,
    FRAME_RESPONSE,
    FRAME_STOP,
    RingBuffer,
)
from repro.parallel.shm import ShmProbeCounter, attach_segment, attach_table

#: Idle-loop backoff bounds (seconds): spin fast, then yield politely.
_IDLE_MIN = 1e-5
_IDLE_MAX = 2e-3


def attach_replicated(
    inner, replicas: int, table
) -> ReplicatedDictionary:
    """Wire a :class:`ReplicatedDictionary` facade over an attached table.

    The normal constructor would *copy* the inner rows R times; here the
    replicated cells already live in the shared segment, so the facade
    is assembled field by field around the zero-copy ``table`` — same
    query algorithm, same probe accounting, no allocation.
    """
    d = object.__new__(ReplicatedDictionary)
    d.inner = inner
    d.replicas = int(replicas)
    d.mode = "random"
    d.max_retries = 3
    d.universe_size = inner.universe_size
    d.keys = inner.keys
    d.name = f"replicated({inner.name}, R={replicas})[shm]"
    d._inner_rows = inner.table.rows
    d.table = table
    d.fault_stats = FaultStats()
    d.faults = None
    d._injector = None
    d._read_table = table
    return d


def pack_answers(answers: np.ndarray) -> np.ndarray:
    """Pack a boolean answer vector into little-endian ``uint64`` words."""
    bits = np.packbits(answers.astype(np.uint8), bitorder="little")
    pad = (-bits.size) % 8
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
    return bits.view(np.uint64)


def unpack_answers(words: np.ndarray, count: int) -> np.ndarray:
    """Invert :func:`pack_answers` back into ``count`` booleans."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:count].astype(bool)


def _enqueue_blocking(ring: RingBuffer, kind: int, payload) -> None:
    """Enqueue with polite backoff while the dispatcher drains."""
    delay = _IDLE_MIN
    while True:
        try:
            ring.enqueue(kind, payload)
            return
        except RingFullError:
            if ring.stopped:
                return
            time.sleep(delay)
            delay = min(delay * 2, _IDLE_MAX)


def serve(spec: dict) -> int:
    """Attach every segment in ``spec``, verify, and serve until stopped."""
    req = RingBuffer.attach(spec["req_ring"])
    resp = RingBuffer.attach(spec["resp_ring"])
    segments = [req.seg, resp.seg]
    dicts = []
    counters = []
    for shard in spec["shards"]:
        counter_seg = attach_segment(shard["counter_seg"])
        table_seg = attach_segment(shard["table_seg"])
        segments.extend([counter_seg, table_seg])
        counter = ShmProbeCounter(counter_seg)
        table = attach_table(table_seg, counter)
        dicts.append(
            attach_replicated(shard["inner"], shard["replicas"], table)
        )
        counters.append(counter)
    req.set_ready()
    delay = _IDLE_MIN
    running = True
    while running:
        frames = req.consume_batch(max_frames=128)
        if not frames:
            if req.stopped:
                break
            time.sleep(delay)
            delay = min(delay * 2, _IDLE_MAX)
            continue
        delay = _IDLE_MIN
        for kind, payload in frames:
            if kind == FRAME_STOP:
                running = False
                break
            if kind != FRAME_QUERY:
                continue
            group_id, shard, replica, seed, nkeys = (
                int(payload[0]), int(payload[1]), int(payload[2]),
                int(payload[3]), int(payload[4]),
            )
            keys = payload[5:5 + nkeys].astype(np.int64)
            counter = counters[shard]
            before = counter.probes_charged
            answers = dicts[shard].query_batch_on(
                keys, replica, np.random.default_rng(seed)
            )
            probes = counter.probes_charged - before
            head = np.array([group_id, nkeys, probes], dtype=np.uint64)
            _enqueue_blocking(
                resp, FRAME_RESPONSE,
                np.concatenate([head, pack_answers(answers)]),
            )
    for seg in segments:
        try:
            seg.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass
    return 0


def main(argv=None) -> int:
    """Entry point: ``python -m repro.parallel.worker <spec.pkl>``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.parallel.worker <spec.pkl>",
              file=sys.stderr)
        return 2
    # Die quietly on SIGTERM/SIGINT: the owner tears segments down.
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    with open(argv[0], "rb") as fh:
        spec = pickle.load(fh)
    try:
        return serve(spec)
    except KeyboardInterrupt:  # pragma: no cover - timing dependent
        return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
