"""Durable checkpoints for the dynamic serving stack.

The dynamic stack (PR 8/9) holds everything in memory: a process crash
loses the dictionary, and the replay log grows without bound.  This
package closes both gaps:

- :class:`~repro.persist.checkpoint.CheckpointStore` — generation-
  numbered, per-shard checkpoint files.  Each file is an atomically
  published (tmp + fsync + rename + dirsync) frame — magic, CRC32,
  SHA-256 — around a pickled snapshot: the shard's base state from its
  last log compaction (live key set, epoch, applied-update count, and
  the exact spawned-rng stream position of every replica) plus the
  retained log *suffix*, with the full service geometry embedded
  redundantly so any one surviving file can bootstrap recovery.
- :func:`~repro.persist.checkpoint.restore_dynamic_service` — paranoid
  recovery: per shard, walk generations newest-first, verify the frame
  (CRC/SHA), *quarantine* corrupt or torn files (rename to
  ``*.corrupt``, record a typed
  :class:`~repro.errors.CheckpointCorruptError` reason, never crash,
  never serve from them), fall back to older generations, and degrade
  to full-log replay when the best survivor predates compaction.
  Restore rebuilds replicas byte-identical (``table._cells``) to a
  never-crashed twin; optional post-restore canary verification
  charges its probes through :func:`repro.heal.charged_to` so
  query-counter digests are byte-identical with verification on or
  off.

Experiment E26 gates the whole path: SIGKILL mid-checkpoint at
adversarial instants, byte-identical recovery digests, zero wrong
answers post-restore, and a bounded retained log under sustained
writes.
"""

from repro.persist.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointStore,
    restore_dynamic_service,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CheckpointStore",
    "restore_dynamic_service",
]
