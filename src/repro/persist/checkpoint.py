"""Generation-numbered checkpoint files + corruption-tolerant recovery.

File layout: one file per shard per generation, named
``shard{S}-gen{G:08d}.ckpt``, each a :func:`repro.io.integrity.frame`
(magic + CRC32 + SHA-256) around a pickled metadata dict carrying the
shard's :meth:`~repro.dynamic.replicated.ReplicatedDynamicDictionary.
snapshot_payload` and the full service geometry.  Files are published
with :func:`repro.io.integrity.atomic_write_bytes`, so a reader only
ever observes a complete old generation or a complete new one — a
SIGKILL mid-write leaves at worst a dangling ``*.tmp.<pid>`` sibling
(ignored by recovery) while every previously published generation
stays valid.

Recovery is a fallback chain, per shard::

    newest generation
      └─ frame verify (magic → CRC32 → SHA-256) ──fail──▶ quarantine
      └─ unpickle + structure check             ──fail──▶ (*.corrupt)
      └─ restore base + replay retained suffix        │
           └─ base present  → source "checkpoint"     ▼
           └─ base missing  → source "log"      older generation …
                                                 └─ none left →
                                                    source "empty"

A quarantined file is renamed aside (never deleted, never served
from); the chain *never raises* for per-file damage — only
:func:`CheckpointStore.inspect` of one named file surfaces the typed
:class:`~repro.errors.CheckpointCorruptError` directly.
"""

from __future__ import annotations

import os
import pickle
import re

from repro.dynamic.replicated import ReplicatedDynamicDictionary
from repro.errors import CheckpointCorruptError, CheckpointError
from repro.io.integrity import atomic_write_bytes, check_frame, frame
from repro.telemetry.events import BUS, CheckpointEvent, RecoveryEvent

__all__ = [
    "CHECKPOINT_MAGIC",
    "CheckpointStore",
    "restore_dynamic_service",
]

#: Frame magic; the trailing number is the checkpoint format version.
CHECKPOINT_MAGIC = b"REPROCKPT:1\n"

#: Shard checkpoint file name: ``shard{S}-gen{G:08d}.ckpt``.
_FILE_RE = re.compile(r"^shard(\d+)-gen(\d{8})\.ckpt$")

#: Exceptions a hostile pickle payload can raise on load — anything
#: else is a programming error and should propagate.
_UNPICKLE_FAILURES = (
    pickle.UnpicklingError, EOFError, AttributeError,
    ImportError, IndexError, KeyError, TypeError, ValueError,
)


def _checkpoint_name(shard: int, generation: int) -> str:
    return f"shard{int(shard)}-gen{int(generation):08d}.ckpt"


class CheckpointStore:
    """A directory of generation-numbered per-shard checkpoint files."""

    def __init__(self, directory, keep: int = 3):
        self.directory = os.fspath(directory)
        if int(keep) < 1:
            raise CheckpointError("checkpoint store must keep >= 1 generation")
        self.keep = int(keep)
        #: ``(path, reason)`` pairs quarantined by this store instance.
        self.quarantined: list[tuple[str, str]] = []
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint directory {self.directory} is unusable: {exc}"
            ) from exc
        if not os.path.isdir(self.directory):
            raise CheckpointError(
                f"checkpoint path {self.directory} is not a directory"
            )

    # -- listing -----------------------------------------------------------------

    def generations(self, shard: int | None = None) -> list[tuple[int, int, str]]:
        """All checkpoint files as ``(shard, generation, path)``, sorted.

        Ordered by shard then ascending generation; quarantined
        (``*.corrupt``) files and dangling tmp files are excluded.
        """
        out = []
        for name in os.listdir(self.directory):
            m = _FILE_RE.match(name)
            if m is None:
                continue
            s, g = int(m.group(1)), int(m.group(2))
            if shard is not None and s != int(shard):
                continue
            out.append((s, g, os.path.join(self.directory, name)))
        return sorted(out)

    def latest_generation(self) -> int:
        """The newest generation number present (0 when empty)."""
        gens = self.generations()
        return max((g for _, g, _ in gens), default=0)

    # -- saving ------------------------------------------------------------------

    def save(self, service, now: float = 0.0, compacted: int = 0) -> int:
        """Write one new generation: one atomic file per shard.

        Each file embeds the *whole* service geometry (boundaries,
        every shard's constructor config, the service build config) so
        recovery can bootstrap from any single survivor.  Returns the
        new generation number and prunes generations beyond ``keep``.
        """
        generation = self.latest_generation() + 1
        shard_configs = [s._config() for s in service.shards]
        for i, shard in enumerate(service.shards):
            snapshot = shard.snapshot_payload()
            meta = {
                "format": 1,
                "shard": i,
                "generation": generation,
                "saved_at": float(now),
                "num_shards": service.num_shards,
                "boundaries": [int(b) for b in service._boundaries],
                "universe_size": service.universe_size,
                "shard_configs": shard_configs,
                "service": dict(getattr(service, "build_config", {}) or {}),
                "snapshot": snapshot,
            }
            blob = frame(
                pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
                CHECKPOINT_MAGIC,
            )
            path = os.path.join(
                self.directory, _checkpoint_name(i, generation)
            )
            atomic_write_bytes(path, blob)
            if BUS.active:
                BUS.emit(CheckpointEvent(
                    shard=i,
                    generation=generation,
                    epoch=int(snapshot["epoch"]),
                    entries=sum(len(g) for g in snapshot["suffix"]),
                    live_keys=len(snapshot["live_keys"]),
                    nbytes=len(blob),
                    compacted=int(compacted),
                ))
        self.prune()
        return generation

    def prune(self) -> int:
        """Drop generations older than the newest ``keep``; returns removed."""
        removed = 0
        by_shard: dict[int, list[tuple[int, str]]] = {}
        for s, g, path in self.generations():
            by_shard.setdefault(s, []).append((g, path))
        for entries in by_shard.values():
            for _, path in sorted(entries)[:-self.keep]:
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- reading (paranoid) ------------------------------------------------------

    def _read_meta(self, path: str) -> dict:
        """Read + fully verify one checkpoint file, or raise the typed error."""
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError as exc:
            raise CheckpointCorruptError(path, f"unreadable ({exc})") from exc
        payload, reason = check_frame(blob, CHECKPOINT_MAGIC)
        if payload is None:
            raise CheckpointCorruptError(path, reason)
        try:
            meta = pickle.loads(payload)
        except _UNPICKLE_FAILURES as exc:
            raise CheckpointCorruptError(
                path, f"unpicklable payload ({type(exc).__name__})"
            ) from exc
        if not isinstance(meta, dict) or "snapshot" not in meta:
            raise CheckpointCorruptError(path, "payload is not a checkpoint")
        return meta

    def inspect(self, path) -> dict:
        """Verify one named file; return its summary (raises when corrupt).

        The one entry point that *propagates*
        :class:`~repro.errors.CheckpointCorruptError` — inspection of a
        specific file should report damage loudly, while the recovery
        chain degrades silently.
        """
        meta = self._read_meta(os.fspath(path))
        snap = meta["snapshot"]
        return {
            "path": os.fspath(path),
            "shard": int(meta["shard"]),
            "generation": int(meta["generation"]),
            "epoch": int(snap["epoch"]),
            "update_count": int(snap["update_count"]),
            "live_keys": len(snap["live_keys"]),
            "suffix_entries": sum(len(g) for g in snap["suffix"]),
            "has_base": snap["base"] is not None,
            "compactions": int(snap.get("compactions", 0)),
            "num_shards": int(meta["num_shards"]),
            "universe_size": int(meta["universe_size"]),
            "saved_at": float(meta.get("saved_at", 0.0)),
        }

    def _quarantine(self, path: str, reason: str) -> None:
        """Rename a damaged file aside; never delete, never re-serve."""
        target = f"{path}.corrupt"
        try:
            os.replace(path, target)
        except OSError:
            pass
        self.quarantined.append((path, reason))

    def load_shard(self, shard: int) -> tuple[dict | None, int]:
        """The newest verifiable metadata for ``shard``, walking the chain.

        Tries generations newest-first; every file that fails
        verification is quarantined and the walk continues.  Returns
        ``(meta, quarantined_count)`` with ``meta=None`` when no
        generation survives.
        """
        quarantined = 0
        for _, generation, path in sorted(
            self.generations(shard), reverse=True
        ):
            try:
                meta = self._read_meta(path)
            except CheckpointCorruptError as exc:
                self._quarantine(path, exc.reason)
                quarantined += 1
                continue
            if int(meta["shard"]) != int(shard):
                self._quarantine(path, "shard index mismatch")
                quarantined += 1
                continue
            return meta, quarantined
        return None, quarantined


def restore_dynamic_service(
    directory,
    armed: bool | None = None,
    verify: bool = True,
    keep: int = 3,
    **service_overrides,
):
    """Rebuild a :class:`~repro.serve.dynamic_service.DynamicShardedService`
    from its checkpoint directory; returns ``(service, report)``.

    Walks every shard's fallback chain (see module docstring).  A shard
    with no surviving generation restarts empty (``source: "empty"``)
    using the constructor config embedded in a sibling shard's file —
    recovery degrades per shard, it never fails wholesale unless *no*
    file in the directory verifies, which raises
    :class:`~repro.errors.CheckpointError`.

    With ``verify=True`` every restored shard canary-reads its live key
    set through :meth:`~repro.dynamic.replicated.
    ReplicatedDynamicDictionary.verify_state`; the probes are charged
    to recovery counters (:func:`repro.heal.charged_to`), so
    query-counter digests are byte-identical either way.
    ``service_overrides`` override service constructor keywords (e.g.
    a different ``capacity``); ``armed`` overrides the chaos-hook
    arming recorded in the snapshot.
    """
    from repro.serve.dynamic_service import DynamicShardedService

    store = CheckpointStore(directory, keep=keep)
    shard_ids = sorted({s for s, _, _ in store.generations()})
    metas: dict[int, dict] = {}
    quarantined: dict[int, int] = {}
    for s in shard_ids:
        meta, q = store.load_shard(s)
        quarantined[s] = q
        if meta is not None:
            metas[s] = meta
    if not metas:
        raise CheckpointError(
            f"no usable checkpoint generation in {store.directory} "
            f"({sum(quarantined.values())} file(s) quarantined)"
        )
    # Any one verified file carries the full geometry.
    anchor = next(iter(metas.values()))
    num_shards = int(anchor["num_shards"])
    boundaries = [int(b) for b in anchor["boundaries"]]
    shard_configs = anchor["shard_configs"]
    shards = []
    shard_reports = []
    for i in range(num_shards):
        meta = metas.get(i)
        if meta is not None:
            dictionary, rep = ReplicatedDynamicDictionary.from_snapshot(
                meta["snapshot"], armed=armed
            )
            generation = int(meta["generation"])
            source, replayed = rep["source"], int(rep["replayed"])
        else:
            cfg = dict(shard_configs[i])
            if armed is not None:
                cfg["armed"] = bool(armed)
            dictionary = ReplicatedDynamicDictionary(**cfg)
            generation, source, replayed = 0, "empty", 0
        if verify and source != "empty":
            dictionary.verify_state(seed=i)
        shards.append(dictionary)
        q = quarantined.get(i, 0)
        shard_reports.append({
            "shard": i,
            "generation": generation,
            "source": source,
            "replayed": replayed,
            "quarantined": q,
        })
        if BUS.active:
            BUS.emit(RecoveryEvent(
                shard=i, generation=generation, source=source,
                replayed=replayed, quarantined=q,
            ))
    service_config = dict(anchor.get("service", {}) or {})
    service_config.update(service_overrides)
    service = DynamicShardedService(shards, boundaries, **service_config)
    report = {
        "shards": shard_reports,
        "replayed": sum(r["replayed"] for r in shard_reports),
        "quarantined": sum(quarantined.values()),
        "recovery_probes": sum(int(s.recovery_probes) for s in shards),
        "quarantine_log": list(store.quarantined),
    }
    return service, report
