"""Data-structure problems f : Q × D → {0, 1} (paper Section 1.1).

A *data structure problem* is a boolean function of a query and a data
set.  The classic instance is :class:`~repro.problems.membership.MembershipProblem`
(Q = [N], D = ([N] choose n), f(x, S) = [x in S]); the others exist to
instantiate the VC-dimension lower bound (Theorem 13) on problems with
different VC-dimensions: threshold/greater-than (VC-dim 1 per data set
family structure), interval stabbing, and parity-of-intersection.

:mod:`repro.problems.vc` computes VC-dimension exactly (shatter search)
for small instances and provides the closed forms the paper relies on
(VC-dim(membership with |S| = n) = n).
"""

from repro.problems.base import DataStructureProblem
from repro.problems.interval import IntervalStabbingProblem
from repro.problems.membership import MembershipProblem
from repro.problems.parity import ParityProblem
from repro.problems.threshold import ThresholdProblem
from repro.problems.vc import shattered, vc_dimension_exact, vc_dimension_lower_bound

__all__ = [
    "DataStructureProblem",
    "MembershipProblem",
    "ThresholdProblem",
    "IntervalStabbingProblem",
    "ParityProblem",
    "shattered",
    "vc_dimension_exact",
    "vc_dimension_lower_bound",
]
