"""Abstract data-structure problem f : Q × D → {0, 1}."""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence

import numpy as np


class DataStructureProblem(abc.ABC):
    """A boolean query problem over a query set Q and data-set family D.

    Queries are integers in ``[0, query_count)``; data sets are immutable
    objects the concrete class understands (a frozenset of keys for
    membership, a threshold integer for greater-than, ...).
    """

    @property
    @abc.abstractmethod
    def query_count(self) -> int:
        """|Q|: queries are the integers [0, query_count)."""

    @abc.abstractmethod
    def evaluate(self, x: int, data_set) -> bool:
        """f(x, S)."""

    @abc.abstractmethod
    def enumerate_data_sets(self) -> Iterator:
        """Yield every S in D (only called for small instances, e.g. VC search)."""

    @abc.abstractmethod
    def sample_data_set(self, rng: np.random.Generator):
        """Draw a uniformly random S in D."""

    def evaluate_batch(self, xs: np.ndarray, data_set) -> np.ndarray:
        """Vectorized f(·, S); the default loops, subclasses vectorize."""
        return np.fromiter(
            (self.evaluate(int(x), data_set) for x in np.asarray(xs)),
            dtype=bool,
            count=len(xs),
        )

    def classification(self, xs: Sequence[int], data_set) -> tuple[bool, ...]:
        """The labelling of ``xs`` induced by ``data_set`` (for VC search)."""
        return tuple(bool(self.evaluate(int(x), data_set)) for x in xs)
