"""Interval stabbing: f(x, S=(lo, hi)) = [lo <= x < hi].

D = all half-open intervals of [N]; intervals shatter any 2 points but no
3 (the labelling (1, 0, 1) of x1 < x2 < x3 is unrealizable), so the
VC-dimension is exactly 2 — a second small-VC control for E11.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.problems.base import DataStructureProblem
from repro.utils.validation import check_positive_integer


class IntervalStabbingProblem(DataStructureProblem):
    """f(x, (lo, hi)) = [lo <= x < hi] over Q = [N]."""

    def __init__(self, universe_size: int):
        self.universe_size = check_positive_integer("universe_size", universe_size)

    @property
    def query_count(self) -> int:
        return self.universe_size

    def evaluate(self, x: int, data_set) -> bool:
        lo, hi = data_set
        return int(lo) <= int(x) < int(hi)

    def evaluate_batch(self, xs: np.ndarray, data_set) -> np.ndarray:
        lo, hi = data_set
        xs = np.asarray(xs, dtype=np.int64)
        return (xs >= int(lo)) & (xs < int(hi))

    def enumerate_data_sets(self) -> Iterator[tuple[int, int]]:
        n = self.universe_size
        for lo in range(n + 1):
            for hi in range(lo, n + 1):
                yield (lo, hi)

    def sample_data_set(self, rng: np.random.Generator) -> tuple[int, int]:
        a, b = sorted(
            int(v) for v in rng.integers(0, self.universe_size + 1, size=2)
        )
        return (a, b)

    def vc_dimension(self) -> int:
        """Intervals shatter pairs but not triples: VC-dim = 2 (for N >= 2)."""
        return min(2, self.universe_size)
