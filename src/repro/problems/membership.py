"""The membership problem: Q = [N], D = ([N] choose n), f(x, S) = [x in S].

This is the paper's central problem.  Its VC-dimension equals n (any n
distinct queries are shattered by choosing S to contain exactly the
positively-labelled ones — possible because |S| = n can always be padded
with elements outside the shattered set when N >= 2n).
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.errors import ParameterError
from repro.problems.base import DataStructureProblem
from repro.utils.rng import sample_distinct
from repro.utils.validation import check_positive_integer


class MembershipProblem(DataStructureProblem):
    """Membership of an n-subset of the universe [N]."""

    def __init__(self, universe_size: int, set_size: int):
        self.universe_size = check_positive_integer("universe_size", universe_size)
        self.set_size = check_positive_integer("set_size", set_size)
        if set_size > universe_size:
            raise ParameterError(
                f"set_size {set_size} exceeds universe_size {universe_size}"
            )

    @property
    def query_count(self) -> int:
        return self.universe_size

    def evaluate(self, x: int, data_set) -> bool:
        return int(x) in data_set

    def evaluate_batch(self, xs: np.ndarray, data_set) -> np.ndarray:
        keys = np.fromiter(data_set, dtype=np.int64, count=len(data_set))
        keys.sort()
        xs = np.asarray(xs, dtype=np.int64)
        idx = np.searchsorted(keys, xs)
        idx_clipped = np.minimum(idx, keys.size - 1)
        return (idx < keys.size) & (keys[idx_clipped] == xs)

    def enumerate_data_sets(self) -> Iterator[frozenset]:
        for combo in itertools.combinations(range(self.universe_size), self.set_size):
            yield frozenset(combo)

    def sample_data_set(self, rng: np.random.Generator) -> frozenset:
        keys = sample_distinct(rng, self.universe_size, self.set_size)
        return frozenset(int(k) for k in keys)

    def vc_dimension(self) -> int:
        """Closed form: min(n, N - n, ...) — for N >= 2n this is exactly n.

        A set of queries {x_1..x_k} is shattered iff every labelling is
        realizable by some n-subset: we need at least ``ones`` elements
        inside S and ``k - ones`` outside, for every split, which holds iff
        k <= n and k <= N - n.
        """
        return min(self.set_size, self.universe_size - self.set_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MembershipProblem(N={self.universe_size}, n={self.set_size})"
        )
