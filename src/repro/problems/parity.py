"""Set-intersection parity: f(x, S) = |bits(x) ∩ S| mod 2.

Queries are subsets of a ground set [w] encoded as w-bit masks; data sets
are subsets of [w].  f(x, S) = parity(|x ∩ S|) is the inner product over
GF(2), whose VC-dimension is exactly w (the standard basis vectors are
shattered: for a target labelling y, take S = {i : y_i = 1}).  This gives
a *dense* high-VC problem over a small query set — the opposite regime
from membership's sparse positives — used in E11 to show Theorem 13's
hypothesis is about VC-dimension, not about sparsity.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.problems.base import DataStructureProblem
from repro.utils.validation import check_integer


class ParityProblem(DataStructureProblem):
    """GF(2) inner product over w-bit masks: Q = D = 2^[w]."""

    def __init__(self, width: int):
        self.width = check_integer("width", width, minimum=1, maximum=20)

    @property
    def query_count(self) -> int:
        return 1 << self.width

    def evaluate(self, x: int, data_set) -> bool:
        return bool(bin(int(x) & int(data_set)).count("1") & 1)

    def evaluate_batch(self, xs: np.ndarray, data_set) -> np.ndarray:
        v = np.asarray(xs, dtype=np.int64) & np.int64(int(data_set))
        # Popcount via progressive bit folding (no Python loop over keys).
        out = np.zeros(v.shape, dtype=np.int64)
        while np.any(v):
            out ^= v & 1
            v >>= 1
        return out.astype(bool)

    def enumerate_data_sets(self) -> Iterator[int]:
        yield from range(1 << self.width)

    def sample_data_set(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, 1 << self.width))

    def vc_dimension(self) -> int:
        """The w standard basis masks are shattered: VC-dim = w."""
        return self.width
