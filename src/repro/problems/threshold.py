"""The greater-than / threshold problem: f(x, S=theta) = [x >= theta].

D is the set of thresholds [0, N]; the induced classifications of Q are
the N+1 "suffix" labellings, so the VC-dimension is exactly 1 (no pair
{x1 < x2} can realize the labelling (1, 0)).  It instantiates Theorem 13's
hypothesis at the degenerate end: a problem with constant VC-dimension is
*not* subject to the Ω(log log n) bound, and E11 uses it as the control.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.problems.base import DataStructureProblem
from repro.utils.validation import check_positive_integer


class ThresholdProblem(DataStructureProblem):
    """f(x, theta) = [x >= theta] over Q = [N], D = {0, ..., N}."""

    def __init__(self, universe_size: int):
        self.universe_size = check_positive_integer("universe_size", universe_size)

    @property
    def query_count(self) -> int:
        return self.universe_size

    def evaluate(self, x: int, data_set) -> bool:
        return int(x) >= int(data_set)

    def evaluate_batch(self, xs: np.ndarray, data_set) -> np.ndarray:
        return np.asarray(xs, dtype=np.int64) >= int(data_set)

    def enumerate_data_sets(self) -> Iterator[int]:
        yield from range(self.universe_size + 1)

    def sample_data_set(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.universe_size + 1))

    def vc_dimension(self) -> int:
        """Thresholds shatter singletons but no pair: VC-dim = 1."""
        return 1
