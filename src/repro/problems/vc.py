"""VC-dimension of data-structure problems (paper Definition 11).

The VC-dimension of f : Q × D → {0, 1} is the largest k for which some
k queries are *shattered*: all 2**k labellings are realized by data sets.
:func:`vc_dimension_exact` does the exhaustive search (exponential — only
for small instances; E11 cross-checks it against each problem's closed
form), and :func:`vc_dimension_lower_bound` certifies ``>= k`` by randomized
search for a shattered set, which scales further.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.problems.base import DataStructureProblem
from repro.utils.rng import as_generator, sample_distinct


def realized_labellings(
    problem: DataStructureProblem, queries: Sequence[int]
) -> set[tuple[bool, ...]]:
    """All labellings of ``queries`` realized by some data set in D."""
    seen: set[tuple[bool, ...]] = set()
    full = 1 << len(queries)
    for data_set in problem.enumerate_data_sets():
        seen.add(problem.classification(queries, data_set))
        if len(seen) == full:
            break
    return seen


def shattered(problem: DataStructureProblem, queries: Sequence[int]) -> bool:
    """Whether ``queries`` are shattered by the problem's data sets."""
    if len(set(queries)) != len(queries):
        raise ParameterError("queries must be distinct")
    return len(realized_labellings(problem, queries)) == (1 << len(queries))


def vc_dimension_exact(problem: DataStructureProblem, max_k: int | None = None) -> int:
    """Exact VC-dimension by exhaustive shatter search.

    Complexity is O(|Q| choose k) * O(|D|) per level — call only on small
    instances.  ``max_k`` caps the search (returns min(VC-dim, max_k)).
    """
    q = problem.query_count
    limit = q if max_k is None else min(max_k, q)
    best = 0
    for k in range(1, limit + 1):
        if not any(
            shattered(problem, combo)
            for combo in itertools.combinations(range(q), k)
        ):
            return best
        best = k
    return best


def vc_dimension_lower_bound(
    problem: DataStructureProblem,
    k: int,
    rng=None,
    attempts: int = 50,
) -> bool:
    """Certify VC-dim >= k by randomized search for a shattered k-set.

    Returns True iff a shattered set of size ``k`` was found; False is
    *not* a proof of VC-dim < k (it is a failed search).
    """
    rng = as_generator(rng)
    q = problem.query_count
    if k > q:
        return False
    for _ in range(attempts):
        queries = [int(v) for v in sample_distinct(rng, q, k)]
        if shattered(problem, queries):
            return True
    return False


def shatter_coefficient(
    problem: DataStructureProblem, k: int, queries: Sequence[int] | None = None
) -> int:
    """The shatter (growth) coefficient: number of labellings realized.

    For a shattered set this is 2**k; Sauer–Shelah bounds it by
    sum_{i<=d} C(k, i) where d = VC-dim.  Used by E11's table.
    """
    if queries is None:
        queries = list(range(min(k, problem.query_count)))
    if len(queries) != k:
        raise ParameterError(f"need exactly {k} queries, got {len(queries)}")
    return len(realized_labellings(problem, queries))


def sauer_shelah_bound(k: int, d: int) -> int:
    """sum_{i=0}^{d} C(k, i): the Sauer–Shelah growth bound."""
    import math

    return sum(math.comb(k, i) for i in range(min(d, k) + 1))
