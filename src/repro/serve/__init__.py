"""repro.serve — sharded dictionary serving with contention-aware routing.

The serving subsystem turns the library's static dictionaries into a
live membership service and closes the loop between the paper's
*analysis* (exact per-cell contention Φ_t) and *operations* (what a
running replica fleet actually experiences):

- :mod:`~repro.serve.batcher` — micro-batching of the request stream
  into ``query_batch`` calls (size/deadline flush policy);
- :mod:`~repro.serve.router` — replica routing: the paper's uniform
  marginal, round-robin, and contention-aware least-loaded balancing on
  live probe counters;
- :mod:`~repro.serve.admission` — bounded in-flight queue with typed
  load shedding;
- :mod:`~repro.serve.service` — the clockless sharded core composing
  all of the above over ``ReplicatedDictionary`` shards, with failover
  on injected replica crashes;
- :mod:`~repro.serve.client` — deterministic virtual-time load
  generation (open/closed loop) with latency and load reporting;
- :mod:`~repro.serve.asyncio_server` — the wall-clock asyncio shell;
- :mod:`~repro.serve.health` — the self-healing layer: per-replica
  health state machines, circuit-breaker canaries, scrub/rebuild
  orchestration, and priority-aware graceful degradation;
- :mod:`~repro.serve.chaos` — seeded randomized fault schedules and
  the chaos driver validating steady-state healing (experiment E21);
- :mod:`~repro.serve.dynamic_service` — the *mutable* sharded service:
  replicated dynamic dictionaries with a micro-batched write path,
  write admission control (:class:`~repro.errors.UpdateBacklogError`),
  read-your-writes, and epoch-pinned linearizable multi-key reads
  (experiment E24).

Experiment E19 validates the stack end-to-end: measured per-cell load
under live random routing matches exact Φ_t within sampling error, and
least-loaded routing beats round-robin on Zipf workloads.  E21 runs
the chaos schedule against the healing stack: zero wrong answers,
bounded MTTR, and per-cell loads inside the Binomial envelope at the
surviving replica count.
"""

from repro.serve.admission import AdmissionController
from repro.serve.asyncio_server import AsyncDictionaryServer, serve_forever
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.chaos import (
    ChaosEvent,
    ChaosReport,
    ChaosSchedule,
    run_chaos,
)
from repro.serve.client import (
    LoadReport,
    run_closed_loop,
    run_loadgen,
    run_open_loop,
)
from repro.serve.health import (
    HEALTH_STATES,
    HealthConfig,
    HealthManager,
    ReplicaHealth,
)
from repro.serve.router import (
    BREAKER_STATES,
    ROUTERS,
    CircuitBreaker,
    LeastLoadedRouter,
    RandomRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.serve.dynamic_service import (
    DynamicServiceStats,
    DynamicShardedService,
    UpdateTicket,
    build_dynamic_service,
)
from repro.serve.service import (
    ServiceStats,
    ShardedDictionaryService,
    Ticket,
    build_service,
)

__all__ = [
    "AdmissionController",
    "AsyncDictionaryServer",
    "BREAKER_STATES",
    "Batch",
    "ChaosEvent",
    "ChaosReport",
    "ChaosSchedule",
    "CircuitBreaker",
    "DynamicServiceStats",
    "DynamicShardedService",
    "HEALTH_STATES",
    "HealthConfig",
    "HealthManager",
    "LeastLoadedRouter",
    "LoadReport",
    "MicroBatcher",
    "ROUTERS",
    "RandomRouter",
    "ReplicaHealth",
    "RoundRobinRouter",
    "Router",
    "ServiceStats",
    "ShardedDictionaryService",
    "Ticket",
    "UpdateTicket",
    "build_dynamic_service",
    "build_service",
    "make_router",
    "run_chaos",
    "run_closed_loop",
    "run_loadgen",
    "run_open_loop",
    "serve_forever",
]
