"""repro.serve — sharded dictionary serving with contention-aware routing.

The serving subsystem turns the library's static dictionaries into a
live membership service and closes the loop between the paper's
*analysis* (exact per-cell contention Φ_t) and *operations* (what a
running replica fleet actually experiences):

- :mod:`~repro.serve.batcher` — micro-batching of the request stream
  into ``query_batch`` calls (size/deadline flush policy);
- :mod:`~repro.serve.router` — replica routing: the paper's uniform
  marginal, round-robin, and contention-aware least-loaded balancing on
  live probe counters;
- :mod:`~repro.serve.admission` — bounded in-flight queue with typed
  load shedding;
- :mod:`~repro.serve.service` — the clockless sharded core composing
  all of the above over ``ReplicatedDictionary`` shards, with failover
  on injected replica crashes;
- :mod:`~repro.serve.client` — deterministic virtual-time load
  generation (open/closed loop) with latency and load reporting;
- :mod:`~repro.serve.asyncio_server` — the wall-clock asyncio shell.

Experiment E19 validates the stack end-to-end: measured per-cell load
under live random routing matches exact Φ_t within sampling error, and
least-loaded routing beats round-robin on Zipf workloads.
"""

from repro.serve.admission import AdmissionController
from repro.serve.asyncio_server import AsyncDictionaryServer, serve_forever
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.client import (
    LoadReport,
    run_closed_loop,
    run_loadgen,
    run_open_loop,
)
from repro.serve.router import (
    ROUTERS,
    LeastLoadedRouter,
    RandomRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.serve.service import (
    ServiceStats,
    ShardedDictionaryService,
    Ticket,
    build_service,
)

__all__ = [
    "AdmissionController",
    "AsyncDictionaryServer",
    "Batch",
    "LeastLoadedRouter",
    "LoadReport",
    "MicroBatcher",
    "ROUTERS",
    "RandomRouter",
    "RoundRobinRouter",
    "Router",
    "ServiceStats",
    "ShardedDictionaryService",
    "Ticket",
    "build_service",
    "make_router",
    "run_closed_loop",
    "run_loadgen",
    "run_open_loop",
    "serve_forever",
]
