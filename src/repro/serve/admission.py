"""Admission control: a bounded in-flight queue with load shedding.

An open-loop arrival process has no intrinsic back-pressure; when
offered load exceeds what the replicas can serve, an unbounded queue
grows without limit and every request's latency diverges.  The
standard remedy is to bound the number of requests admitted but not
yet completed and *shed* (reject fast) beyond it — a full queue means
the service is already running at capacity, so queueing more requests
only adds latency, never throughput.

Shedding raises the typed :class:`~repro.errors.OverloadError` carrying
the observed depth and the configured capacity, so clients can
implement informed backoff; the controller keeps lifetime counters for
the loadgen / experiment tables.
"""

from __future__ import annotations

from repro.errors import OverloadError, ParameterError
from repro.telemetry.events import BUS, AdmissionEvent
from repro.utils.validation import check_positive_integer


class AdmissionController:
    """Bounds requests in flight (admitted, not yet completed)."""

    def __init__(self, capacity: int = 1024):
        self.capacity = check_positive_integer("capacity", capacity)
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.peak_in_flight = 0

    def admit(self) -> None:
        """Admit one request or shed it with :class:`OverloadError`."""
        if self.in_flight >= self.capacity:
            self.shed += 1
            if BUS.active:
                BUS.emit(AdmissionEvent(
                    admitted=False, depth=self.in_flight,
                    capacity=self.capacity,
                ))
            raise OverloadError(self.in_flight, self.capacity)
        self.in_flight += 1
        self.admitted += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        if BUS.active:
            BUS.emit(AdmissionEvent(
                admitted=True, depth=self.in_flight, capacity=self.capacity,
            ))

    def release(self, count: int = 1) -> None:
        """Mark ``count`` admitted requests as completed."""
        count = int(count)
        if count < 0 or count > self.in_flight:
            raise ParameterError(
                f"cannot release {count} requests with "
                f"{self.in_flight} in flight"
            )
        self.in_flight -= count

    @property
    def shed_fraction(self) -> float:
        """Shed requests per offered request."""
        offered = self.admitted + self.shed
        return self.shed / offered if offered else 0.0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "peak_in_flight": self.peak_in_flight,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController(capacity={self.capacity}, "
            f"in_flight={self.in_flight}, shed={self.shed})"
        )
