"""Admission control: a bounded in-flight queue with load shedding.

An open-loop arrival process has no intrinsic back-pressure; when
offered load exceeds what the replicas can serve, an unbounded queue
grows without limit and every request's latency diverges.  The
standard remedy is to bound the number of requests admitted but not
yet completed and *shed* (reject fast) beyond it — a full queue means
the service is already running at capacity, so queueing more requests
only adds latency, never throughput.

Shedding raises the typed :class:`~repro.errors.OverloadError` carrying
the observed depth and the configured capacity, so clients can
implement informed backoff; the controller keeps lifetime counters for
the loadgen / experiment tables.

**Graceful degradation** (driven by the self-healing layer): when
healthy capacity drops — replicas quarantined, crashed, or rebuilding —
the health manager calls :meth:`AdmissionController.set_degraded` with
the surviving capacity fraction.  Low-priority requests are then shed
at the *effective* capacity (``capacity * fraction``) with the typed
:class:`~repro.errors.DegradedModeError`, while high-priority requests
keep the full queue — the service protects the traffic that matters
instead of degrading uniformly.  With ``fraction == 1.0`` (the default,
and whenever every replica is healthy) the degraded path is never
entered and admission behaves byte-identically to the seed controller.
"""

from __future__ import annotations

import math

from repro.errors import DegradedModeError, OverloadError, ParameterError
from repro.telemetry.events import BUS, AdmissionEvent
from repro.utils.validation import check_positive_integer


class AdmissionController:
    """Bounds requests in flight (admitted, not yet completed)."""

    def __init__(self, capacity: int = 1024):
        self.capacity = check_positive_integer("capacity", capacity)
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.peak_in_flight = 0
        self.degraded_fraction = 1.0
        self.degraded_shed = 0

    def set_degraded(self, fraction: float) -> None:
        """Set the healthy-capacity fraction in ``(0, 1]``.

        ``1.0`` restores full admission; anything lower sheds
        low-priority requests beyond :attr:`effective_capacity`.
        """
        fraction = float(fraction)
        if not 0.0 < fraction <= 1.0:
            raise ParameterError(
                f"degraded fraction must be in (0, 1], got {fraction}"
            )
        self.degraded_fraction = fraction

    @property
    def effective_capacity(self) -> int:
        """The low-priority admission bound under degradation."""
        return max(1, int(math.floor(self.capacity * self.degraded_fraction)))

    def admit(self, priority: int = 0) -> None:
        """Admit one request or shed it with a typed error.

        At full queue every request sheds with
        :class:`~repro.errors.OverloadError`.  Under degradation
        (fraction < 1), requests with ``priority <= 0`` additionally
        shed at :attr:`effective_capacity` with
        :class:`~repro.errors.DegradedModeError` — a distinct type, so
        clients can tell "the service is full" from "the service is
        wounded and triaging".
        """
        if self.in_flight >= self.capacity:
            self.shed += 1
            if BUS.active:
                BUS.emit(AdmissionEvent(
                    admitted=False, depth=self.in_flight,
                    capacity=self.capacity,
                ))
            raise OverloadError(self.in_flight, self.capacity)
        if (
            self.degraded_fraction < 1.0
            and int(priority) <= 0
            and self.in_flight >= self.effective_capacity
        ):
            self.shed += 1
            self.degraded_shed += 1
            if BUS.active:
                BUS.emit(AdmissionEvent(
                    admitted=False, depth=self.in_flight,
                    capacity=self.effective_capacity,
                ))
            raise DegradedModeError(
                self.in_flight, self.effective_capacity,
                self.degraded_fraction,
            )
        self.in_flight += 1
        self.admitted += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        if BUS.active:
            BUS.emit(AdmissionEvent(
                admitted=True, depth=self.in_flight, capacity=self.capacity,
            ))

    def release(self, count: int = 1) -> None:
        """Mark ``count`` admitted requests as completed."""
        count = int(count)
        if count < 0 or count > self.in_flight:
            raise ParameterError(
                f"cannot release {count} requests with "
                f"{self.in_flight} in flight"
            )
        self.in_flight -= count

    @property
    def shed_fraction(self) -> float:
        """Shed requests per offered request."""
        offered = self.admitted + self.shed
        return self.shed / offered if offered else 0.0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "degraded_shed": self.degraded_shed,
            "peak_in_flight": self.peak_in_flight,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController(capacity={self.capacity}, "
            f"in_flight={self.in_flight}, shed={self.shed})"
        )
