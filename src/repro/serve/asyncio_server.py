"""Asyncio front end for the sharded dictionary service.

:class:`~repro.serve.service.ShardedDictionaryService` is clockless and
synchronous; this module is the thin real-time shell around it:

- :meth:`AsyncDictionaryServer.query` awaits one membership answer —
  the request joins its shard's micro-batch and the future resolves
  when the batch dispatches;
- a single background *flusher* task sleeps until the earliest batch
  deadline and fires it, so the ``max_delay`` latency bound holds on
  the wall clock;
- concurrency control is the service's own admission layer —
  :class:`~repro.errors.OverloadError` propagates to the awaiting
  caller immediately (shed fast, never queue).

All service mutation happens on the event-loop thread (submits run in
``query``, deadline flushes in the flusher coroutine), so the sans-io
core needs no locks.  Time comes from ``loop.time()`` — the service
never reads a clock itself.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.errors import ServeError
from repro.serve.service import ShardedDictionaryService, Ticket


class AsyncDictionaryServer:
    """Awaitable membership queries over a sharded dictionary service."""

    def __init__(self, service: ShardedDictionaryService):
        self.service = service
        self._loop: asyncio.AbstractEventLoop | None = None
        self._flusher: asyncio.Task | None = None
        self._kick = asyncio.Event()
        self._futures: dict[int, asyncio.Future] = {}
        self._closing = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the flusher task is active."""
        return self._flusher is not None and not self._flusher.done()

    async def start(self) -> None:
        """Attach to the running loop and start the deadline flusher."""
        if self.running:
            raise ServeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._closing = False
        self.service.on_complete = self._resolve
        self._flusher = asyncio.create_task(
            self._flush_loop(), name="repro-serve-flusher"
        )

    async def stop(self) -> None:
        """Drain in-flight batches, resolve their futures, stop the flusher.

        Graceful shutdown is ordered so no awaiting caller is ever left
        hanging: the flusher is stopped *first* (and its failure, if it
        crashed mid-run, is captured rather than short-circuiting the
        shutdown), then every pending batch is drained and its futures
        resolved, then any future still unresolved — possible only if
        the service itself lost the ticket — is failed with a
        :class:`~repro.errors.ServeError`.  A crashed flusher's
        exception is re-raised at the end, after the drain, so callers
        see the failure *and* clients see their answers.
        """
        self._closing = True
        self._kick.set()
        flusher_error: BaseException | None = None
        if self._flusher is not None:
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                flusher_error = exc
            self._flusher = None
        if self._loop is not None:
            self.service.drain(self._loop.time())
        self.service.on_complete = None
        leftovers = list(self._futures.values())
        self._futures.clear()
        for future in leftovers:
            if not future.done():
                future.set_exception(
                    ServeError("server stopped before the request was served")
                )
        if flusher_error is not None:
            raise flusher_error

    async def __aenter__(self) -> "AsyncDictionaryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- request path ------------------------------------------------------------

    async def query(self, x: int) -> bool:
        """Membership of ``x``, served through batch + routing.

        Raises :class:`~repro.errors.OverloadError` when shed by
        admission control and :class:`~repro.errors.QueryError` for
        keys outside the universe.
        """
        if not self.running:
            raise ServeError("server is not running")
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        ticket = self.service.submit(int(x), self._loop.time())
        if ticket.done:
            # The arrival itself flushed a full batch; _resolve already
            # ran for the *other* tickets but this one had no future
            # registered yet.
            return bool(ticket.answer)
        self._futures[id(ticket)] = future
        self._kick.set()  # new deadline may now be earliest
        return await future

    async def query_many(self, xs) -> list[bool]:
        """Concurrent :meth:`query` for every key in ``xs``."""
        xs = np.asarray(xs, dtype=np.int64)
        return list(
            await asyncio.gather(*(self.query(int(x)) for x in xs))
        )

    # -- observability -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The ``/metrics``-style snapshot of the running server.

        Merges the service's lifetime counters and admission state with
        the attached telemetry hub's snapshot (when the service carries
        one): the versioned JSON payload a scrape endpoint would serve.
        """
        service = self.service
        hub = getattr(service, "telemetry", None)
        if hub is not None:
            snap = hub.snapshot()
        else:
            snap = {"version": 1, "kind": "repro-metrics"}
        snap["server"] = {
            "running": self.running,
            "pending_futures": len(self._futures),
            **service.stats.row(),
            **service.admission.row(),
        }
        return snap

    def metrics_text(self) -> str:
        """Prometheus text exposition of the hub's metrics (or empty)."""
        hub = getattr(self.service, "telemetry", None)
        if hub is None or hub.metrics is None:
            return ""
        return hub.metrics.to_prometheus()

    # -- internals ---------------------------------------------------------------

    def _resolve(self, tickets: list[Ticket]) -> None:
        for t in tickets:
            future = self._futures.pop(id(t), None)
            if future is not None and not future.done():
                future.set_result(bool(t.answer))

    async def _flush_loop(self) -> None:
        assert self._loop is not None
        while not self._closing:
            deadline = self.service.next_deadline()
            if deadline is None:
                self._kick.clear()
                await self._kick.wait()
                continue
            delay = deadline - self._loop.time()
            if delay > 0:
                self._kick.clear()
                try:
                    await asyncio.wait_for(self._kick.wait(), delay)
                    continue  # woken early: recompute earliest deadline
                except asyncio.TimeoutError:
                    pass
            self.service.advance(self._loop.time())


async def serve_forever(
    service: ShardedDictionaryService,
    ready: asyncio.Event | None = None,
) -> AsyncDictionaryServer:  # pragma: no cover - exercised by CLI smoke
    """Run a server until cancelled (the ``repro serve`` entry point)."""
    server = AsyncDictionaryServer(service)
    await server.start()
    if ready is not None:
        ready.set()
    try:
        while True:
            await asyncio.sleep(3600.0)
    except asyncio.CancelledError:
        await server.stop()
        raise
