"""Micro-batching: turn a request stream into ``query_batch`` calls.

The PR 1 batch engine made *offline* batches fast; serving needs the
inverse direction — accumulate an *online* stream of single-key
requests into batches without holding any request too long.  The
paper's structures make this safe: probe distributions are fixed per
query (non-adaptive across queries), so a batch executes out-of-order
with probe accounting identical to the scalar path (property-tested in
``tests/test_batch_query.py``).

:class:`MicroBatcher` is sans-io and clockless: callers pass ``now``
explicitly, so the same batcher drives both the deterministic
virtual-time loadgen (:mod:`repro.serve.client`) and the wall-clock
asyncio server (:mod:`repro.serve.asyncio_server`).

Flush policy — the standard two-knob rule:

- **max_size** — a batch never exceeds ``max_size`` requests; hitting
  the cap flushes immediately (throughput bound);
- **max_delay** — the *oldest* pending request never waits more than
  ``max_delay`` time units for dispatch (latency bound).
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import ParameterError
from repro.telemetry.events import BUS, BatchEvent
from repro.utils.validation import check_positive_integer


@dataclasses.dataclass
class Batch:
    """One flushed batch: the requests plus flush bookkeeping."""

    requests: list
    opened: float
    flushed: float
    reason: str  # "size" | "delay" | "drain"

    @property
    def size(self) -> int:
        """Number of requests in the batch."""
        return len(self.requests)


class MicroBatcher:
    """Size/deadline micro-batcher for one shard's request stream.

    Parameters
    ----------
    max_size:
        Flush as soon as this many requests are pending.
    max_delay:
        Flush once the oldest pending request is this old (same time
        unit as the ``now`` values passed by the caller).
    """

    def __init__(self, max_size: int = 32, max_delay: float = 1.0):
        self.max_size = check_positive_integer("max_size", max_size)
        if not float(max_delay) >= 0.0:
            raise ParameterError("max_delay must be >= 0")
        self.max_delay = float(max_delay)
        self._pending: list = []
        self._opened: float = 0.0
        self.flushed_batches = 0
        self.flushed_requests = 0

    @property
    def pending(self) -> int:
        """Requests currently waiting for dispatch."""
        return len(self._pending)

    def next_deadline(self) -> float | None:
        """Latest time the pending batch may flush; None when empty."""
        if not self._pending:
            return None
        return self._opened + self.max_delay

    def add(self, request: Any, now: float) -> Batch | None:
        """Enqueue one request; returns a batch iff the size cap flushed."""
        if not self._pending:
            self._opened = float(now)
        self._pending.append(request)
        if len(self._pending) >= self.max_size:
            return self._flush(now, "size")
        return None

    def poll(self, now: float) -> Batch | None:
        """Returns the pending batch iff its deadline has passed."""
        deadline = self.next_deadline()
        if deadline is not None and float(now) >= deadline:
            return self._flush(now, "delay")
        return None

    def drain(self, now: float) -> Batch | None:
        """Flush whatever is pending regardless of deadline (shutdown)."""
        if self._pending:
            return self._flush(now, "drain")
        return None

    def _flush(self, now: float, reason: str) -> Batch:
        batch = Batch(
            requests=self._pending,
            opened=self._opened,
            flushed=float(now),
            reason=reason,
        )
        self._pending = []
        self.flushed_batches += 1
        self.flushed_requests += batch.size
        if BUS.active:
            BUS.emit(BatchEvent(
                size=batch.size, reason=reason,
                waited=batch.flushed - batch.opened,
            ))
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(max_size={self.max_size}, "
            f"max_delay={self.max_delay}, pending={self.pending})"
        )
