"""Seeded chaos schedules and the chaos driver (experiment E21).

A chaos run is an open-loop workload with a **fault schedule** woven
into virtual time: replica crashes, silent bit flips, stuck-at cells,
and contention spikes, all placed by a seeded RNG so every run is a
deterministic function of ``(schedule seed, workload seed)``.  The
driver replays the schedule against a healing-enabled
:class:`~repro.serve.service.ShardedDictionaryService`, then drives
the healing loop to quiescence and reports:

- correctness — wrong answers among completed requests (must be zero
  with healing on: verified dispatch and the canary gate make sure a
  damaged replica never propagates an answer);
- availability — shed vs degraded-shed vs completed counts;
- recovery — MTTR per healed replica, healing work performed, and the
  per-cell probe snapshots E21 checks against the Binomial(Q, Φ_t)
  envelope at the surviving replica count.

Faults are injected *physically* through the dictionary's dynamic
fault hooks (:meth:`~repro.dictionaries.replicated.
ReplicatedDictionary.crash_replica` and friends), not by patching
answers — the healing layer sees exactly what a real fleet would.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import (
    DegradedModeError,
    HealError,
    OverloadError,
    ParameterError,
)
from repro.serve.service import ShardedDictionaryService, Ticket
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

#: Chaos event vocabulary (in-process replica faults + load spikes).
CHAOS_KINDS = ("crash", "corrupt", "stick", "spike-start", "spike-end")

#: Fabric-level event vocabulary (:mod:`repro.parallel` only): SIGKILL
#: of one worker process and silent corruption of a shared table
#: segment.  Applied through
#: :meth:`~repro.parallel.fabric.ParallelDictionaryService.
#: apply_fabric_event`; drivers replaying against an in-process service
#: count them as skipped instead of failing.
FABRIC_KINDS = ("kill-worker", "corrupt-segment")


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault, applied when virtual time reaches ``time``."""

    time: float
    kind: str
    shard: int = 0
    replica: int = -1
    #: Inner flat cell indices (``corrupt`` / ``stick``), or flat packed
    #: table words (``corrupt-segment``).
    cells: tuple = ()
    #: XOR masks, one per cell (``corrupt`` / ``corrupt-segment``).
    masks: tuple = ()
    #: Stuck-at values, one per cell (``stick`` events).
    values: tuple = ()
    #: Victim worker slot (``kill-worker`` events).
    worker: int = -1

    def __post_init__(self):
        if self.kind not in CHAOS_KINDS + FABRIC_KINDS:
            raise ParameterError(
                f"unknown chaos kind {self.kind!r}; options: "
                f"{CHAOS_KINDS + FABRIC_KINDS}"
            )


@dataclasses.dataclass
class ChaosSchedule:
    """A time-sorted fault schedule over one run's virtual horizon."""

    events: list[ChaosEvent]
    horizon: float

    def __post_init__(self):
        if not float(self.horizon) > 0.0:
            raise ParameterError("horizon must be > 0")
        for event in self.events:
            if not 0.0 <= float(event.time) <= float(self.horizon):
                raise ParameterError(
                    f"chaos event {event.kind!r} at t={event.time} lies "
                    f"outside [0, horizon={self.horizon}]; boundary "
                    f"events (t == horizon) are applied before "
                    f"quiescence, later ones would silently never fire"
                )
        self.events = sorted(self.events, key=lambda e: (e.time, e.kind))

    @property
    def damage_events(self) -> list[ChaosEvent]:
        """Events that damage a replica (everything but spikes)."""
        return [
            e for e in self.events
            if e.kind in ("crash", "corrupt", "stick")
        ]

    @classmethod
    def generate(
        cls,
        seed,
        horizon: float,
        replicas: int,
        inner_cells: int,
        shard: int = 0,
        crashes: int = 1,
        corruptions: int = 1,
        stuck: int = 1,
        spikes: int = 1,
        flips_per_corruption: int = 4,
        cells_per_stick: int = 2,
    ) -> "ChaosSchedule":
        """Sample a randomized schedule (deterministic given ``seed``).

        Damage lands on *distinct* replicas, and the total number of
        damaged replicas must leave a strict majority untouched —
        that is the regime in which majority-vote repair is guaranteed
        and the one the chaos experiment validates.  Fault times land
        in the middle ``[0.15, 0.75]`` stretch of the horizon so every
        fault has healing room before the run ends.
        """
        horizon = float(horizon)
        if not horizon > 0.0:
            raise ParameterError("horizon must be > 0")
        damaged = int(crashes) + int(corruptions) + int(stuck)
        if damaged > (int(replicas) - 1) // 2:
            raise ParameterError(
                f"{damaged} damaged replicas of {replicas} leaves no "
                f"strict healthy majority; use more replicas or fewer "
                f"faults"
            )
        rng = as_generator(seed)
        victims = rng.permutation(int(replicas))[:damaged]
        times = np.sort(
            rng.uniform(0.15 * horizon, 0.75 * horizon, size=damaged)
        )
        kinds = (
            ["crash"] * int(crashes)
            + ["corrupt"] * int(corruptions)
            + ["stick"] * int(stuck)
        )
        events: list[ChaosEvent] = []
        for time, kind, victim in zip(times, kinds, victims):
            if kind == "crash":
                events.append(ChaosEvent(
                    time=float(time), kind="crash", shard=shard,
                    replica=int(victim),
                ))
            elif kind == "corrupt":
                cells = rng.integers(
                    0, inner_cells, size=int(flips_per_corruption)
                )
                masks = rng.integers(
                    1, 1 << 63, size=int(flips_per_corruption),
                    dtype=np.uint64,
                )
                events.append(ChaosEvent(
                    time=float(time), kind="corrupt", shard=shard,
                    replica=int(victim),
                    cells=tuple(int(c) for c in np.unique(cells)),
                    masks=tuple(
                        int(m) for m in masks[:np.unique(cells).size]
                    ),
                ))
            else:
                cells = np.unique(rng.integers(
                    0, inner_cells, size=int(cells_per_stick)
                ))
                values = rng.integers(
                    0, 1 << 63, size=cells.size, dtype=np.uint64
                )
                events.append(ChaosEvent(
                    time=float(time), kind="stick", shard=shard,
                    replica=int(victim),
                    cells=tuple(int(c) for c in cells),
                    values=tuple(int(v) for v in values),
                ))
        for _ in range(int(spikes)):
            start = float(rng.uniform(0.15 * horizon, 0.7 * horizon))
            length = float(rng.uniform(0.05 * horizon, 0.15 * horizon))
            events.append(ChaosEvent(time=start, kind="spike-start"))
            events.append(ChaosEvent(
                time=min(start + length, 0.95 * horizon), kind="spike-end",
            ))
        return cls(events=events, horizon=horizon)


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one chaos run (deterministic given the seeds)."""

    requested: int
    completed: int
    shed: int
    degraded_shed: int
    wrong_answers: int
    duration: float
    events_applied: int
    heal_ticks: int
    #: ``{time, completed, probes, cell_counts, live, states}`` dicts
    #: captured at the requested mark times (and once at the end).
    snapshots: list
    #: The health manager's flat summary row (violations, MTTR count…).
    heal: dict
    #: Recovery durations of completed heals, in virtual time.
    mttr: list
    #: Final health state per (shard, replica), e.g. ``"0/2": "healthy"``.
    final_states: dict
    #: Fabric-level events the replay target could not express (e.g. a
    #: ``kill-worker`` event replayed against an in-process service).
    events_skipped: int = 0
    #: Completed-request latency percentiles in virtual time.
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0

    def row(self) -> dict:
        """Flat dict for experiment tables (snapshots elided)."""
        d = {
            "requested": self.requested,
            "completed": self.completed,
            "shed": self.shed,
            "degraded_shed": self.degraded_shed,
            "wrong_answers": self.wrong_answers,
            "duration": self.duration,
            "events_applied": self.events_applied,
            "events_skipped": self.events_skipped,
            "heal_ticks": self.heal_ticks,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "mttr_max": max(self.mttr) if self.mttr else 0.0,
            "recoveries": len(self.mttr),
        }
        d.update({f"heal_{k}": v for k, v in self.heal.items()})
        return d


def _apply_event(
    service: ShardedDictionaryService, event: ChaosEvent
) -> str:
    """Inject one fault; returns ``"spike"``/``"applied"``/``"skipped"``.

    Fabric-level kinds (:data:`FABRIC_KINDS`) route through the
    service's ``apply_fabric_event`` hook when it has one (the
    :class:`~repro.parallel.fabric.ParallelDictionaryService` engine);
    an in-process service replaying the same schedule reports them as
    skipped instead of failing, so one genome replays everywhere.
    """
    if event.kind in ("spike-start", "spike-end"):
        return "spike"
    if event.kind in FABRIC_KINDS:
        apply_fabric = getattr(service, "apply_fabric_event", None)
        if apply_fabric is None:
            return "skipped"
        return "applied" if apply_fabric(event) else "skipped"
    d = service.shards[event.shard]
    if event.kind == "crash":
        d.crash_replica(event.replica)
    elif event.kind == "corrupt":
        for cell, mask in zip(event.cells, event.masks):
            d.corrupt_cell(event.replica, int(cell), int(mask))
    elif event.kind == "stick":
        d.stick_cells(
            event.replica,
            np.asarray(event.cells, dtype=np.int64),
            np.asarray(event.values, dtype=np.uint64),
        )
    return "applied"


def _snapshot(service: ShardedDictionaryService, now: float) -> dict:
    health = service.health
    return {
        "time": float(now),
        "completed": int(service.stats.completed),
        "probes": int(service.stats.probes),
        "cell_counts": service.shards[0].table.counter.total_counts(),
        "live": [list(r.live) for r in service.routers],
        "states": (
            {}
            if health is None
            else {
                f"{s}/{r}": m.state
                for (s, r), m in sorted(health.machines.items())
            }
        ),
    }


def _flush_due(service: ShardedDictionaryService, now: float) -> None:
    while True:
        deadline = service.next_deadline()
        if deadline is None or deadline > now:
            return
        service.advance(deadline)


def run_chaos(
    service: ShardedDictionaryService,
    dist: QueryDistribution,
    schedule: ChaosSchedule,
    num_requests: int,
    rate: float,
    seed=0,
    expected_keys: np.ndarray | None = None,
    spike_dist: QueryDistribution | None = None,
    high_priority_fraction: float = 0.25,
    marks: tuple = (),
    max_heal_ticks: int | None = None,
) -> ChaosReport:
    """Drive ``service`` through a chaos schedule under open-loop load.

    Arrivals are Poisson at ``rate``; each request is high-priority
    with probability ``high_priority_fraction`` (low-priority requests
    are the ones degraded-mode admission sheds).  During a contention
    spike keys are drawn from ``spike_dist`` instead of ``dist``.
    Schedule events fire at their virtual times (pending batch
    deadlines flush first, so a fault never time-travels ahead of
    traffic).  After the last arrival the service drains, and the
    healing loop ticks until every replica reaches a terminal state
    (healthy, or incorrigibly quarantined) or the tick budget runs
    out.

    ``marks`` are virtual times at which to snapshot per-cell counts
    and live sets — the windows E21's envelope check is stated over.
    A final snapshot is always appended after healing quiesces.
    """
    num_requests = check_positive_integer("num_requests", num_requests)
    if not float(rate) > 0.0:
        raise ParameterError("rate must be > 0")
    if not 0.0 <= float(high_priority_fraction) <= 1.0:
        raise ParameterError("high_priority_fraction must be in [0, 1]")
    health = service.health
    rng = as_generator(seed)
    arrivals = np.cumsum(
        rng.exponential(1.0 / float(rate), size=num_requests)
    )
    keys = dist.sample(rng, num_requests)
    spike_keys = (
        spike_dist.sample(rng, num_requests)
        if spike_dist is not None
        else keys
    )
    priorities = (
        rng.random(num_requests) < float(high_priority_fraction)
    ).astype(np.int64)
    done: list[Ticket] = []
    service.on_complete = done.extend
    shed = 0
    degraded_base = service.admission.degraded_shed
    pending_events = list(schedule.events)
    pending_marks = sorted(float(m) for m in marks)
    snapshots: list[dict] = []
    events_applied = 0
    events_skipped = 0
    spiking = False

    def fire(event: ChaosEvent) -> None:
        """Apply one due event and fold it into the run's tallies."""
        nonlocal spiking, events_applied, events_skipped
        status = _apply_event(service, event)
        if status == "spike":
            spiking = event.kind == "spike-start"
        if status == "skipped":
            events_skipped += 1
        else:
            events_applied += 1

    try:
        for t, x, sx, prio in zip(arrivals, keys, spike_keys, priorities):
            t = float(t)
            while pending_events and pending_events[0].time <= t:
                event = pending_events.pop(0)
                _flush_due(service, event.time)
                fire(event)
            while pending_marks and pending_marks[0] <= t:
                mark = pending_marks.pop(0)
                _flush_due(service, mark)
                snapshots.append(_snapshot(service, mark))
            _flush_due(service, t)
            key = int(sx) if spiking else int(x)
            try:
                service.submit(key, t, priority=int(prio))
            except (OverloadError, DegradedModeError):
                shed += 1
        end = float(arrivals[-1])
        # Events past the last arrival — horizon-boundary events
        # (time == horizon) included — still fire before the drain and
        # the healing loop below; they are never silently dropped.
        for event in pending_events:
            _flush_due(service, event.time)
            fire(event)
            end = max(end, float(event.time))
        while service.next_deadline() is not None:
            end = service.next_deadline()
            service.advance(end)
        for mark in pending_marks:
            snapshots.append(_snapshot(service, mark))
        # Heal to quiescence: tick until every machine is terminal.
        heal_ticks = 0
        if health is not None:
            if max_heal_ticks is None:
                chunks = max(
                    -(-d.inner_rows // health.config.scrub_rows_per_chunk)
                    for d in service.shards
                )
                max_heal_ticks = 50 + 8 * chunks * service.num_shards
            while heal_ticks < max_heal_ticks:
                if all(
                    m.state == "healthy" or m.incorrigible
                    for m in health.machines.values()
                ):
                    break
                end += 1.0
                health.tick(end)
                heal_ticks += 1
        snapshots.append(_snapshot(service, end))
    finally:
        service.on_complete = None
    wrong = 0
    if expected_keys is not None and len(done):
        expected = np.asarray(expected_keys, dtype=np.int64)
        got = np.asarray([t.key for t in done], dtype=np.int64)
        answers = np.asarray([t.answer for t in done], dtype=bool)
        truth = np.isin(got, expected)
        wrong = int(np.sum(answers != truth))
    p50 = p95 = p99 = 0.0
    if done:
        latencies = np.asarray([t.latency for t in done], dtype=np.float64)
        p50, p95, p99 = (
            float(v) for v in np.percentile(latencies, [50.0, 95.0, 99.0])
        )
    return ChaosReport(
        requested=num_requests,
        completed=len(done),
        shed=shed,
        degraded_shed=service.admission.degraded_shed - degraded_base,
        wrong_answers=wrong,
        duration=float(end),
        events_applied=events_applied,
        heal_ticks=heal_ticks if health is not None else 0,
        snapshots=snapshots,
        heal={} if health is None else health.row(),
        mttr=[] if health is None else health.mttr_values(),
        final_states=(
            {}
            if health is None
            else {
                f"{s}/{r}": m.state
                for (s, r), m in sorted(health.machines.items())
            }
        ),
        events_skipped=events_skipped,
        latency_p50=p50,
        latency_p95=p95,
        latency_p99=p99,
    )


def require_armed(service: ShardedDictionaryService) -> None:
    """Raise :class:`~repro.errors.HealError` unless faults are armed.

    Chaos schedules inject through the dictionaries' dynamic fault
    hooks, which exist only when the service was built with an armed
    :class:`~repro.faults.FaultConfig` — checked up front so a
    misconfigured run fails before any traffic is served.
    """
    for shard, d in enumerate(service.shards):
        if d._injector is None:
            raise HealError(
                f"shard {shard} has no fault layer; build the service "
                f"with FaultConfig(armed=True) to run chaos schedules"
            )
