"""Load generation against the sharded dictionary service.

Both canonical arrival disciplines, driven in **virtual time** so every
run is a deterministic function of its seed (the E19 reproducibility
requirement):

- **open loop** — Poisson arrivals at a configured rate, independent of
  service progress.  This is the discipline that exposes overload: the
  arrival process does not slow down when the service falls behind, so
  admission control must shed.
- **closed loop** — a fixed population of clients, each waiting for its
  answer plus a think time before issuing the next request.  Offered
  load self-limits, making this the discipline for latency-vs-
  concurrency curves.

Queries are drawn i.i.d. from any
:class:`~repro.distributions.base.QueryDistribution` (uniform, Zipf,
adversarial …), so the loadgen stresses the service with exactly the
workloads the contention analysis covers.  The generator verifies every
answer against ground-truth membership when given the key set.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import OverloadError, ParameterError
from repro.serve.service import ShardedDictionaryService, Ticket
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer


@dataclasses.dataclass
class LoadReport:
    """Aggregate outcome of one loadgen run (deterministic given seed)."""

    discipline: str
    requested: int
    completed: int
    shed: int
    wrong_answers: int
    duration: float
    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    batches: int
    mean_batch_size: float
    failovers: int
    probes: int
    replica_loads: list[list[int]]

    def row(self) -> dict:
        """Flat dict for experiment tables (loads joined as text)."""
        d = dataclasses.asdict(self)
        d["replica_loads"] = "|".join(
            ",".join(str(x) for x in shard) for shard in self.replica_loads
        )
        return d


def _percentiles(latencies: list[float]) -> tuple[float, float, float, float]:
    if not latencies:
        return (float("nan"),) * 4
    arr = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return float(arr.mean()), float(p50), float(p95), float(p99)


def _finish_report(
    service: ShardedDictionaryService,
    discipline: str,
    requested: int,
    shed: int,
    done: list[Ticket],
    expected: np.ndarray | None,
    end: float,
) -> LoadReport:
    wrong = 0
    if expected is not None and expected.size and done:
        keys = np.asarray([t.key for t in done], dtype=np.int64)
        answers = np.asarray([t.answer for t in done], dtype=bool)
        idx = np.searchsorted(expected, keys)
        idx = np.clip(idx, 0, expected.size - 1)
        truth = expected[idx] == keys
        wrong = int(np.sum(answers != truth))
    mean, p50, p95, p99 = _percentiles([t.latency for t in done])
    batches = service.stats.batches
    return LoadReport(
        discipline=discipline,
        requested=requested,
        completed=len(done),
        shed=shed,
        wrong_answers=wrong,
        duration=float(end),
        throughput=len(done) / end if end > 0 else float("nan"),
        latency_mean=mean,
        latency_p50=p50,
        latency_p95=p95,
        latency_p99=p99,
        batches=batches,
        mean_batch_size=len(done) / batches if batches else float("nan"),
        failovers=service.stats.failovers,
        probes=service.stats.probes,
        replica_loads=[
            [int(x) for x in loads] for loads in service.replica_loads()
        ],
    )


def _flush_due(service: ShardedDictionaryService, now: float) -> None:
    """Fire every batch deadline at or before ``now``, in time order."""
    while True:
        deadline = service.next_deadline()
        if deadline is None or deadline > now:
            return
        service.advance(deadline)


def run_open_loop(
    service: ShardedDictionaryService,
    dist: QueryDistribution,
    num_requests: int,
    rate: float,
    seed=0,
    expected_keys: np.ndarray | None = None,
) -> LoadReport:
    """Poisson arrivals at ``rate`` requests per virtual time unit.

    Arrivals never wait for answers; requests beyond the admission
    capacity are shed and counted.  Returns after the final batch
    drains.
    """
    num_requests = check_positive_integer("num_requests", num_requests)
    if not float(rate) > 0.0:
        raise ParameterError("rate must be > 0")
    rng = as_generator(seed)
    arrivals = np.cumsum(
        rng.exponential(1.0 / float(rate), size=num_requests)
    )
    keys = dist.sample(rng, num_requests)
    done: list[Ticket] = []
    service.on_complete = done.extend
    shed = 0
    try:
        for t, x in zip(arrivals, keys):
            _flush_due(service, float(t))
            try:
                service.submit(int(x), float(t))
            except OverloadError:
                shed += 1
        end = float(arrivals[-1])
        while service.next_deadline() is not None:
            end = service.next_deadline()
            service.advance(end)
        end = max(end, max((t.completion for t in done), default=end))
    finally:
        service.on_complete = None
    return _finish_report(
        service, "open", num_requests, shed, done, expected_keys, end
    )


def run_closed_loop(
    service: ShardedDictionaryService,
    dist: QueryDistribution,
    num_requests: int,
    clients: int,
    think_time: float = 0.0,
    seed=0,
    expected_keys: np.ndarray | None = None,
) -> LoadReport:
    """A fixed client population, each one request in flight at a time.

    Every client waits for its answer, thinks for an exponential time
    with mean ``think_time`` (zero = immediate re-issue), then submits
    its next query.  Offered load self-limits, so nothing is shed
    unless ``clients`` exceeds the admission capacity.
    """
    num_requests = check_positive_integer("num_requests", num_requests)
    clients = check_positive_integer("clients", clients)
    if float(think_time) < 0.0:
        raise ParameterError("think_time must be >= 0")
    rng = as_generator(seed)
    keys = dist.sample(rng, num_requests)
    issued = 0
    done: list[Ticket] = []
    owner: dict[int, int] = {}
    # (time, sequence, client) — the sequence number breaks ties
    # deterministically.
    events: list[tuple[float, int, int]] = []
    counter = 0

    def think(now: float) -> float:
        if think_time == 0.0:
            return now
        return now + float(rng.exponential(float(think_time)))

    def completed(tickets: list[Ticket]) -> None:
        nonlocal counter
        done.extend(tickets)
        for t in tickets:
            # A ticket whose own arrival flushed the batch completes
            # inside submit(), before registration; its client is
            # rescheduled on the submit path below.
            client = owner.pop(id(t), None)
            if client is None:
                continue
            heapq.heappush(
                events, (think(t.completion), counter, client)
            )
            counter += 1

    service.on_complete = completed
    for client in range(min(clients, num_requests)):
        heapq.heappush(events, (0.0, counter, client))
        counter += 1
    shed = 0
    end = 0.0
    try:
        while len(done) + shed < num_requests:
            deadline = service.next_deadline()
            if events and (
                deadline is None or events[0][0] <= deadline
            ):
                now, _, client = heapq.heappop(events)
                _flush_due(service, now)
                end = max(end, now)
                if issued >= num_requests:
                    continue  # population shrinks as the run winds down
                x = int(keys[issued])
                issued += 1
                try:
                    ticket = service.submit(x, now)
                    if ticket.done:
                        heapq.heappush(
                            events,
                            (think(ticket.completion), counter, client),
                        )
                        counter += 1
                    else:
                        owner[id(ticket)] = client
                except OverloadError:
                    shed += 1
                    heapq.heappush(events, (think(now), counter, client))
                    counter += 1
            elif deadline is not None:
                end = max(end, deadline)
                service.advance(deadline)
            else:  # pragma: no cover - defensive
                break
        end = max(end, max((t.completion for t in done), default=end))
    finally:
        service.on_complete = None
    return _finish_report(
        service, "closed", num_requests, shed, done, expected_keys, end
    )


def run_loadgen(
    service: ShardedDictionaryService,
    dist: QueryDistribution,
    num_requests: int,
    discipline: str = "open",
    rate: float = 64.0,
    clients: int = 16,
    think_time: float = 0.0,
    seed=0,
    expected_keys: np.ndarray | None = None,
) -> LoadReport:
    """Dispatch to :func:`run_open_loop` / :func:`run_closed_loop`."""
    if discipline == "open":
        return run_open_loop(
            service, dist, num_requests, rate, seed, expected_keys
        )
    if discipline == "closed":
        return run_closed_loop(
            service, dist, num_requests, clients, think_time, seed,
            expected_keys,
        )
    raise ParameterError(
        f"unknown discipline {discipline!r}; options: open, closed"
    )
