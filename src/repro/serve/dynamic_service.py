"""The mutable sharded service: serving reads while applying updates.

The dynamic counterpart of :class:`~repro.serve.service.
ShardedDictionaryService`: each contiguous keyspace shard is a
:class:`~repro.dynamic.replicated.ReplicatedDynamicDictionary` (R
lockstep replicas with majority-voted reads and epoch versioning), and
the service adds a **write path** next to the read path:

- **write micro-batching** — per-shard update batchers group inserts/
  deletes into micro-batched groups; one applied group advances the
  shard's epoch once (one atomic version step);
- **write admission control** — the count of accepted-but-unapplied
  updates is bounded; beyond it :meth:`submit_update` sheds with the
  typed :class:`~repro.errors.UpdateBacklogError` (the write analogue
  of ``OverloadError``);
- **read-your-writes** — a read dispatch first drains its shard's
  pending write batch, so any update admitted before a read is applied
  before that read executes: a client that saw its write admitted will
  see it reflected;
- **pinned reads** — :meth:`read_pinned` pins every touched shard's
  epoch and answers the whole multi-key read against that consistent
  cut, regardless of concurrently applied updates;
- **telemetry** — ``UpdateEvent`` per applied group, ``RebuildEvent``
  per level rebuild (from the level layer), ``EpochEvent`` per epoch
  transition, all behind the zero-overhead ``BUS.active`` guard;
- **log compaction** — with a ``log_retention`` bound, the service
  folds each shard's replay log into a base snapshot
  (:meth:`~repro.dynamic.replicated.ReplicatedDynamicDictionary.
  compact_log`) whenever the retained total reaches the bound, so
  :meth:`update_log_entries` — and rebuild/recovery replay work — is
  bounded instead of growing with write volume;
- **durable checkpoints** — :meth:`attach_checkpoints` wires a
  :class:`~repro.persist.CheckpointStore`; :meth:`advance` then writes
  a new generation every ``checkpoint_every`` virtual-time units
  (``CheckpointEvent`` per shard), and
  :func:`~repro.persist.restore_dynamic_service` rebuilds the service
  after a crash.

Like the static service, the core is clockless (explicit ``now``,
seeded rng streams) and byte-reproducible; reads are majority votes
across each shard's live replicas, so crashed or silently corrupted
replicas are survived by construction rather than by routing policy.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from repro.dynamic.epoch import EpochPin
from repro.dynamic.replicated import ReplicatedDynamicDictionary
from repro.errors import (
    DegradedModeError,
    OverloadError,
    ParameterError,
    QueryError,
    UpdateBacklogError,
)
from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.service import Ticket
from repro.telemetry.events import BUS, DispatchEvent, UpdateEvent
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_positive_integer


#: Warn when the *retained* replayed-update log across shards crosses
#: this many entries.  Without a ``log_retention`` bound every applied
#: update stays in its shard's replay log (the log is what rebuilds
#: crashed replicas), so a long-lived write-heavy service grows memory
#: without bound; with compaction configured the retained count shrinks
#: again and the warning re-arms, so a later runaway is reported too.
#: The ``dynamic_update_log_entries`` gauge tracks the same
#: post-compaction quantity continuously when telemetry is attached.
UPDATE_LOG_WARN_THRESHOLD = 1_000_000


@dataclasses.dataclass
class UpdateTicket:
    """One update's lifecycle: arrival → write batch → applied @ epoch."""

    key: int
    is_insert: bool
    shard: int
    arrival: float
    completion: float | None = None
    epoch: int | None = None

    @property
    def done(self) -> bool:
        """Whether the update has been applied."""
        return self.completion is not None


@dataclasses.dataclass
class DynamicServiceStats:
    """Lifetime counters of one dynamic service instance."""

    submitted: int = 0
    completed: int = 0
    batches: int = 0
    probes: int = 0
    updates_submitted: int = 0
    updates_applied: int = 0
    update_groups: int = 0
    shed_reads: int = 0
    shed_updates: int = 0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return dataclasses.asdict(self)


class DynamicShardedService:
    """Shards of replicated dynamic dictionaries behind read+write batching."""

    def __init__(
        self,
        shards: list[ReplicatedDynamicDictionary],
        boundaries: list[int],
        max_batch: int = 32,
        max_delay: float = 1.0,
        capacity: int = 1024,
        update_capacity: int = 256,
        update_batch: int = 8,
        update_delay: float = 0.5,
        probe_time: float = 0.0,
        seed=0,
        log_retention: int | None = None,
    ):
        if not shards:
            raise ParameterError("service needs at least one shard")
        if len(boundaries) != len(shards):
            raise ParameterError(
                f"{len(shards)} shards need {len(shards)} boundaries, "
                f"got {len(boundaries)}"
            )
        if list(boundaries) != sorted(set(int(b) for b in boundaries)):
            raise ParameterError("boundaries must be strictly increasing")
        if int(boundaries[0]) != 0:
            raise ParameterError("first shard must start at key 0")
        self.universe_size = int(shards[0].universe_size)
        if any(int(s.universe_size) != self.universe_size for s in shards):
            raise ParameterError("shards must share one universe size")
        check_positive_integer("update_capacity", update_capacity)
        self.shards = list(shards)
        self.num_shards = len(self.shards)
        for i, shard in enumerate(self.shards):
            shard.set_shard(i)
        self._boundaries = np.asarray(
            [int(b) for b in boundaries], dtype=np.int64
        )
        streams = spawn_generators(as_generator(seed), self.num_shards + 1)
        self._rng = streams[-1]
        self.batchers = [
            MicroBatcher(max_size=max_batch, max_delay=max_delay)
            for _ in range(self.num_shards)
        ]
        self.write_batchers = [
            MicroBatcher(max_size=update_batch, max_delay=update_delay)
            for _ in range(self.num_shards)
        ]
        self.admission = AdmissionController(capacity=capacity)
        self.update_capacity = int(update_capacity)
        self._pending_updates = 0
        self.probe_time = float(probe_time)
        self.stats = DynamicServiceStats()
        #: Optional :class:`~repro.telemetry.hub.TelemetryHub`; every
        #: call site is guarded so ``None`` runs the seed code path.
        self.telemetry = None
        #: Optional :class:`~repro.autotune.controller.AutotuneController`;
        #: every call site is guarded so ``None`` runs the seed code path.
        self.autotune = None
        self._log_warned = False
        if log_retention is not None:
            check_positive_integer("log_retention", log_retention)
        #: Compact shard logs whenever the retained total reaches this
        #: bound (None = never: the pre-compaction unbounded behavior).
        self.log_retention = (
            None if log_retention is None else int(log_retention)
        )
        #: Optional :class:`~repro.persist.CheckpointStore`; every call
        #: site is guarded so ``None`` runs the seed code path.
        self.checkpoints = None
        self._checkpoint_every: float | None = None
        self._next_checkpoint: float | None = None
        self.stats_compactions = 0
        self.stats_checkpoints = 0
        #: Constructor keywords :func:`restore_dynamic_service` rebuilds
        #: the service with (checkpoint metadata).  A Generator seed is
        #: not recordable; restore then falls back to seed 0 — answers
        #: are rng-independent, only probe placement shifts.
        self.build_config: dict = {
            "max_batch": int(max_batch),
            "max_delay": float(max_delay),
            "capacity": int(capacity),
            "update_capacity": int(update_capacity),
            "update_batch": int(update_batch),
            "update_delay": float(update_delay),
            "probe_time": float(probe_time),
            "log_retention": self.log_retention,
        }
        if isinstance(seed, (int, np.integer)):
            self.build_config["seed"] = int(seed)

    def attach_telemetry(self, hub) -> None:
        """Attach a :class:`~repro.telemetry.hub.TelemetryHub` (or None)."""
        self.telemetry = hub

    def enable_autotune(self, policy=None, seed=0, enabled=True):
        """Attach and return an :class:`~repro.autotune.controller.
        AutotuneController` tuning this service's admission bounds.

        The dynamic service exposes admission tuning only (``capacity``
        and ``update-capacity``): replica state advances by lockstep log
        replay, so structural actions raise
        :class:`~repro.errors.ActionUnsupportedError` by capability.
        """
        from repro.autotune.controller import AutotuneController

        self.autotune = AutotuneController(
            self, policy=policy, seed=seed, enabled=enabled
        )
        return self.autotune

    def attach_checkpoints(self, store, every: float | None = None) -> None:
        """Attach a :class:`~repro.persist.CheckpointStore` (or None).

        With ``every`` set, :meth:`advance` writes a new generation
        each time that much virtual time passes; without it,
        checkpoints happen only on explicit :meth:`checkpoint` calls.
        """
        self.checkpoints = store
        self._checkpoint_every = None if every is None else float(every)
        self._next_checkpoint = None

    def checkpoint(self, now: float) -> int:
        """Write one durable generation: base snapshots + log suffixes.

        Under a retention policy the log compacts first *only* when the
        retained entries have reached the bound (the same trigger the
        write path uses), so the saved suffix — and therefore the
        recovery replay length — is bounded by ``log_retention``
        without forcing a compaction on every save.  Returns the new
        generation number.
        """
        from repro.errors import CheckpointError

        if self.checkpoints is None:
            raise CheckpointError(
                "no checkpoint store attached; call attach_checkpoints first"
            )
        compacted = 0
        if (
            self.log_retention is not None
            and self.update_log_entries() >= self.log_retention
        ):
            compacted = self.compact_logs()
        generation = self.checkpoints.save(
            self, now=float(now), compacted=compacted
        )
        self.stats_checkpoints += 1
        return generation

    def compact_logs(self) -> int:
        """Fold every shard's retained log into its base snapshot.

        Shards with crashed replicas refuse (their log is still needed
        for rebuild) and retain their entries; returns updates folded.
        """
        folded = 0
        for shard in self.shards:
            folded += shard.compact_log()
        if folded:
            self.stats_compactions += 1
        return folded

    # -- keyspace ----------------------------------------------------------------

    def shard_of(self, x: int) -> int:
        """Index of the shard whose keyspace range contains ``x``."""
        x = int(x)
        if not 0 <= x < self.universe_size:
            raise QueryError(
                f"query {x} outside universe [0, {self.universe_size})"
            )
        return int(np.searchsorted(self._boundaries, x, side="right") - 1)

    # -- the write path ----------------------------------------------------------

    def submit_update(
        self, key: int, is_insert: bool, now: float
    ) -> UpdateTicket:
        """Admit one insert/delete at virtual time ``now``.

        Raises :class:`~repro.errors.UpdateBacklogError` when the count
        of accepted-but-unapplied updates has reached the configured
        bound.  The returned ticket may already be ``done`` if its
        arrival flushed a full write group.
        """
        shard = self.shard_of(key)
        if self._pending_updates >= self.update_capacity:
            self.stats.shed_updates += 1
            raise UpdateBacklogError(
                self._pending_updates, self.update_capacity
            )
        ticket = UpdateTicket(
            key=int(key), is_insert=bool(is_insert),
            shard=shard, arrival=float(now),
        )
        self._pending_updates += 1
        self.stats.updates_submitted += 1
        batch = self.write_batchers[shard].add(ticket, now)
        if batch is not None:
            self._apply_group(shard, batch)
        return ticket

    def _apply_group(self, shard: int, batch: Batch) -> int:
        """Apply one flushed write group in lockstep; advance the epoch once."""
        tickets: list[UpdateTicket] = batch.requests
        ops = [(t.key, t.is_insert) for t in tickets]
        epoch = self.shards[shard].apply_batch(ops)
        for t in tickets:
            t.epoch = epoch
            t.completion = float(batch.flushed)
        self._pending_updates -= len(tickets)
        self.stats.updates_applied += len(tickets)
        self.stats.update_groups += 1
        if BUS.active:
            BUS.emit(UpdateEvent(shard=shard, size=len(tickets), epoch=epoch))
        if (
            self.log_retention is not None
            and self.update_log_entries() >= self.log_retention
        ):
            self.compact_logs()
        log_entries = self.update_log_entries()
        if self.telemetry is not None and self.telemetry.metrics is not None:
            self.telemetry.metrics.gauge(
                "dynamic_update_log_entries",
                "retained replayed-update log entries across shards",
            ).set(float(log_entries))
        if log_entries < UPDATE_LOG_WARN_THRESHOLD:
            # Compaction brought the log back under the threshold:
            # re-arm so a later runaway is reported again.
            self._log_warned = False
        elif not self._log_warned:
            self._log_warned = True
            warnings.warn(
                f"dynamic update log holds {log_entries} retained entries "
                f"(threshold {UPDATE_LOG_WARN_THRESHOLD}); configure "
                f"log_retention to compact the log into a base snapshot, "
                f"or memory grows without bound under sustained writes",
                RuntimeWarning,
                stacklevel=2,
            )
        return len(tickets)

    def _flush_writes(self, shard: int, now: float) -> int:
        """Drain a shard's pending write batch (read-your-writes barrier)."""
        batch = self.write_batchers[shard].drain(now)
        if batch is None:
            return 0
        return self._apply_group(shard, batch)

    # -- the read path -----------------------------------------------------------

    def submit(self, x: int, now: float, priority: int = 0) -> Ticket:
        """Admit one read at virtual time ``now`` (sheds via OverloadError)."""
        shard = self.shard_of(x)
        try:
            self.admission.admit(priority=priority)
        except (OverloadError, DegradedModeError):
            self.stats.shed_reads += 1
            raise
        ticket = Ticket(
            key=int(x), shard=shard, arrival=float(now),
            priority=int(priority),
        )
        self.stats.submitted += 1
        batch = self.batchers[shard].add(ticket, now)
        if batch is not None:
            self._dispatch(shard, batch)
        return ticket

    def next_deadline(self) -> float | None:
        """Earliest pending flush deadline across all batchers."""
        deadlines = [
            b.next_deadline()
            for b in self.batchers + self.write_batchers
            if b.next_deadline() is not None
        ]
        return min(deadlines) if deadlines else None

    def advance(self, now: float) -> int:
        """Flush every due batch (writes before reads); returns completions."""
        completed = 0
        for shard, batcher in enumerate(self.write_batchers):
            batch = batcher.poll(now)
            if batch is not None:
                self._apply_group(shard, batch)
        for shard, batcher in enumerate(self.batchers):
            batch = batcher.poll(now)
            if batch is not None:
                completed += self._dispatch(shard, batch)
        if self.autotune is not None:
            self.autotune.tick(float(now))
        if (
            self.checkpoints is not None
            and self._checkpoint_every is not None
        ):
            if self._next_checkpoint is None:
                self._next_checkpoint = float(now) + self._checkpoint_every
            elif float(now) >= self._next_checkpoint:
                self.checkpoint(float(now))
                self._next_checkpoint = float(now) + self._checkpoint_every
        return completed

    def drain(self, now: float) -> int:
        """Flush everything pending regardless of deadline (shutdown)."""
        completed = 0
        for shard in range(self.num_shards):
            self._flush_writes(shard, now)
        for shard, batcher in enumerate(self.batchers):
            batch = batcher.drain(now)
            if batch is not None:
                completed += self._dispatch(shard, batch)
        if self.autotune is not None:
            self.autotune.tick(float(now))
        return completed

    def _dispatch(self, shard: int, batch: Batch) -> int:
        """Execute one flushed read batch against the shard's vote."""
        # Read-your-writes: updates admitted before this read flush are
        # applied before the read executes.
        self._flush_writes(shard, float(batch.flushed))
        dictionary = self.shards[shard]
        tickets: list[Ticket] = batch.requests
        xs = np.asarray([t.key for t in tickets], dtype=np.int64)
        before = int(dictionary.replica_probe_loads().sum())
        answers = dictionary.query_batch(xs, self._rng)
        probes = int(dictionary.replica_probe_loads().sum()) - before
        self.stats.probes += probes
        finish = float(batch.flushed) + probes * self.probe_time
        if BUS.active:
            BUS.emit(DispatchEvent(
                shard=shard, replica=-1, probes=probes,
                start=float(batch.flushed), finish=finish,
            ))
        for t, a in zip(tickets, answers):
            t.answer = bool(a)
            t.completion = finish
        self.stats.batches += 1
        self.admission.release(len(tickets))
        self.stats.completed += len(tickets)
        return len(tickets)

    # -- pinned multi-key reads ----------------------------------------------------

    def read_pinned(self, keys, now: float) -> tuple[np.ndarray, dict]:
        """Linearizable multi-key read against one consistent cut.

        Drains pending writes (so the cut includes every admitted
        update), pins each touched shard's current epoch, answers all
        keys against the pinned snapshots, and releases the pins.
        Returns ``(answers, epochs)`` where ``epochs`` maps shard index
        to the epoch the read observed.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (
            int(keys.min()) < 0 or int(keys.max()) >= self.universe_size
        ):
            bad = keys[(keys < 0) | (keys >= self.universe_size)][0]
            raise QueryError(
                f"query {int(bad)} outside universe [0, {self.universe_size})"
            )
        shard_ids = np.searchsorted(self._boundaries, keys, side="right") - 1
        answers = np.zeros(keys.shape, dtype=bool)
        epochs: dict[int, int] = {}
        pins: list[tuple[int, EpochPin, np.ndarray]] = []
        for shard in np.unique(shard_ids):
            shard = int(shard)
            self._flush_writes(shard, float(now))
            pin = self.shards[shard].pin()
            epochs[shard] = pin.epoch
            pins.append((shard, pin, shard_ids == shard))
        try:
            for shard, pin, sel in pins:
                answers[sel] = self.shards[shard].query_pinned(
                    pin, keys[sel], self._rng
                )
        finally:
            for _, pin, _ in pins:
                pin.release()
        return answers, epochs

    def pin_shard(self, shard: int) -> EpochPin:
        """Pin one shard's current epoch (caller releases)."""
        return self.shards[int(shard)].pin()

    # -- fault passthrough ---------------------------------------------------------

    def crash_replica(self, shard: int, replica: int) -> None:
        """Crash one replica of one shard (chaos hook; requires armed)."""
        self.shards[int(shard)].crash_replica(replica)

    def rebuild_replica(self, shard: int, replica: int) -> None:
        """Rebuild one crashed replica by log replay (requires armed)."""
        self.shards[int(shard)].rebuild_replica(replica)

    def corrupt_cell(
        self, shard: int, replica: int, level_index: int, flat: int, mask: int
    ) -> None:
        """Silently corrupt one level cell of one replica (requires armed)."""
        self.shards[int(shard)].corrupt_cell(replica, level_index, flat, mask)

    # -- introspection -------------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        """Updates admitted but not yet applied."""
        return self._pending_updates

    def epochs_by_shard(self) -> list[int]:
        """Each shard's current epoch."""
        return [s.epoch for s in self.shards]

    def update_log_entries(self) -> int:
        """Retained replayed-update log entries across all shards.

        The quantity behind :data:`UPDATE_LOG_WARN_THRESHOLD` and the
        ``dynamic_update_log_entries`` gauge.  Without a
        ``log_retention`` bound this grows with every applied update
        (each shard keeps its whole log so crashed replicas can be
        rebuilt by replay); with compaction it is the post-compaction
        suffix length — the bound on rebuild/recovery replay work.
        Lifetime totals stay visible as ``shardN_updates`` in
        :meth:`stats_row`.
        """
        return sum(int(s.retained_log_entries) for s in self.shards)

    def replica_loads(self) -> list[np.ndarray]:
        """Per-shard arrays of probes charged to each replica so far."""
        return [s.replica_probe_loads() for s in self.shards]

    def stats_row(self) -> dict:
        """Service counters plus per-shard epoch/fault/space stats."""
        row = self.stats.row()
        row["pending_updates"] = self._pending_updates
        row["update_log_entries"] = self.update_log_entries()
        row["compactions"] = self.stats_compactions
        row["checkpoints"] = self.stats_checkpoints
        for i, shard in enumerate(self.shards):
            for k, v in shard.stats().items():
                row[f"shard{i}_{k}"] = v
        return row

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicShardedService(shards={self.num_shards}, "
            f"epochs={self.epochs_by_shard()}, "
            f"completed={self.stats.completed})"
        )


def build_dynamic_service(
    universe_size: int,
    num_shards: int = 1,
    replicas: int = 3,
    max_batch: int = 32,
    max_delay: float = 1.0,
    capacity: int = 1024,
    update_capacity: int = 256,
    update_batch: int = 8,
    update_delay: float = 0.5,
    probe_time: float = 0.0,
    log_retention: int | None = None,
    min_level_width: int = 0,
    verify_rebuilds: bool = False,
    armed: bool = False,
    seed=0,
) -> DynamicShardedService:
    """Construct an (initially empty) mutable sharded service.

    The universe splits into ``num_shards`` equal contiguous ranges,
    each served by a :class:`~repro.dynamic.replicated.
    ReplicatedDynamicDictionary` with ``replicas`` lockstep replicas.
    ``armed=True`` enables the chaos fault hooks (crash / corrupt /
    rebuild), mirroring ``FaultConfig.armed`` on the static stack.
    """
    universe_size = int(universe_size)
    num_shards = check_positive_integer("num_shards", num_shards)
    rng = as_generator(seed)
    boundaries = [
        (universe_size * i) // num_shards for i in range(num_shards)
    ]
    shards = [
        ReplicatedDynamicDictionary(
            universe_size,
            replicas,
            seed=int(rng.integers(0, 2**63 - 1)),
            min_level_width=min_level_width,
            verify_rebuilds=verify_rebuilds,
            armed=armed,
        )
        for _ in range(num_shards)
    ]
    return DynamicShardedService(
        shards,
        boundaries,
        max_batch=max_batch,
        max_delay=max_delay,
        capacity=capacity,
        update_capacity=update_capacity,
        update_batch=update_batch,
        update_delay=update_delay,
        probe_time=probe_time,
        log_retention=log_retention,
        seed=rng.integers(0, 2**63 - 1),
    )
