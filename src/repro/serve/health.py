"""Per-replica health state machines and the self-healing manager.

Every (shard, replica) pair carries a four-state machine::

            alarm / error                 errors >= quarantine_after
    healthy ------------> degraded ----------------------------------+
       ^                     |                                       |
       |   clean streak      |   crash / detected corruption         v
       +---------------------+------------------------------> quarantined
       ^                                                             |
       |   canary pass                           crashed replica     |
       +------------- rebuilding <-----------------------------------+
                          (corrupt replicas skip rebuilding and are
                           scrubbed in place while quarantined)

:class:`HealthManager` drives the machines from the signals the serving
stack already produces — telemetry monitor alarms (``hub.alarms``),
probe-visible query failures (the ``_REPLICA_FAILURES`` set surfacing
from a dispatch), explicit crashes — and owns the repair machinery of
:mod:`repro.heal`:

- a background :class:`~repro.heal.CellScrubber` walks cells of every
  shard in bounded increments each :meth:`tick`;
- a quarantined-but-alive replica gets a *targeted* scrub pass, then a
  canary gate; a crashed replica gets a :class:`~repro.heal.
  ReplicaRebuilder` reconstruction from the surviving majority, then
  the same canary gate;
- the canary gate half-opens the replica's circuit breaker with a
  probe budget and runs real queries against the replica (charged to
  the **repair counter**, never the query-path counter, via
  :func:`~repro.heal.charged_to`); only all-correct answers within
  budget close the breaker and re-admit the replica — so a healing
  replica never serves a wrong answer to routed traffic;
- a replica whose scrubbed cells re-diverge (stuck-at read-path
  damage) is *incorrigible*: it stays quarantined forever and the
  service runs at reduced R.

The manager also drives **graceful degradation**: whenever the minimum
live fraction across shards drops, it calls
:meth:`~repro.serve.admission.AdmissionController.set_degraded` so
low-priority traffic sheds with the typed
:class:`~repro.errors.DegradedModeError` while high-priority traffic
keeps the full queue.

All healing work — scrub reads, rebuild reads, canary probes — is
charged to per-shard repair :class:`~repro.cellprobe.counters.
ProbeCounter` objects (same substrate, same cell geometry as the
query-path counters, mergeable for whole-system accounting), keeping
the Binomial(Q, Φ_t) envelope of the query path exact.  With no
manager attached (``service.health is None``) none of this code runs
and the service is byte-identical to the seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.dictionaries.replicated import _REPLICA_FAILURES
from repro.errors import HealError
from repro.heal import CellScrubber, HealStats, ReplicaRebuilder, charged_to
from repro.telemetry.events import BUS, HealEvent, HealthTransitionEvent
from repro.telemetry.monitor import HotCellAlarm, RouterSkewAlarm
from repro.utils.rng import as_generator

#: Health state vocabulary (order matches increasing severity).
HEALTH_STATES = ("healthy", "degraded", "quarantined", "rebuilding")


@dataclasses.dataclass
class HealthConfig:
    """Tunables of the healing loop (defaults sized for test instances)."""

    #: Canary queries run against a half-open replica before re-admission.
    canary_queries: int = 8
    #: Probe budget of the half-open breaker; canaries stop when spent.
    canary_probe_budget: int = 4096
    #: Rows per background / targeted scrub increment.
    scrub_rows_per_chunk: int = 8
    #: Rows per rebuild increment.
    rebuild_rows_per_chunk: int = 32
    #: Degraded-state detected errors before quarantine.
    quarantine_after: int = 2
    #: Clean dispatches that return a degraded replica to healthy.
    recover_after: int = 16
    #: Repairs per cell before a re-divergence is diagnosed stuck-at.
    max_repairs: int = 1


class ReplicaHealth:
    """One (shard, replica) state machine; transitions are recorded."""

    __slots__ = (
        "shard", "replica", "state", "errors", "clean", "crashed",
        "incorrigible", "down_since", "transitions",
    )

    def __init__(self, shard: int, replica: int):
        self.shard = int(shard)
        self.replica = int(replica)
        self.state = "healthy"
        #: Detected errors since entering the current state.
        self.errors = 0
        #: Clean dispatches since entering the current state.
        self.clean = 0
        #: Whether the replica's memory is lost (needs rebuild, not scrub).
        self.crashed = False
        #: Stuck-at damage diagnosed: never re-admitted.
        self.incorrigible = False
        #: Virtual time the replica left ``healthy`` (None while healthy).
        self.down_since: float | None = None
        #: ``(time, source, target, reason)`` history.
        self.transitions: list[tuple[float, str, str, str]] = []

    @property
    def serving(self) -> bool:
        """Whether routed traffic is supposed to reach this replica."""
        return self.state in ("healthy", "degraded")

    def to(self, target: str, reason: str, now: float) -> str:
        """Transition to ``target``, recording it; returns the source."""
        if target not in HEALTH_STATES:
            raise HealError(f"unknown health state {target!r}")
        source = self.state
        self.state = target
        self.errors = 0
        self.clean = 0
        self.transitions.append((float(now), source, target, reason))
        if target == "healthy":
            self.down_since = None
            self.crashed = False
        elif source == "healthy":
            self.down_since = float(now)
        return source


class HealthManager:
    """Drives every replica's state machine and the repair machinery.

    Constructed by :meth:`~repro.serve.service.ShardedDictionaryService.
    enable_healing`; holds one repair counter, scrubber, and rebuilder
    per shard, plus the machines, the MTTR ledger, and the
    wrong-answer-exposure counter :attr:`violations` (dispatches served
    by a replica whose machine said it must not serve — zero by
    construction, asserted by E21).
    """

    def __init__(self, service, config: HealthConfig | None = None, seed=0):
        self.service = service
        self.config = config if config is not None else HealthConfig()
        self._rng = as_generator(seed)
        self.stats = HealStats()
        #: Routed dispatches served by a quarantined/rebuilding replica.
        self.violations = 0
        #: ``(shard, replica, down_at, up_at)`` per completed recovery.
        self.mttr: list[tuple[int, int, float, float]] = []
        self._alarm_cursor = 0
        self.machines: dict[tuple[int, int], ReplicaHealth] = {}
        self.repair_counters: list[ProbeCounter] = []
        self.scrubbers: list[CellScrubber] = []
        self.rebuilders: list[ReplicaRebuilder] = []
        for shard, d in enumerate(service.shards):
            counter = ProbeCounter(d.table.num_cells)
            self.repair_counters.append(counter)
            self.scrubbers.append(CellScrubber(
                d, counter,
                rows_per_chunk=self.config.scrub_rows_per_chunk,
                max_repairs=self.config.max_repairs,
            ))
            self.rebuilders.append(ReplicaRebuilder(
                d, counter,
                rows_per_chunk=self.config.rebuild_rows_per_chunk,
            ))
            for r in range(d.replicas):
                self.machines[(shard, r)] = ReplicaHealth(shard, r)

    def rebind_shard(self, shard: int) -> None:
        """Re-anchor healing on a structurally reconfigured shard.

        Called by the autotune executor after it swaps
        ``service.shards[shard]`` for a rebuilt replica set (split,
        join, or scheme switch): the repair counter, scrubber, and
        rebuilder all hold the *old* dictionary and its geometry, so
        they are recreated against the new one.  Surviving replicas
        keep their state machines (a degraded replica stays degraded
        through a split); replicas beyond the new count are dropped and
        freshly cloned replicas start healthy.
        """
        shard = int(shard)
        d = self.service.shards[shard]
        counter = ProbeCounter(d.table.num_cells)
        self.repair_counters[shard] = counter
        self.scrubbers[shard] = CellScrubber(
            d, counter,
            rows_per_chunk=self.config.scrub_rows_per_chunk,
            max_repairs=self.config.max_repairs,
        )
        self.rebuilders[shard] = ReplicaRebuilder(
            d, counter,
            rows_per_chunk=self.config.rebuild_rows_per_chunk,
        )
        for r in range(d.replicas):
            if (shard, r) not in self.machines:
                self.machines[(shard, r)] = ReplicaHealth(shard, r)
        for key in [
            k for k in self.machines
            if k[0] == shard and k[1] >= d.replicas
        ]:
            del self.machines[key]

    # -- state machine plumbing --------------------------------------------------

    def state_of(self, shard: int, replica: int) -> str:
        """The replica's current health state."""
        return self.machines[(int(shard), int(replica))].state

    def _transition(
        self, machine: ReplicaHealth, target: str, reason: str, now: float
    ) -> None:
        source = machine.to(target, reason, now)
        hub = self.service.telemetry
        if hub is not None:
            hub.on_health(
                machine.shard, machine.replica, source, target, reason,
                float(now),
            )
        if BUS.active:
            BUS.emit(HealthTransitionEvent(
                shard=machine.shard, replica=machine.replica,
                source=source, target=target, reason=reason,
            ))

    def _heal_event(
        self, kind: str, shard: int, replica: int, count: int, now: float
    ) -> None:
        hub = self.service.telemetry
        if hub is not None:
            hub.on_heal(kind, shard, replica, count, float(now))
        if BUS.active:
            BUS.emit(HealEvent(
                kind=kind, shard=shard, replica=replica, count=count,
            ))

    # -- signal intake -----------------------------------------------------------

    def _quarantine(
        self, machine: ReplicaHealth, reason: str, now: float
    ) -> None:
        self.stats.quarantines += 1
        self._transition(machine, "quarantined", reason, now)
        # The breaker must agree with the machine: no routed traffic may
        # reach a quarantined replica (E21 asserts zero violations).
        self.service.routers[machine.shard].breakers[machine.replica].open()

    def on_crash(self, shard: int, replica: int, now: float) -> None:
        """A dispatch found the replica crashed (memory lost)."""
        machine = self.machines[(shard, int(replica))]
        machine.crashed = True
        if machine.state in ("healthy", "degraded"):
            self._quarantine(machine, "crash", now)
        elif machine.state == "rebuilding":
            # Crashed again mid-rebuild: restart from scratch.
            self.rebuilders[shard].finish()
            self._quarantine(machine, "crash", now)

    def on_corruption(
        self, shard: int, replica: int, now: float, reason: str = "corruption"
    ) -> None:
        """A dispatch or a vote attributed detectable corruption."""
        machine = self.machines[(shard, int(replica))]
        if machine.state in ("healthy", "degraded"):
            self._quarantine(machine, reason, now)

    def on_alarm_signal(self, shard: int, replica: int, now: float) -> None:
        """A telemetry monitor implicated the replica (soft signal).

        Alarms alone only *degrade* — statistical smoke, not proof of
        damage.  Detected errors while degraded are what quarantine.
        """
        machine = self.machines.get((shard, int(replica)))
        if machine is not None and machine.state == "healthy":
            self._transition(machine, "degraded", "alarm", now)

    def on_error(self, shard: int, replica: int, now: float) -> None:
        """A degraded replica produced another detected error."""
        machine = self.machines[(shard, int(replica))]
        if machine.state == "degraded":
            machine.errors += 1
            if machine.errors >= self.config.quarantine_after:
                self._quarantine(machine, "repeated-errors", now)

    def note_dispatch(self, shard: int, replica: int, now: float) -> None:
        """A routed (non-canary) dispatch was served by ``replica``."""
        machine = self.machines[(shard, int(replica))]
        if not machine.serving:
            # The breaker should have made this impossible; count the
            # exposure so E21 can assert it never happens.
            self.violations += 1
            return
        if machine.state == "degraded":
            machine.clean += 1
            if machine.clean >= self.config.recover_after:
                self._transition(machine, "healthy", "clean-streak", now)

    def pick_witness(self, shard: int, primary: int) -> int | None:
        """A uniformly random live replica other than ``primary``."""
        live = [
            r for r in self.service.routers[shard].live if r != int(primary)
        ]
        if not live:
            return None
        return int(live[int(self._rng.integers(0, len(live)))])

    # -- alarm intake ------------------------------------------------------------

    def _consume_alarms(self, now: float) -> None:
        hub = self.service.telemetry
        if hub is None:
            return
        alarms = hub.alarms
        shard = hub.watch_shard
        d = self.service.shards[shard]
        block = d.inner_rows * d.table.s
        while self._alarm_cursor < len(alarms):
            alarm = alarms[self._alarm_cursor]
            self._alarm_cursor += 1
            if isinstance(alarm, RouterSkewAlarm):
                self.on_alarm_signal(shard, alarm.replica, now)
            elif isinstance(alarm, HotCellAlarm):
                self.on_alarm_signal(shard, alarm.cell // block, now)

    # -- healing loop ------------------------------------------------------------

    def tick(self, now: float) -> None:
        """One healing increment: alarms, background scrub, repairs."""
        self._consume_alarms(now)
        for shard in range(self.service.num_shards):
            self._tick_shard(shard, now)
        self._update_degradation()

    def _trusted(self, shard: int) -> list[int]:
        d = self.service.shards[shard]
        return [
            r for r in range(d.replicas)
            if self.machines[(shard, r)].serving
        ]

    def _absorb(self, report, shard: int, now: float) -> None:
        self.stats.cells_scanned += report.cells_scanned
        self.stats.repair_probes += report.probes
        self.stats.cells_repaired += len(report.repaired)
        self.stats.stuck_cells += len(report.stuck)
        for replica, count in _by_replica(report.repaired):
            self._heal_event("repair", shard, replica, count, now)
        for replica, count in _by_replica(report.stuck):
            self._heal_event("stuck", shard, replica, count, now)
            # Stuck-at read damage corrupts future answers no matter
            # what is written: the replica leaves rotation for good,
            # whichever scan diagnosed it.
            machine = self.machines[(shard, replica)]
            if machine.serving:
                self._quarantine(machine, "stuck-cell", now)
            machine.incorrigible = True

    def _tick_shard(self, shard: int, now: float) -> None:
        trusted = self._trusted(shard)
        scrubber = self.scrubbers[shard]
        if len(trusted) >= 3:
            self._absorb(scrubber.scrub_chunk(trusted), shard, now)
        d = self.service.shards[shard]
        rebuilder = self.rebuilders[shard]
        for replica in range(d.replicas):
            machine = self.machines[(shard, replica)]
            if machine.incorrigible:
                # Free the rebuild slot if the target went incorrigible
                # mid-rebuild, so other crashed replicas can proceed.
                if rebuilder.target == replica:
                    rebuilder.finish()
                continue
            if machine.state not in ("quarantined", "rebuilding"):
                continue
            if scrubber.replica_has_stuck(replica):
                # Stuck-at read-path damage: no rewrite can fix it.
                machine.incorrigible = True
                continue
            if machine.crashed:
                self._step_rebuild(shard, machine, now)
            else:
                self._step_scrub(shard, machine, now)

    def _step_rebuild(
        self, shard: int, machine: ReplicaHealth, now: float
    ) -> None:
        rebuilder = self.rebuilders[shard]
        replica = machine.replica
        if rebuilder.active and rebuilder.target != replica:
            return  # one rebuild at a time; wait for the slot
        trusted = self._trusted(shard)
        if not trusted:
            return
        if not rebuilder.active:
            rebuilder.start(replica)
            self.stats.rebuilds += 1
            self._transition(machine, "rebuilding", "rebuild-start", now)
            self._heal_event("rebuild-start", shard, replica, 1, now)
        before = rebuilder.rows_rebuilt
        done = rebuilder.step(trusted)
        self.stats.rows_rebuilt += rebuilder.rows_rebuilt - before
        if not done:
            return
        rebuilder.finish()
        self._heal_event(
            "rebuild-done", shard, replica,
            self.service.shards[shard].inner_rows, now,
        )
        self.service.shards[shard].revive_replica(replica)
        machine.crashed = False
        self._finish_heal(shard, machine, now)

    def _step_scrub(
        self, shard: int, machine: ReplicaHealth, now: float
    ) -> None:
        scrubber = self.scrubbers[shard]
        trusted = self._trusted(shard)
        if len(trusted) < 3:
            return  # not enough voters to attribute damage; wait
        report = scrubber.scrub_replica(machine.replica, trusted)
        self._absorb(report, shard, now)
        if scrubber.replica_has_stuck(machine.replica):
            machine.incorrigible = True
            return
        if report.done:
            self._finish_heal(shard, machine, now)

    def _finish_heal(
        self, shard: int, machine: ReplicaHealth, now: float
    ) -> None:
        """Repairs complete: canary-gate the replica back into rotation."""
        replica = machine.replica
        if self._canary(shard, replica, now):
            down = machine.down_since
            self._transition(machine, "healthy", "canary-pass", now)
            self.service.routers[shard].mark_up(replica)
            if down is not None:
                self.mttr.append((shard, replica, down, float(now)))
            self._heal_event("canary-pass", shard, replica, 1, now)
        else:
            self.stats.canary_failures += 1
            if machine.state != "quarantined":
                self._transition(machine, "quarantined", "canary-fail", now)
            self.service.routers[shard].breakers[replica].open()
            if self.scrubbers[shard].replica_has_stuck(replica):
                machine.incorrigible = True
            self._heal_event("canary-fail", shard, replica, 1, now)

    def _canary(self, shard: int, replica: int, now: float) -> bool:
        """Probe-budgeted canary queries against a half-open replica.

        Runs the real query algorithm against the replica under the
        repair counter; every answer is checked against ground truth
        (key membership is known to the service — checking it reads no
        cells).  Any wrong answer, detected failure, or an exhausted
        probe budget before ``canary_queries`` correct answers fails
        the canary.
        """
        d = self.service.shards[shard]
        router = self.service.routers[shard]
        counter = self.repair_counters[shard]
        breaker = router.half_open(replica, self.config.canary_probe_budget)
        keys = self._canary_keys(d)
        passed = 0
        for x in keys:
            if breaker.canary_budget <= 0:
                break
            truth = bool(np.isin(int(x), d.keys))
            before = counter.total_probes()
            try:
                with charged_to(d.table, counter):
                    answer = bool(d.query_batch_on(
                        np.asarray([x], dtype=np.int64), replica, self._rng,
                    )[0])
            except _REPLICA_FAILURES:
                probes = counter.total_probes() - before
                breaker.spend(probes)
                self.stats.canary_queries += 1
                self.stats.canary_probes += probes
                return False
            probes = counter.total_probes() - before
            breaker.spend(probes)
            self.stats.canary_queries += 1
            self.stats.canary_probes += probes
            if answer != truth:
                return False
            passed += 1
        return passed >= min(self.config.canary_queries, len(keys))

    def _canary_keys(self, d) -> np.ndarray:
        """Half present keys, half uniform universe draws (both gates)."""
        n = self.config.canary_queries
        hits = d.keys[self._rng.integers(0, d.keys.size, size=(n + 1) // 2)]
        misses = self._rng.integers(0, d.universe_size, size=n // 2)
        keys = np.concatenate([
            np.asarray(hits, dtype=np.int64),
            np.asarray(misses, dtype=np.int64),
        ])
        self._rng.shuffle(keys)
        return keys

    # -- degradation -------------------------------------------------------------

    def _update_degradation(self) -> None:
        fraction = 1.0
        for shard, d in enumerate(self.service.shards):
            live = sum(
                1 for r in range(d.replicas)
                if self.machines[(shard, r)].serving
            )
            fraction = min(fraction, max(1, live) / d.replicas)
        admission = self.service.admission
        if fraction != admission.degraded_fraction:
            admission.set_degraded(fraction)

    # -- reporting ---------------------------------------------------------------

    def mttr_values(self) -> list[float]:
        """Recovery durations (virtual time) of completed heals."""
        return [up - down for _, _, down, up in self.mttr]

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        out = self.stats.row()
        out["violations"] = self.violations
        out["recoveries"] = len(self.mttr)
        out["incorrigible"] = sum(
            1 for m in self.machines.values() if m.incorrigible
        )
        out["repair_probes_total"] = int(sum(
            c.total_probes() for c in self.repair_counters
        ))
        return out


def _by_replica(cells: list) -> list[tuple[int, int]]:
    """Aggregate ``(replica, inner_flat)`` lists to (replica, count)."""
    counts: dict[int, int] = {}
    for replica, _ in cells:
        counts[replica] = counts.get(replica, 0) + 1
    return sorted(counts.items())
