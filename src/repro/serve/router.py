"""Replica routing policies for the sharded dictionary service.

The paper's replication theorem (§1.3, measured in E15) divides every
cell's contention by R when queries pick replicas *uniformly*; a
serving system can do better than blind uniformity because it observes
the load it has already created.  Three policies, sharing one
interface:

- :class:`RandomRouter` — the paper's scheme: every query gets an
  independent uniformly random live replica.  This is the policy whose
  stationary per-cell load equals the exact Φ_t tables (validated live
  by E19 part A).
- :class:`RoundRobinRouter` — classic dispatch-count balancing: whole
  batches alternate over live replicas.  Balances *how many* dispatches
  each replica gets while staying blind to what they cost.
- :class:`LeastLoadedRouter` — contention-aware: assigns each batch to
  the live replica with the smallest accumulated probe load, fed back
  from the table's live per-cell probe counters after every dispatch
  (greedy makespan balancing).  Under variable batch cost — skewed
  arrivals, deadline flushes, faulty replicas — it keeps the max
  per-replica probe load strictly below round-robin's (E19 part B).

Routers also own replica *health*: the service marks a replica down
when dispatch raises
:class:`~repro.errors.ReplicaUnavailableError`, and every policy
reweights onto the surviving replicas (the PR 2 fault-layer
composition).  Each replica's availability is a per-replica
:class:`CircuitBreaker` — ``mark_down`` opens it, ``mark_up`` closes
it, and the healing layer half-opens it with a probe budget so canary
queries (and *only* canary queries, charged to the repair counter) can
reach a quarantined replica before it rejoins the rotation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import FaultExhaustedError, ParameterError
from repro.telemetry.events import BUS, ReplicaHealthEvent
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

#: Router names accepted by :func:`make_router` / the CLI.
ROUTERS = ("least-loaded", "round-robin", "random")

#: Circuit breaker states (classic vocabulary).
BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Per-replica availability gate with a canary probe budget.

    ``closed`` — traffic flows.  ``open`` — no traffic (quarantined or
    crashed).  ``half-open`` — no *routed* traffic, but the healing
    layer may spend up to ``canary_budget`` probes of canary queries
    against the replica before deciding to close (healthy again) or
    re-open (still broken).  Routers treat anything not ``closed`` as
    down; the half-open budget is what bounds how many probes a
    recovering replica can ever see outside normal rotation.
    """

    __slots__ = ("replica", "state", "canary_budget", "opens")

    def __init__(self, replica: int):
        self.replica = int(replica)
        self.state = "closed"
        self.canary_budget = 0
        self.opens = 0

    def open(self) -> None:
        """Stop all traffic to the replica."""
        if self.state != "open":
            self.opens += 1
        self.state = "open"
        self.canary_budget = 0

    def half_open(self, budget: int) -> None:
        """Admit canary probes only, up to ``budget`` of them."""
        if budget < 1:
            raise ParameterError("canary budget must be >= 1")
        self.state = "half-open"
        self.canary_budget = int(budget)

    def close(self) -> None:
        """Restore normal traffic."""
        self.state = "closed"
        self.canary_budget = 0

    def spend(self, probes: int) -> int:
        """Charge ``probes`` canaries against the half-open budget."""
        self.canary_budget = max(0, self.canary_budget - int(probes))
        return self.canary_budget

    @property
    def allows_traffic(self) -> bool:
        """Whether routed (non-canary) traffic may reach the replica."""
        return self.state == "closed"


class Router(abc.ABC):
    """Assigns each request of a batch to a live replica."""

    #: Policy name (used in tables and the CLI).
    name: str = "router"

    def __init__(self, replicas: int):
        self.replicas = check_positive_integer("replicas", replicas)
        self.breakers = [CircuitBreaker(r) for r in range(self.replicas)]

    # -- health ------------------------------------------------------------------

    @property
    def live(self) -> list[int]:
        """Replica indices currently believed healthy (sorted)."""
        return [
            r for r in range(self.replicas)
            if self.breakers[r].allows_traffic
        ]

    def mark_down(self, replica: int) -> None:
        """Open the replica's breaker; future assignments skip it."""
        self.breakers[int(replica)].open()
        if BUS.active:
            BUS.emit(ReplicaHealthEvent(replica=int(replica), up=False))
        if not self.live:
            raise FaultExhaustedError(self.replicas)

    def mark_up(self, replica: int) -> None:
        """Close the replica's breaker, returning it to the rotation."""
        self.breakers[int(replica)].close()
        if BUS.active:
            BUS.emit(ReplicaHealthEvent(replica=int(replica), up=True))

    def half_open(self, replica: int, budget: int) -> CircuitBreaker:
        """Half-open the replica's breaker for ``budget`` canary probes."""
        breaker = self.breakers[int(replica)]
        breaker.half_open(budget)
        return breaker

    def breaker_state(self, replica: int) -> str:
        """The replica's breaker state (see :data:`BREAKER_STATES`)."""
        return self.breakers[int(replica)].state

    # -- assignment --------------------------------------------------------------

    @abc.abstractmethod
    def assign(self, size: int) -> np.ndarray:
        """Replica index for each of ``size`` requests (int64 array)."""

    def record(self, replica: int, probes: int) -> None:
        """Load feedback after a dispatch (no-op for blind policies)."""

    def _require_live(self) -> list[int]:
        live = self.live
        if not live:
            raise FaultExhaustedError(self.replicas)
        return live


class RandomRouter(Router):
    """Independent uniform replica per request — the paper's marginal."""

    name = "random"

    def __init__(self, replicas: int, seed=0):
        super().__init__(replicas)
        self._rng = as_generator(seed)

    def assign(self, size: int) -> np.ndarray:
        live = np.asarray(self._require_live(), dtype=np.int64)
        return live[self._rng.integers(0, live.size, size=size)]


class RoundRobinRouter(Router):
    """Whole batches cycle over live replicas (dispatch-count balancing)."""

    name = "round-robin"

    def __init__(self, replicas: int, seed=0):
        super().__init__(replicas)
        self._cursor = 0

    def assign(self, size: int) -> np.ndarray:
        live = self._require_live()
        replica = live[self._cursor % len(live)]
        self._cursor += 1
        return np.full(size, replica, dtype=np.int64)


class LeastLoadedRouter(Router):
    """Whole batches go to the replica with the least accumulated probes.

    ``record`` feeds back the probes each dispatch actually charged
    (measured from the live per-cell probe counters by the service), so
    the policy balances *measured contention*, not dispatch counts.
    Ties break toward the lowest replica index (deterministic).
    """

    name = "least-loaded"

    def __init__(self, replicas: int, seed=0):
        super().__init__(replicas)
        self.loads = np.zeros(replicas, dtype=np.int64)

    def assign(self, size: int) -> np.ndarray:
        live = self._require_live()
        replica = min(live, key=lambda r: (int(self.loads[r]), r))
        return np.full(size, replica, dtype=np.int64)

    def record(self, replica: int, probes: int) -> None:
        self.loads[int(replica)] += int(probes)


def make_router(name: str, replicas: int, seed=0) -> Router:
    """Construct a router by policy name (see :data:`ROUTERS`)."""
    if name == "random":
        return RandomRouter(replicas, seed)
    if name == "round-robin":
        return RoundRobinRouter(replicas, seed)
    if name == "least-loaded":
        return LeastLoadedRouter(replicas, seed)
    raise ParameterError(
        f"unknown router {name!r}; options: {ROUTERS}"
    )
