"""The sharded dictionary service: the deterministic serving core.

Composes the whole serving stack around the library's structures:

- **keyspace sharding** — the universe ``[0, N)`` splits into
  contiguous ranges, one :class:`~repro.dictionaries.replicated.
  ReplicatedDictionary` (R replicas of an inner scheme) per range;
- **micro-batching** — per-shard :class:`~repro.serve.batcher.
  MicroBatcher` turns the request stream into ``query_batch`` calls
  (the PR 1 batch engine);
- **routing** — a per-shard :class:`~repro.serve.router.Router` assigns
  each batch to replicas; the contention-aware policy balances on the
  live per-cell probe counters;
- **admission control** — a bounded in-flight queue sheds requests with
  :class:`~repro.errors.OverloadError` beyond capacity;
- **fault composition** — a dispatch that hits a crashed replica
  (:class:`~repro.errors.ReplicaUnavailableError` from the PR 2 fault
  layer) marks the replica down in the router, reweights onto the
  survivors, and retries the batch.

The service is **clockless**: every entry point takes ``now``
explicitly and all randomness comes from seeded generators, so a run
driven by the virtual-time loadgen (:mod:`repro.serve.client`) is
byte-reproducible — the E19 determinism guarantee.  The asyncio server
(:mod:`repro.serve.asyncio_server`) drives the same object with the
wall clock.

Replica *service time* is modeled in probe-equivalents: a dispatched
batch occupies its replica for ``probes * probe_time`` time units
(the cell-probe model's only cost measure), which yields honest
queueing latency under load without inventing a second cost model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.dictionaries.replicated import (
    _REPLICA_FAILURES,
    ReplicatedDictionary,
)
from repro.errors import (
    DegradedModeError,
    OverloadError,
    ParameterError,
    QueryError,
    ReplicaUnavailableError,
)
from repro.faults import FaultConfig
from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.router import Router, make_router
from repro.telemetry.events import (
    BUS,
    DispatchEvent,
    FailoverEvent,
    RouteEvent,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_positive_integer


@dataclasses.dataclass
class Ticket:
    """One request's lifecycle: arrival → batch → dispatch → answer."""

    key: int
    shard: int
    arrival: float
    completion: float | None = None
    answer: bool | None = None
    replica: int | None = None
    #: Degradation class: requests with ``priority <= 0`` are shed first
    #: when the healing layer reports reduced healthy capacity.
    priority: int = 0

    @property
    def done(self) -> bool:
        """Whether the request has been served."""
        return self.completion is not None

    @property
    def latency(self) -> float:
        """Completion minus arrival (NaN while in flight)."""
        if self.completion is None:
            return float("nan")
        return self.completion - self.arrival


@dataclasses.dataclass
class ServiceStats:
    """Lifetime counters of one service instance."""

    submitted: int = 0
    completed: int = 0
    batches: int = 0
    probes: int = 0
    failovers: int = 0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return dataclasses.asdict(self)


class ShardedDictionaryService:
    """Shards × replicas of a static dictionary behind batch + routing.

    Parameters
    ----------
    shards:
        One replica set per contiguous keyspace range, in range order;
        all must share a ``universe_size``.
    boundaries:
        Shard range starts (``boundaries[i]`` is the first key of shard
        ``i``; shard ``i`` covers ``[boundaries[i], boundaries[i+1])``
        with the last shard ending at ``universe_size``).
    router:
        Routing policy name (:data:`~repro.serve.router.ROUTERS`) —
        each shard gets its own router instance.
    max_batch / max_delay:
        Micro-batch flush policy, per shard.
    capacity:
        Admission-control bound on requests in flight.
    probe_time:
        Replica service time per probe, in virtual time units
        (0 = infinitely fast replicas: completion at flush time).
    seed:
        Seeds the query-execution RNG and the routers.
    """

    def __init__(
        self,
        shards: list[ReplicatedDictionary],
        boundaries: list[int],
        router: str = "least-loaded",
        max_batch: int = 32,
        max_delay: float = 1.0,
        capacity: int = 1024,
        probe_time: float = 0.0,
        seed=0,
    ):
        if not shards:
            raise ParameterError("service needs at least one shard")
        if len(boundaries) != len(shards):
            raise ParameterError(
                f"{len(shards)} shards need {len(shards)} boundaries, "
                f"got {len(boundaries)}"
            )
        if list(boundaries) != sorted(set(int(b) for b in boundaries)):
            raise ParameterError("boundaries must be strictly increasing")
        if int(boundaries[0]) != 0:
            raise ParameterError("first shard must start at key 0")
        self.universe_size = int(shards[0].universe_size)
        if any(
            int(s.universe_size) != self.universe_size for s in shards
        ):
            raise ParameterError("shards must share one universe size")
        if float(probe_time) < 0.0:
            raise ParameterError("probe_time must be >= 0")
        self.shards = list(shards)
        self.num_shards = len(self.shards)
        self._boundaries = np.asarray(
            [int(b) for b in boundaries], dtype=np.int64
        )
        self.router_name = router
        streams = spawn_generators(as_generator(seed), self.num_shards + 1)
        self._rng = streams[-1]
        self.routers: list[Router] = [
            make_router(router, self.shards[i].replicas, streams[i])
            for i in range(self.num_shards)
        ]
        self.batchers = [
            MicroBatcher(max_size=max_batch, max_delay=max_delay)
            for _ in range(self.num_shards)
        ]
        self.admission = AdmissionController(capacity=capacity)
        self.probe_time = float(probe_time)
        # Per-(shard, replica) virtual busy-until times: dispatched
        # batches queue behind whatever their replica is still serving.
        self._busy_until = [
            np.zeros(s.replicas, dtype=np.float64) for s in self.shards
        ]
        self.stats = ServiceStats()
        #: Optional hook called with the list of tickets each dispatch
        #: completes (the asyncio server resolves futures here).
        self.on_complete: Callable[[list[Ticket]], None] | None = None
        #: Optional :class:`~repro.telemetry.hub.TelemetryHub`; every
        #: call site is guarded so ``None`` runs the seed code path.
        self.telemetry = None
        #: Optional :class:`~repro.serve.health.HealthManager`; every
        #: call site is guarded so ``None`` runs the seed code path.
        self.health = None
        #: Optional :class:`~repro.autotune.controller.AutotuneController`;
        #: every call site is guarded so ``None`` runs the seed code path.
        self.autotune = None

    def attach_telemetry(self, hub) -> None:
        """Attach a :class:`~repro.telemetry.hub.TelemetryHub` (or None)."""
        self.telemetry = hub

    def enable_healing(self, config=None, seed=0):
        """Attach and return a :class:`~repro.serve.health.HealthManager`.

        Turns on the self-healing layer: per-replica health state
        machines, circuit-breaker canaries, background cell scrubbing,
        replica rebuild, verified dispatch, and priority-aware graceful
        degradation.  Never calling this leaves every healing call site
        behind ``self.health is None`` — the seed code path,
        byte-identical probe accounting included.
        """
        # Imported here: repro.serve.health imports the dictionary layer,
        # and keeping service importable without it preserves layering.
        from repro.serve.health import HealthManager

        self.health = HealthManager(self, config=config, seed=seed)
        return self.health

    def enable_autotune(self, policy=None, seed=0, enabled=True):
        """Attach and return an :class:`~repro.autotune.controller.
        AutotuneController` driving this service's configuration.

        The controller ticks from :meth:`advance` / :meth:`drain`, paced
        by its policy's ``check_every`` in virtual time.  Never calling
        this — or attaching with ``enabled=False`` — leaves every call
        site behind ``self.autotune is None`` / a no-op tick: the seed
        code path, byte-identical probe accounting included.
        """
        # Imported here: repro.autotune imports the dictionary layer,
        # and keeping service importable without it preserves layering.
        from repro.autotune.controller import AutotuneController

        self.autotune = AutotuneController(
            self, policy=policy, seed=seed, enabled=enabled
        )
        return self.autotune

    # -- keyspace ----------------------------------------------------------------

    def shard_of(self, x: int) -> int:
        """Index of the shard whose keyspace range contains ``x``."""
        x = int(x)
        if not 0 <= x < self.universe_size:
            raise QueryError(
                f"query {x} outside universe [0, {self.universe_size})"
            )
        return int(
            np.searchsorted(self._boundaries, x, side="right") - 1
        )

    # -- request path ------------------------------------------------------------

    def submit(self, x: int, now: float, priority: int = 0) -> Ticket:
        """Admit one request at virtual time ``now``.

        Raises :class:`~repro.errors.OverloadError` when admission
        control sheds the request, or
        :class:`~repro.errors.DegradedModeError` when the service is
        degraded and the request's ``priority`` is non-positive.  The
        returned ticket may already be ``done`` if its arrival flushed
        a full batch.
        """
        shard = self.shard_of(x)
        hub = self.telemetry
        try:
            self.admission.admit(priority=priority)
        except (OverloadError, DegradedModeError):
            if hub is not None:
                hub.on_shed(
                    float(now), self.admission.in_flight,
                    self.admission.capacity,
                )
            raise
        ticket = Ticket(
            key=int(x), shard=shard, arrival=float(now),
            priority=int(priority),
        )
        self.stats.submitted += 1
        if hub is not None:
            hub.on_request(ticket, float(now))
            hub.on_inflight(self.admission.in_flight)
        batch = self.batchers[shard].add(ticket, now)
        if batch is not None:
            self._dispatch(shard, batch)
        return ticket

    def next_deadline(self) -> float | None:
        """Earliest pending flush deadline across shards (None if idle)."""
        deadlines = [
            b.next_deadline()
            for b in self.batchers
            if b.next_deadline() is not None
        ]
        return min(deadlines) if deadlines else None

    def advance(self, now: float) -> int:
        """Flush every batch whose deadline passed; returns completions."""
        completed = 0
        for shard, batcher in enumerate(self.batchers):
            batch = batcher.poll(now)
            if batch is not None:
                completed += self._dispatch(shard, batch)
        if self.autotune is not None:
            self.autotune.tick(float(now))
        return completed

    def drain(self, now: float) -> int:
        """Flush all pending requests regardless of deadline (shutdown)."""
        completed = 0
        for shard, batcher in enumerate(self.batchers):
            batch = batcher.drain(now)
            if batch is not None:
                completed += self._dispatch(shard, batch)
        if self.autotune is not None:
            self.autotune.tick(float(now))
        return completed

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, shard: int, batch: Batch) -> int:
        """Execute one flushed batch: route, run, time, complete."""
        dictionary = self.shards[shard]
        router = self.routers[shard]
        tickets: list[Ticket] = batch.requests
        hub = self.telemetry
        batch_span = (
            hub.on_batch(shard, batch, tickets) if hub is not None else None
        )
        xs = np.asarray([t.key for t in tickets], dtype=np.int64)
        assignment = router.assign(xs.shape[0])
        order = np.arange(xs.shape[0])
        for replica in np.unique(assignment):
            sel = order[assignment == replica]
            self._run_group(
                shard, dictionary, router, tickets, xs, sel,
                int(replica), batch.flushed, batch_span,
            )
        self.stats.batches += 1
        done = [t for t in tickets if t.done]
        self.admission.release(len(done))
        self.stats.completed += len(done)
        if hub is not None:
            hub.on_batch_done(shard, done, batch_span, service=self)
        if self.health is not None:
            self.health.tick(float(batch.flushed))
        if self.on_complete is not None and done:
            self.on_complete(done)
        return len(done)

    def _run_group(
        self,
        shard: int,
        dictionary: ReplicatedDictionary,
        router: Router,
        tickets: list[Ticket],
        xs: np.ndarray,
        sel: np.ndarray,
        replica: int,
        now: float,
        batch_span=None,
    ) -> None:
        """Run one replica's share of a batch, failing over on crashes."""
        hub = self.telemetry
        if replica not in router.live:
            # The batch's assignment is computed once at flush time, so
            # a replica taken down *mid-batch* — e.g. quarantined after
            # a witness caught an earlier group's corruption — can still
            # hold later groups of the same batch.  Re-route instead of
            # dispatching into the quarantine (found by the PR 7
            # adversarial search; partial corruption evades the
            # detectable-failure retry path below).
            replica = int(router.assign(1)[0])
        if hub is not None:
            hub.on_route(
                shard, replica, router.name, int(sel.size), float(now),
                batch_span,
            )
        if BUS.active:
            BUS.emit(RouteEvent(
                shard=shard, replica=replica, policy=router.name,
                size=int(sel.size),
            ))
        while True:
            before = dictionary.table.counter.total_probes()
            try:
                answers = dictionary.query_batch_on(
                    xs[sel], replica, self._rng
                )
            except ReplicaUnavailableError:
                # PR 2 composition: the crash marks the replica down,
                # the router reweights, and the batch retries on a
                # survivor.  No healthy replica left raises
                # FaultExhaustedError out of the service.
                router.mark_down(replica)
                self.stats.failovers += 1
                if hub is not None:
                    hub.on_failover(shard, replica, float(now), batch_span)
                if BUS.active:
                    BUS.emit(FailoverEvent(shard=shard, replica=replica))
                if self.health is not None:
                    self.health.on_crash(shard, replica, float(now))
                candidates = router.assign(1)
                replica = int(candidates[0])
                continue
            except _REPLICA_FAILURES:
                # Detectable corruption drove the query algorithm into
                # an impossible state.  With healing on, quarantine the
                # replica and retry elsewhere (the probes it already
                # charged stay charged — honest accounting); without
                # it, this stays the seed's hard error.
                if self.health is None:
                    raise
                router.mark_down(replica)
                self.stats.failovers += 1
                if hub is not None:
                    hub.on_failover(shard, replica, float(now), batch_span)
                if BUS.active:
                    BUS.emit(FailoverEvent(shard=shard, replica=replica))
                self.health.on_corruption(shard, replica, float(now))
                candidates = router.assign(1)
                replica = int(candidates[0])
                continue
            break
        probes = dictionary.table.counter.total_probes() - before
        router.record(replica, probes)
        self.stats.probes += probes
        busy = self._busy_until[shard]
        start = max(float(now), float(busy[replica]))
        finish = start + probes * self.probe_time
        busy[replica] = finish
        if hub is not None:
            hub.on_dispatch(shard, replica, probes, start, finish, batch_span)
        if BUS.active:
            BUS.emit(DispatchEvent(
                shard=shard, replica=replica, probes=probes,
                start=start, finish=finish,
            ))
        if self.health is not None:
            self.health.note_dispatch(shard, replica, float(now))
            answers = self._verify_group(
                shard, dictionary, router, xs, sel, replica, answers,
                now, batch_span,
            )
        for pos, i in enumerate(sel):
            tickets[i].answer = bool(answers[pos])
            tickets[i].completion = finish
            tickets[i].replica = replica

    def _query_group_on(
        self, shard, dictionary, router, keys, replica, now, batch_span,
    ) -> np.ndarray:
        """One charged verification dispatch of ``keys`` to ``replica``."""
        hub = self.telemetry
        before = dictionary.table.counter.total_probes()
        answers = dictionary.query_batch_on(keys, replica, self._rng)
        probes = dictionary.table.counter.total_probes() - before
        router.record(replica, probes)
        self.stats.probes += probes
        busy = self._busy_until[shard]
        start = max(float(now), float(busy[replica]))
        finish = start + probes * self.probe_time
        busy[replica] = finish
        if hub is not None:
            hub.on_dispatch(shard, replica, probes, start, finish, batch_span)
        if BUS.active:
            BUS.emit(DispatchEvent(
                shard=shard, replica=replica, probes=probes,
                start=start, finish=finish,
            ))
        return answers

    def _quarantine(
        self, shard, router, replica, now, batch_span, crashed: bool,
    ) -> None:
        """Mark a replica down and tell the health manager why."""
        hub = self.telemetry
        if router.breaker_state(replica) == "closed":
            router.mark_down(replica)
        self.stats.failovers += 1
        if hub is not None:
            hub.on_failover(shard, replica, float(now), batch_span)
        if BUS.active:
            BUS.emit(FailoverEvent(shard=shard, replica=replica))
        if crashed:
            self.health.on_crash(shard, replica, float(now))
        else:
            self.health.on_corruption(shard, replica, float(now))

    def _verify_group(
        self,
        shard: int,
        dictionary: ReplicatedDictionary,
        router: Router,
        xs: np.ndarray,
        sel: np.ndarray,
        primary: int,
        answers: np.ndarray,
        now: float,
        batch_span=None,
    ) -> np.ndarray:
        """Verified dispatch: a witness replica re-answers the group.

        With healing enabled every routed group is independently
        re-executed on a second uniformly random live replica (the
        witness) — marginal per-replica load 2/|live| instead of
        1/|live|, still within the Binomial envelope at the adjusted
        rate.  Agreement (the overwhelmingly common case) returns the
        primary's answers unchanged.  A disagreeing key triggers a
        cross-replica majority vote; replicas voting against the
        majority are quarantined, and the majority answers are what the
        tickets see — a silently-corrupt replica never propagates a
        wrong answer.
        """
        health = self.health
        witness = health.pick_witness(shard, primary)
        if witness is None:
            return answers
        keys = xs[sel]
        try:
            echoed = self._query_group_on(
                shard, dictionary, router, keys, witness, now, batch_span,
            )
        except ReplicaUnavailableError:
            self._quarantine(
                shard, router, witness, now, batch_span, crashed=True,
            )
            return answers
        except _REPLICA_FAILURES:
            self._quarantine(
                shard, router, witness, now, batch_span, crashed=False,
            )
            return answers
        mismatch = np.nonzero(answers != echoed)[0]
        if mismatch.size == 0:
            return answers
        # Two replicas disagree: poll every other live replica on the
        # contested keys and let the majority decide.
        contested = keys[mismatch]
        votes: dict[int, np.ndarray] = {
            primary: answers[mismatch], witness: echoed[mismatch],
        }
        for r in list(router.live):
            if r in votes:
                continue
            try:
                votes[r] = self._query_group_on(
                    shard, dictionary, router, contested, r, now, batch_span,
                )
            except ReplicaUnavailableError:
                self._quarantine(
                    shard, router, r, now, batch_span, crashed=True,
                )
            except _REPLICA_FAILURES:
                self._quarantine(
                    shard, router, r, now, batch_span, crashed=False,
                )
        stack = np.stack([votes[r] for r in sorted(votes)])
        if stack.shape[0] >= 3:
            majority = stack.sum(axis=0) * 2 > stack.shape[0]
        else:
            # Two voters cannot attribute blame by vote; the build's
            # key set is ground truth the service already holds (and
            # consulting it probes no cells), so it breaks the tie —
            # the same oracle the canary gate checks against.
            majority = np.isin(contested, dictionary.keys)
        for r in sorted(votes):
            if bool(np.any(votes[r] != majority)):
                self._quarantine(
                    shard, router, r, now, batch_span, crashed=False,
                )
        corrected = np.array(answers, copy=True)
        corrected[mismatch] = majority
        return corrected

    # -- introspection -----------------------------------------------------------

    def replica_loads(self) -> list[np.ndarray]:
        """Per-shard arrays of probes charged to each replica so far."""
        return [s.replica_probe_loads() for s in self.shards]

    def cell_load_matrix(self, shard: int = 0) -> np.ndarray:
        """One shard's raw per-step per-cell probe counts (copy)."""
        return self.shards[shard].table.counter.counts_per_step()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedDictionaryService(shards={self.num_shards}, "
            f"router={self.router_name!r}, "
            f"completed={self.stats.completed})"
        )


def build_service(
    keys: np.ndarray,
    universe_size: int,
    num_shards: int = 1,
    replicas: int = 3,
    scheme: str = "low-contention",
    router: str = "least-loaded",
    max_batch: int = 32,
    max_delay: float = 1.0,
    capacity: int = 1024,
    probe_time: float = 0.0,
    faults: FaultConfig | None = None,
    mode: str = "random",
    seed=0,
) -> ShardedDictionaryService:
    """Construct a service over ``keys``: shard, build, replicate.

    The universe splits into ``num_shards`` equal contiguous ranges;
    each range's keys build one inner dictionary (scheme from
    :data:`~repro.experiments.common.SCHEMES`), wrapped in a
    :class:`~repro.dictionaries.replicated.ReplicatedDictionary` with
    ``replicas`` copies and the given fault configuration.  Every shard
    must own at least one key (shard counts far below n keep this true
    for random instances; a violating split raises
    :class:`~repro.errors.ParameterError`).
    """
    # Imported here, not at module level: repro.experiments.e19_serving
    # imports repro.serve, so a top-level import would be circular.
    from repro.experiments.common import SCHEMES

    keys = np.asarray(keys, dtype=np.int64)
    universe_size = int(universe_size)
    num_shards = check_positive_integer("num_shards", num_shards)
    if scheme not in SCHEMES:
        raise ParameterError(
            f"unknown scheme {scheme!r}; options: {sorted(SCHEMES)}"
        )
    rng = as_generator(seed)
    boundaries = [
        (universe_size * i) // num_shards for i in range(num_shards)
    ]
    edges = boundaries + [universe_size]
    shards: list[ReplicatedDictionary] = []
    for i in range(num_shards):
        lo, hi = edges[i], edges[i + 1]
        shard_keys = keys[(keys >= lo) & (keys < hi)]
        if shard_keys.size == 0:
            raise ParameterError(
                f"shard {i} (keys in [{lo}, {hi})) is empty; "
                f"use fewer shards for this instance"
            )
        inner = SCHEMES[scheme](
            shard_keys,
            universe_size,
            rng=np.random.default_rng(rng.integers(0, 2**63 - 1)),
        )
        shards.append(
            ReplicatedDictionary(
                inner, replicas, mode=mode, faults=faults
            )
        )
    return ShardedDictionaryService(
        shards,
        boundaries,
        router=router,
        max_batch=max_batch,
        max_delay=max_delay,
        capacity=capacity,
        probe_time=probe_time,
        seed=rng.integers(0, 2**63 - 1),
    )
