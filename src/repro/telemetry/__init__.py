"""Telemetry: tracing, metrics & live contention monitoring (PR 4).

The observability layer for the probe/serve stack, built around one
invariant: **telemetry off must be byte-identical to telemetry absent**.
Every instrumented site in the library guards its emission behind
``if BUS.active:``, so the disabled cost is a single attribute test —
no event objects, no callable dispatch, and no RNG perturbation.  The
property test in ``tests/test_telemetry_integration.py`` proves probe
accounting identical with the layer disabled, and
``benchmarks/bench_e20_telemetry.py`` gates the hot-path overhead.

Four coordinated pieces:

- :mod:`~repro.telemetry.events` — the zero-overhead structured event
  bus and its typed event vocabulary;
- :mod:`~repro.telemetry.tracing` — clockless trace spans threading
  request → admission → batch → route → replica → table-probe, with
  JSON and Chrome ``trace_event`` export;
- :mod:`~repro.telemetry.metrics` — counters, gauges, mergeable
  log-bucket histograms, Prometheus text exposition, and versioned
  JSON snapshots;
- :mod:`~repro.telemetry.monitor` — live monitors comparing streaming
  per-cell probe counts against the exact Binomial(Q, Φ_t(j)) law of
  the paper's Definition 1, with a max-of-Gaussians-corrected alarm
  threshold (validated by experiment E20);
- :mod:`~repro.telemetry.hub` — :class:`TelemetryHub`, the attachable
  bundle the serving stack carries, and :class:`BusMetricsCollector`
  for bus-driven collection around offline experiment runs.
"""

from repro.telemetry.events import (
    BUS,
    EVENT_TYPES,
    AdmissionEvent,
    BatchEvent,
    DispatchEvent,
    EventBus,
    ExecutionEvent,
    FailoverEvent,
    FaultEvent,
    HealEvent,
    HealthTransitionEvent,
    ProbeEvent,
    ReplicaHealthEvent,
    RouteEvent,
    get_bus,
)
from repro.telemetry.hub import (
    BusMetricsCollector,
    TelemetryHub,
    collect_bus_metrics,
)
from repro.telemetry.metrics import (
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
)
from repro.telemetry.monitor import (
    ContentionMonitor,
    HotCellAlarm,
    ReplicaBalanceMonitor,
    RouterSkewAlarm,
)
from repro.telemetry.tracing import TRACE_VERSION, Span, Tracer

__all__ = [
    "BUS",
    "EVENT_TYPES",
    "AdmissionEvent",
    "BatchEvent",
    "BusMetricsCollector",
    "ContentionMonitor",
    "Counter",
    "DispatchEvent",
    "EventBus",
    "ExecutionEvent",
    "FailoverEvent",
    "FaultEvent",
    "Gauge",
    "HealEvent",
    "HealthTransitionEvent",
    "HotCellAlarm",
    "LogHistogram",
    "MetricsRegistry",
    "ProbeEvent",
    "ReplicaBalanceMonitor",
    "ReplicaHealthEvent",
    "RouteEvent",
    "RouterSkewAlarm",
    "SNAPSHOT_VERSION",
    "Span",
    "TRACE_VERSION",
    "TelemetryHub",
    "Tracer",
    "collect_bus_metrics",
    "get_bus",
]
