"""The structured event bus: typed events, zero overhead when disabled.

Observability must never change what it observes.  The bus is designed
around one contract, enforced at every producer site in the library:

    if BUS.active:
        BUS.emit(ProbeEvent(step=step, probes=k))

With no subscriber, ``BUS.active`` is a plain ``False`` attribute, so
the *entire* cost of an instrumented hot path is one attribute test —
no event object is ever constructed, no callable is ever invoked, and
(crucially for this library) no RNG stream is ever touched.  The
disabled path is property-tested to leave per-cell, per-step probe
accounting byte-identical to the uninstrumented code
(``tests/test_telemetry_integration.py``), and the benchmark gate
(``benchmarks/bench_e20_telemetry.py``) bounds its overhead on the
batch-query hot path at 2%.

Events are small frozen dataclasses (one per instrumented layer of the
probe/serve stack: table probes, query executions, admission decisions,
batch flushes, routing picks, dispatches, failovers, replica health,
injected faults).  Consumers subscribe plain callables; the
:class:`~repro.telemetry.hub.BusMetricsCollector` turns the stream into
metrics, and tests use :meth:`EventBus.capture` to assert on it.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Callable, Iterator


@dataclasses.dataclass(frozen=True, slots=True)
class ProbeEvent:
    """One charged read call against a cell-probe table.

    ``probes`` is the number of cells actually probed (a batched read
    skips its negative-column entries), all charged at query ``step``.
    """

    step: int
    probes: int


@dataclasses.dataclass(frozen=True, slots=True)
class ExecutionEvent:
    """``count`` query executions completed (the contention normalizer)."""

    count: int


@dataclasses.dataclass(frozen=True, slots=True)
class AdmissionEvent:
    """One admission decision: ``admitted`` or shed at ``depth``."""

    admitted: bool
    depth: int
    capacity: int


@dataclasses.dataclass(frozen=True, slots=True)
class BatchEvent:
    """One micro-batch flush: ``size`` requests after ``waited`` units."""

    size: int
    reason: str
    waited: float


@dataclasses.dataclass(frozen=True, slots=True)
class RouteEvent:
    """A router assigned ``size`` requests of shard ``shard`` to ``replica``."""

    shard: int
    replica: int
    policy: str
    size: int


@dataclasses.dataclass(frozen=True, slots=True)
class DispatchEvent:
    """One replica dispatch completed, charging ``probes`` probes."""

    shard: int
    replica: int
    probes: int
    start: float
    finish: float


@dataclasses.dataclass(frozen=True, slots=True)
class FailoverEvent:
    """A dispatch hit a crashed replica and retried on a survivor."""

    shard: int
    replica: int


@dataclasses.dataclass(frozen=True, slots=True)
class ReplicaHealthEvent:
    """A router marked ``replica`` down (``up=False``) or back up."""

    replica: int
    up: bool


@dataclasses.dataclass(frozen=True, slots=True)
class FaultEvent:
    """Injected faults corrupted ``count`` values on one read path."""

    kind: str
    count: int


@dataclasses.dataclass(frozen=True, slots=True)
class HealthTransitionEvent:
    """A replica health state machine moved ``source`` → ``target``."""

    shard: int
    replica: int
    source: str
    target: str
    reason: str


@dataclasses.dataclass(frozen=True, slots=True)
class HealEvent:
    """One healing action: scrub repair, stuck diagnosis, rebuild, canary.

    ``kind`` is one of ``"repair"``, ``"stuck"``, ``"rebuild-start"``,
    ``"rebuild-done"``, ``"canary-pass"``, ``"canary-fail"``; ``count``
    is the number of cells/rows/queries the action covered.
    """

    kind: str
    shard: int
    replica: int
    count: int = 1


@dataclasses.dataclass(frozen=True, slots=True)
class UpdateEvent:
    """One applied update group: ``size`` ops moved ``shard`` to ``epoch``."""

    shard: int
    size: int
    epoch: int


@dataclasses.dataclass(frozen=True, slots=True)
class RebuildEvent:
    """One dynamic level rebuild: ``entries`` entries re-installed at
    ``level``, writing ``cells`` cells, with ``probes`` verification
    probes charged to the rebuild counter (never the query counter).
    """

    shard: int
    replica: int
    level: int
    entries: int
    cells: int
    probes: int


@dataclasses.dataclass(frozen=True, slots=True)
class EpochEvent:
    """An epoch advanced: ``retired`` structures held, ``reclaimed`` freed."""

    epoch: int
    retired: int
    reclaimed: int
    pinned: int


@dataclasses.dataclass(frozen=True, slots=True)
class ReconfigEvent:
    """The autotune control plane applied one reconfiguration action.

    ``kind`` is one of ``"split"`` (grow replication), ``"join"``
    (shrink replication), ``"scheme-switch"``, ``"capacity"``, or
    ``"update-capacity"``; ``shard`` is ``-1`` for service-wide actions
    (admission tuning).  ``before``/``after`` give the changed quantity
    (replica count, scheme index, or capacity); ``probes`` is the
    reconfiguration probe work (clone peeks, verification) charged to
    the controller's reconfig counter, never the query path; ``epoch``
    is the controller epoch at which the swap became visible.
    """

    kind: str
    shard: int
    before: int
    after: int
    probes: int
    epoch: int
    target: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class CheckpointEvent:
    """One shard checkpoint written durably at ``generation``.

    ``entries`` is the retained log-suffix length captured in the file,
    ``live_keys`` the snapshot's live key count, ``nbytes`` the framed
    file size, and ``compacted`` the log entries folded into the base
    snapshot by the compaction that preceded the save (0 when none ran).
    """

    shard: int
    generation: int
    epoch: int
    entries: int
    live_keys: int
    nbytes: int
    compacted: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """One shard recovered from durable state (or found none).

    ``source`` is ``"checkpoint"`` (restored from a verified
    generation), ``"log"`` (full-log replay of a never-compacted
    snapshot), or ``"empty"`` (no usable generation survived; the shard
    restarted blank).  ``replayed`` counts the suffix updates replayed
    on top of the base snapshot — the bounded recovery work —
    and ``quarantined`` the corrupt files renamed aside on the way to a
    usable generation.
    """

    shard: int
    generation: int
    source: str
    replayed: int
    quarantined: int


#: Every event type the library emits (introspection / capture filters).
EVENT_TYPES = (
    ProbeEvent,
    ExecutionEvent,
    AdmissionEvent,
    BatchEvent,
    RouteEvent,
    DispatchEvent,
    FailoverEvent,
    ReplicaHealthEvent,
    FaultEvent,
    HealthTransitionEvent,
    HealEvent,
    UpdateEvent,
    RebuildEvent,
    EpochEvent,
    ReconfigEvent,
    CheckpointEvent,
    RecoveryEvent,
)


class EventBus:
    """Synchronous fan-out of typed events to subscribed callables.

    ``active`` is a plain attribute kept equal to "has subscribers";
    producers test it before constructing an event, which is what makes
    the disabled path free.  Subscribers run inline on the emitting
    thread in subscription order — a slow subscriber slows the
    instrumented code, which is deliberate (no hidden queues, no
    reordering, deterministic tests).
    """

    __slots__ = ("active", "_subscribers")

    def __init__(self) -> None:
        self.active = False
        self._subscribers: list[Callable] = []

    # -- subscription ------------------------------------------------------------

    def subscribe(self, fn: Callable) -> None:
        """Add ``fn`` (called with each event); enables the bus."""
        self._subscribers.append(fn)
        self.active = True

    def unsubscribe(self, fn: Callable) -> None:
        """Remove one subscription of ``fn``; disables the bus if last."""
        self._subscribers.remove(fn)
        self.active = bool(self._subscribers)

    @property
    def subscribers(self) -> int:
        """Number of active subscriptions."""
        return len(self._subscribers)

    # -- emission ----------------------------------------------------------------

    def emit(self, event) -> None:
        """Deliver ``event`` to every subscriber, in order.

        Producers must guard this behind ``if bus.active:`` — calling
        ``emit`` on a disabled bus is harmless but means the event was
        constructed for nothing.
        """
        for fn in self._subscribers:
            fn(event)

    # -- scoped helpers ----------------------------------------------------------

    @contextmanager
    def subscribed(self, fn: Callable) -> Iterator["EventBus"]:
        """Subscribe ``fn`` for the duration of a ``with`` block."""
        self.subscribe(fn)
        try:
            yield self
        finally:
            self.unsubscribe(fn)

    @contextmanager
    def capture(self, *types) -> Iterator[list]:
        """Collect events (optionally filtered by ``types``) into a list."""
        events: list = []
        if types:
            def sink(event, _types=tuple(types)):
                if isinstance(event, _types):
                    events.append(event)
        else:
            sink = events.append
        self.subscribe(sink)
        try:
            yield events
        finally:
            self.unsubscribe(sink)


#: The process-wide bus every instrumented site in the library emits to.
BUS = EventBus()


def get_bus() -> EventBus:
    """The process-wide :data:`BUS` (a function for mockability)."""
    return BUS
