"""The telemetry hub: one attachable object bundling the whole layer.

:class:`TelemetryHub` is what a
:class:`~repro.serve.service.ShardedDictionaryService` (or the asyncio
server around it) carries when observability is on.  The service calls
the hub's ``on_*`` hooks at each lifecycle point — admission, batch
flush, routing pick, replica dispatch, failover, completion — and the
hub fans each hook into whichever sinks are enabled:

- **metrics** (:class:`~repro.telemetry.metrics.MetricsRegistry`):
  request/batch/probe counters, in-flight gauge, and histograms for
  batch size, probes per dispatch, and request latency;
- **tracing** (:class:`~repro.telemetry.tracing.Tracer`): the
  request → admission → batch → route → replica → table-probe span
  tree (see :mod:`repro.telemetry.tracing` for the vocabulary);
- **monitoring** (:class:`~repro.telemetry.monitor.ContentionMonitor` /
  :class:`~repro.telemetry.monitor.ReplicaBalanceMonitor`): every
  ``check_every`` batches the live per-cell counts and per-replica
  loads of the watched shard are re-checked against the exact
  Binomial(Q, Φ_t) law; alarms accumulate in :attr:`TelemetryHub.alarms`.

The hub is attached with ``service.attach_telemetry(hub)`` and every
service-side call is guarded by ``if self.telemetry is not None`` — a
service without a hub runs the seed code path, byte-identically.

:class:`BusMetricsCollector` is the service-free counterpart: it
subscribes to the global event :data:`~repro.telemetry.events.BUS` and
turns low-level events (table probes, query executions, admission
decisions, batch flushes, injected faults) into the same metrics
vocabulary.  ``repro run --emit-telemetry DIR`` wraps each experiment
in one and writes the snapshot per experiment.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.telemetry.events import (
    BUS,
    AdmissionEvent,
    BatchEvent,
    DispatchEvent,
    ExecutionEvent,
    FailoverEvent,
    FaultEvent,
    HealEvent,
    HealthTransitionEvent,
    ProbeEvent,
    ReplicaHealthEvent,
    RouteEvent,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.monitor import ContentionMonitor, ReplicaBalanceMonitor
from repro.telemetry.tracing import Span, Tracer


class TelemetryHub:
    """Attachable bundle of metrics, tracing, and live monitors.

    Parameters
    ----------
    metrics:
        Record serve metrics into a fresh registry (or pass one in).
    tracing:
        Record the span tree (pass a :class:`Tracer` to share one).
    contention / balance:
        Optional monitors, re-checked every ``check_every`` dispatched
        batches against shard ``watch_shard``'s live counters.
    """

    def __init__(
        self,
        metrics: "bool | MetricsRegistry" = True,
        tracing: "bool | Tracer" = False,
        contention: ContentionMonitor | None = None,
        balance: ReplicaBalanceMonitor | None = None,
        check_every: int = 8,
        watch_shard: int = 0,
    ):
        if isinstance(metrics, MetricsRegistry):
            self.metrics: MetricsRegistry | None = metrics
        else:
            self.metrics = MetricsRegistry() if metrics else None
        if isinstance(tracing, Tracer):
            self.tracer: Tracer | None = tracing
        else:
            self.tracer = Tracer() if tracing else None
        self.contention = contention
        self.balance = balance
        self.check_every = max(1, int(check_every))
        self.watch_shard = int(watch_shard)
        self.alarms: list = []
        self._batches = 0
        self._watched_completed = 0
        self._request_spans: dict[int, Span] = {}

    # -- service hooks -----------------------------------------------------------

    def on_request(self, ticket, now: float) -> None:
        """An admitted request entered its shard's micro-batch."""
        if self.metrics is not None:
            self.metrics.counter(
                "serve_requests", "requests admitted"
            ).inc()
        if self.tracer is not None:
            span = self.tracer.start(
                "request",
                now,
                track=ticket.shard,
                key=ticket.key,
                shard=ticket.shard,
            )
            self.tracer.instant("admission", now, parent=span)
            self._request_spans[id(ticket)] = span

    def on_shed(self, now: float, depth: int, capacity: int) -> None:
        """Admission control shed a request."""
        if self.metrics is not None:
            self.metrics.counter("serve_shed", "requests shed").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "admission-shed", now, depth=depth, capacity=capacity
            )

    def on_inflight(self, in_flight: int) -> None:
        """The admission controller's in-flight depth changed."""
        if self.metrics is not None:
            gauge = self.metrics.gauge(
                "serve_in_flight_peak", "peak requests in flight"
            )
            gauge.value = max(gauge.value, float(in_flight))

    def on_batch(self, shard: int, batch, tickets: list) -> Span | None:
        """A batch flushed and is about to dispatch; returns its span."""
        if self.metrics is not None:
            self.metrics.counter("serve_batches", "batches dispatched").inc()
            self.metrics.histogram(
                "serve_batch_size", "requests per batch", resolution=1.0
            ).record(batch.size)
            self.metrics.histogram(
                "serve_batch_wait", "oldest-request wait before flush"
            ).record(max(0.0, batch.flushed - batch.opened))
        if self.tracer is None:
            return None
        parent = None
        if tickets:
            parent = self._request_spans.get(id(tickets[0]))
        return self.tracer.start(
            "batch",
            batch.opened,
            parent=parent,
            track=shard,
            shard=shard,
            size=batch.size,
            reason=batch.reason,
        )

    def on_route(
        self,
        shard: int,
        replica: int,
        policy: str,
        size: int,
        now: float,
        batch_span: Span | None,
    ) -> None:
        """The router assigned ``size`` requests to ``replica``."""
        if self.metrics is not None:
            self.metrics.counter("serve_routes", "routing picks").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "route",
                now,
                parent=batch_span,
                track=shard,
                replica=replica,
                policy=policy,
                size=size,
            )

    def on_dispatch(
        self,
        shard: int,
        replica: int,
        probes: int,
        start: float,
        finish: float,
        batch_span: Span | None,
    ) -> None:
        """One replica finished its share of a batch (``probes`` charged)."""
        if self.metrics is not None:
            self.metrics.counter("serve_probes", "probes charged").inc(probes)
            self.metrics.histogram(
                "serve_dispatch_probes", "probes per replica dispatch",
                resolution=1.0,
            ).record(probes)
            self.metrics.histogram(
                "serve_service_time", "replica busy time per dispatch"
            ).record(max(0.0, finish - start))
        if self.tracer is not None:
            span = self.tracer.start(
                "replica",
                start,
                parent=batch_span,
                track=shard,
                shard=shard,
                replica=replica,
                probes=probes,
            )
            self.tracer.instant(
                "table-probe", start, parent=span, probes=probes
            )
            self.tracer.finish(span, max(finish, start))

    def on_failover(
        self, shard: int, replica: int, now: float, batch_span: Span | None
    ) -> None:
        """A dispatch hit a crashed replica and is retrying elsewhere."""
        if self.metrics is not None:
            self.metrics.counter("serve_failovers", "replica failovers").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "failover", now, parent=batch_span, replica=replica
            )

    def on_health(
        self,
        shard: int,
        replica: int,
        source: str,
        target: str,
        reason: str,
        now: float,
    ) -> None:
        """A replica's health state machine transitioned."""
        if self.metrics is not None:
            self.metrics.counter(
                "serve_health_transitions", "health state transitions"
            ).inc()
            self.metrics.counter(
                f"serve_health_to_{target}", f"transitions into {target}"
            ).inc()
        if self.tracer is not None:
            self.tracer.instant(
                "health",
                now,
                track=shard,
                replica=replica,
                source=source,
                target=target,
                reason=reason,
            )

    def on_heal(
        self, kind: str, shard: int, replica: int, count: int, now: float
    ) -> None:
        """The healing layer acted (repair/stuck/rebuild/canary)."""
        if self.metrics is not None:
            self.metrics.counter(
                f"heal_{kind.replace('-', '_')}", f"healing {kind} actions"
            ).inc(count)
        if self.tracer is not None:
            self.tracer.instant(
                "heal", now, track=shard, kind=kind, replica=replica,
                count=count,
            )

    def on_batch_done(
        self, shard: int, done: list, batch_span: Span | None, service=None
    ) -> None:
        """A dispatched batch completed ``done`` tickets."""
        if self.metrics is not None:
            self.metrics.counter("serve_completed", "requests completed").inc(
                len(done)
            )
            latency = self.metrics.histogram(
                "serve_latency", "request latency (arrival to completion)"
            )
            for t in done:
                latency.record(max(0.0, t.latency))
        if self.tracer is not None:
            end = None
            for t in done:
                span = self._request_spans.pop(id(t), None)
                if span is not None and not span.finished:
                    self.tracer.finish(span, max(t.completion, span.start))
                    end = t.completion if end is None else max(end, t.completion)
            if batch_span is not None and not batch_span.finished:
                self.tracer.finish(
                    batch_span,
                    batch_span.start if end is None else max(end, batch_span.start),
                )
        self._batches += 1
        if shard == self.watch_shard:
            self._watched_completed += len(done)
        if service is not None and self._batches % self.check_every == 0:
            self.check(service)

    # -- monitoring --------------------------------------------------------------

    def check(self, service) -> list:
        """Run the attached monitors against the watched shard, now.

        Returns the new alarms (also appended to :attr:`alarms` and
        counted in the ``telemetry_alarms`` metric).
        """
        new: list = []
        shard = self.watch_shard
        if self.contention is not None:
            counts = service.cell_load_matrix(shard)
            new.extend(
                self.contention.observe(counts, self._watched_completed)
            )
        if self.balance is not None:
            loads = np.asarray(service.replica_loads()[shard])
            new.extend(self.balance.observe(loads))
        if new:
            self.alarms.extend(new)
            if self.metrics is not None:
                self.metrics.counter(
                    "telemetry_alarms", "monitor alarms raised"
                ).inc(len(new))
        return new

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Versioned snapshot: metrics plus alarms plus trace summary."""
        snap = (
            self.metrics.snapshot()
            if self.metrics is not None
            else {"version": 1, "kind": "repro-metrics"}
        )
        snap["alarms"] = [a.row() for a in self.alarms]
        if self.tracer is not None:
            snap["trace"] = {
                "spans": len(self.tracer.spans),
                "dropped": self.tracer.dropped,
            }
        return snap


class BusMetricsCollector:
    """Turns global :data:`~repro.telemetry.events.BUS` events into metrics.

    A context manager: subscribing enables the bus (and therefore the
    guarded emit sites across the library); leaving the block restores
    the zero-overhead disabled path.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def __enter__(self) -> "BusMetricsCollector":
        BUS.subscribe(self._on_event)
        return self

    def __exit__(self, *exc) -> None:
        BUS.unsubscribe(self._on_event)

    def _on_event(self, event) -> None:
        reg = self.registry
        if isinstance(event, ProbeEvent):
            reg.counter("probe_reads", "charged table read calls").inc()
            reg.counter("probes", "cells probed").inc(event.probes)
            reg.histogram(
                "probe_batch_size", "cells probed per read call",
                resolution=1.0,
            ).record(event.probes)
        elif isinstance(event, ExecutionEvent):
            reg.counter("executions", "query executions completed").inc(
                event.count
            )
        elif isinstance(event, AdmissionEvent):
            name = "admitted" if event.admitted else "shed"
            reg.counter(f"admission_{name}", f"requests {name}").inc()
        elif isinstance(event, BatchEvent):
            reg.counter("batch_flushes", "micro-batch flushes").inc()
            reg.counter(
                f"batch_flush_{event.reason}",
                f"flushes by {event.reason}",
            ).inc()
        elif isinstance(event, RouteEvent):
            reg.counter("route_picks", "routing decisions").inc()
        elif isinstance(event, DispatchEvent):
            reg.counter("dispatches", "replica dispatches").inc()
        elif isinstance(event, FailoverEvent):
            reg.counter("failovers", "replica failovers").inc()
        elif isinstance(event, ReplicaHealthEvent):
            name = "up" if event.up else "down"
            reg.counter(
                f"replica_marked_{name}", f"replicas marked {name}"
            ).inc()
        elif isinstance(event, FaultEvent):
            reg.counter(
                "fault_corruptions", "values corrupted by injected faults"
            ).inc(event.count)
        elif isinstance(event, HealthTransitionEvent):
            reg.counter(
                "health_transitions", "health state transitions"
            ).inc()
            reg.counter(
                f"health_to_{event.target}",
                f"transitions into {event.target}",
            ).inc()
        elif isinstance(event, HealEvent):
            reg.counter(
                f"heal_{event.kind.replace('-', '_')}",
                f"healing {event.kind} actions",
            ).inc(event.count)


@contextmanager
def collect_bus_metrics(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Enable the bus and collect library-wide metrics for a block."""
    with BusMetricsCollector(registry) as collector:
        yield collector.registry
