"""Counters, gauges, and mergeable streaming histograms with exposition.

Three metric kinds, chosen to match what the probe/serve stack needs:

- :class:`Counter` — monotone event totals (requests, probes, shed);
- :class:`Gauge` — last-written level (requests in flight, live replicas);
- :class:`LogHistogram` — a mergeable geometric-bucket sketch for
  tail-heavy nonnegative quantities (probe load per dispatch, batch
  sizes, service-time / latency tails).  Buckets grow by a fixed ratio
  (default ``2**0.25`` ≈ 19% per bucket), so any quantile is recovered
  with bounded *relative* error (≤ half a bucket, ~9%) from O(log
  range) integers — and two sketches with the same geometry merge by
  adding counts, which is what lets per-worker / per-shard measurements
  combine into one view (the same reason
  :meth:`repro.cellprobe.counters.ProbeCounter.merge` exists).

A :class:`MetricsRegistry` names and owns metrics, and exports two
ways: Prometheus text exposition (:meth:`~MetricsRegistry.to_prometheus`,
classic cumulative-``le`` histograms) and a **versioned JSON snapshot**
(:meth:`~MetricsRegistry.snapshot`) that round-trips through
:func:`repro.io.results.save_snapshot` / ``load_snapshot`` and merges
across processes via :meth:`~MetricsRegistry.from_snapshot` +
:meth:`~MetricsRegistry.merge`.  Snapshot readers must tolerate unknown
keys (forward compatibility — property-tested in ``tests/test_io.py``).
"""

from __future__ import annotations

import math
import re

import numpy as np

from repro.errors import TelemetryError

#: Bumped when the snapshot JSON layout changes shape.
SNAPSHOT_VERSION = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        )
    return name


class Counter:
    """A monotonically increasing event total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease")
        self.value += int(amount)

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one."""
        self.value += int(other.value)


class Gauge:
    """A level that can move both ways (last write wins on merge max)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current level."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level by ``amount`` (either sign)."""
        self.value += float(amount)

    def merge(self, other: "Gauge") -> None:
        """Combine by maximum — the useful reduction for peak levels."""
        self.value = max(self.value, float(other.value))


class LogHistogram:
    """Mergeable geometric-bucket histogram for nonnegative values.

    Value ``v > 0`` lands in bucket ``floor(log(v / resolution) /
    log(growth))`` (clamped below at 0: everything smaller than
    ``resolution`` shares the first bucket); zeros get a dedicated
    bucket.  Exact ``count``/``sum``/``min``/``max`` are kept alongside,
    so means are exact and only quantiles are sketched.
    """

    __slots__ = (
        "name", "help", "resolution", "growth", "_log_growth",
        "buckets", "zeros", "count", "sum", "min", "max",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        resolution: float = 1e-6,
        growth: float = 2.0 ** 0.25,
    ):
        self.name = _check_name(name)
        self.help = help
        if not resolution > 0.0:
            raise TelemetryError("resolution must be > 0")
        if not growth > 1.0:
            raise TelemetryError("growth must be > 1")
        self.resolution = float(resolution)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------------

    def _index(self, value: float) -> int:
        return max(
            0, int(math.floor(math.log(value / self.resolution) / self._log_growth))
        )

    def record(self, value: float) -> None:
        """Add one observation (must be >= 0)."""
        value = float(value)
        if value < 0.0 or math.isnan(value):
            raise TelemetryError(
                f"histogram {self.name} takes nonnegative values, got {value}"
            )
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value == 0.0:
            self.zeros += 1
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def record_many(self, values) -> None:
        """Vectorized :meth:`record` for an array of observations."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if bool(np.any(values < 0.0)) or bool(np.any(np.isnan(values))):
            raise TelemetryError(
                f"histogram {self.name} takes nonnegative values"
            )
        self.count += int(values.size)
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        positive = values[values > 0.0]
        self.zeros += int(values.size - positive.size)
        if positive.size:
            idx = np.maximum(
                0,
                np.floor(
                    np.log(positive / self.resolution) / self._log_growth
                ).astype(np.int64),
            )
            uniq, counts = np.unique(idx, return_counts=True)
            for i, c in zip(uniq, counts):
                self.buckets[int(i)] = self.buckets.get(int(i), 0) + int(c)

    # -- reading -----------------------------------------------------------------

    def bucket_upper(self, idx: int) -> float:
        """Exclusive upper bound of bucket ``idx``."""
        return self.resolution * self.growth ** (idx + 1)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (relative error ≤ half a bucket)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                # Geometric midpoint of the bucket, clamped to the
                # exact observed extremes.
                mid = self.resolution * self.growth ** (idx + 0.5)
                return float(min(max(mid, self.min), self.max))
        return float(self.max)

    @property
    def mean(self) -> float:
        """Exact mean of all observations (NaN when empty)."""
        return self.sum / self.count if self.count else float("nan")

    # -- merging / serialization --------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Fold another sketch with identical geometry into this one."""
        if (self.resolution, self.growth) != (other.resolution, other.growth):
            raise TelemetryError(
                f"cannot merge histograms with different geometry: "
                f"({self.resolution}, {self.growth}) vs "
                f"({other.resolution}, {other.growth})"
            )
        for idx, c in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + c
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        """Snapshot form (plain JSON types)."""
        return {
            "help": self.help,
            "resolution": self.resolution,
            "growth": self.growth,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self.zeros,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "quantiles": {
                "p50": self.quantile(0.5),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            }
            if self.count
            else {},
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "LogHistogram":
        """Rebuild a sketch from its snapshot form (extra keys ignored)."""
        hist = cls(
            name,
            help=str(data.get("help", "")),
            resolution=float(data.get("resolution", 1e-6)),
            growth=float(data.get("growth", 2.0 ** 0.25)),
        )
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        hist.zeros = int(data.get("zeros", 0))
        hist.min = math.inf if data.get("min") is None else float(data["min"])
        hist.max = -math.inf if data.get("max") is None else float(data["max"])
        hist.buckets = {
            int(k): int(v) for k, v in dict(data.get("buckets", {})).items()
        }
        return hist


class MetricsRegistry:
    """Named metrics with get-or-create access, merge, and exposition."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LogHistogram] = {}

    # -- access ------------------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name``, created on first use."""
        if name not in self._counters:
            self._counters[name] = Counter(name, help)
        return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name``, created on first use."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, help)
        return self._gauges[name]

    def histogram(
        self,
        name: str,
        help: str = "",
        resolution: float = 1e-6,
        growth: float = 2.0 ** 0.25,
    ) -> LogHistogram:
        """The histogram called ``name``, created on first use."""
        if name not in self._histograms:
            self._histograms[name] = LogHistogram(
                name, help, resolution=resolution, growth=growth
            )
        return self._histograms[name]

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # -- snapshot / merge --------------------------------------------------------

    def snapshot(self) -> dict:
        """Versioned JSON-ready snapshot of every metric."""
        return {
            "version": SNAPSHOT_VERSION,
            "kind": "repro-metrics",
            "counters": {
                n: {"help": c.help, "value": c.value}
                for n, c in sorted(self._counters.items())
            },
            "gauges": {
                n: {"help": g.help, "value": g.value}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot dict.

        Unknown top-level keys and unknown per-metric keys are ignored
        (forward compatibility: a newer writer must not break an older
        reader); an incompatible ``version`` raises
        :class:`~repro.errors.TelemetryError`.
        """
        version = data.get("version", SNAPSHOT_VERSION)
        if int(version) > SNAPSHOT_VERSION:
            raise TelemetryError(
                f"snapshot version {version} is newer than supported "
                f"({SNAPSHOT_VERSION})"
            )
        registry = cls()
        for name, body in dict(data.get("counters", {})).items():
            counter = registry.counter(name, str(body.get("help", "")))
            counter.value = int(body.get("value", 0))
        for name, body in dict(data.get("gauges", {})).items():
            gauge = registry.gauge(name, str(body.get("help", "")))
            gauge.value = float(body.get("value", 0.0))
        for name, body in dict(data.get("histograms", {})).items():
            registry._histograms[name] = LogHistogram.from_dict(name, body)
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of ``other`` into this registry by name."""
        for name, counter in other._counters.items():
            self.counter(name, counter.help).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name, gauge.help).merge(gauge)
        for name, hist in other._histograms.items():
            if name in self._histograms:
                self._histograms[name].merge(hist)
            else:
                mine = self.histogram(
                    name, hist.help,
                    resolution=hist.resolution, growth=hist.growth,
                )
                mine.merge(hist)

    # -- exposition --------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4).

        Counters expose as ``<name>_total``; histograms as classic
        cumulative-``le`` bucket series plus ``_sum``/``_count``.
        """
        lines: list[str] = []
        for name, c in sorted(self._counters.items()):
            if c.help:
                lines.append(f"# HELP {name} {c.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {c.value}")
        for name, g in sorted(self._gauges.items()):
            if g.help:
                lines.append(f"# HELP {name} {g.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(g.value)}")
        for name, h in sorted(self._histograms.items()):
            if h.help:
                lines.append(f"# HELP {name} {h.help}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = h.zeros
            if h.zeros:
                lines.append(
                    f'{name}_bucket{{le="0"}} {cumulative}'
                )
            for idx in sorted(h.buckets):
                cumulative += h.buckets[idx]
                le = _fmt(h.bucket_upper(idx))
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{name}_sum {_fmt(h.sum)}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def rows(self) -> list[dict]:
        """Flat rows (name, kind, value/summary) for table rendering."""
        out: list[dict] = []
        for name, c in sorted(self._counters.items()):
            out.append({"metric": name, "kind": "counter", "value": c.value})
        for name, g in sorted(self._gauges.items()):
            out.append({"metric": name, "kind": "gauge", "value": g.value})
        for name, h in sorted(self._histograms.items()):
            out.append(
                {
                    "metric": name,
                    "kind": "histogram",
                    "value": h.count,
                    "mean": round(h.mean, 6) if h.count else "",
                    "p50": round(h.quantile(0.5), 6) if h.count else "",
                    "p95": round(h.quantile(0.95), 6) if h.count else "",
                    "p99": round(h.quantile(0.99), 6) if h.count else "",
                    "max": h.max if h.count else "",
                }
            )
        return out


def _fmt(value: float) -> str:
    """Compact float formatting for the text exposition."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
