"""Live contention monitoring: streaming counts vs the exact Φ_t law.

The paper's Definition 1 gives, for every cell ``j`` and step ``t``,
the exact probability ``Φ_t(j)`` that one query probes it.  Under the
paper's uniform replica routing each of ``Q`` completed queries probes
cell ``(t, j)`` independently with probability ``Φ_t(j)``, so the live
count is **exactly** ``Binomial(Q, Φ_t(j))`` — the same fact E19
validates offline.  :class:`ContentionMonitor` turns it into an online
alarm: every check standardizes the streaming per-cell counts,

    z(t, j) = (count(t, j) − Q·Φ_t(j)) / sqrt(Q·Φ_t(j)·(1 − Φ_t(j))),

and flags cells whose one-sided excess clears the threshold.

Because a table has thousands of cells, a naive per-cell 3σ rule would
false-alarm constantly (P[z > 3] ≈ 1.3·10⁻³ per cell per check).  The
monitor therefore tests against the **max-of-Gaussians corrected**
threshold

    z > σ_threshold + sqrt(2·ln m),

where ``m`` is the number of cells actually tested that check (those
with expected count ≥ ``min_expected``, where the normal approximation
holds).  ``sqrt(2 ln m)`` is the asymptotic location of the maximum of
``m`` standard normals, so the configured ``σ_threshold`` keeps its
meaning — "σ's above the *expected extreme*" — and uniform traffic
stays alarm-free (E20 measures zero false alarms over 100+ batches)
while an injected hot key blows past the corrected bar within a few
batches.

:class:`ReplicaBalanceMonitor` applies the same discipline one level
up: per-replica probe loads under balanced routing concentrate around
``total / R``, so a stuck or skewed router (all traffic pinned to one
replica) shows up as an extreme standardized share — the
Attiya–Oshman–Schiller-style "watch the access counts" signal, applied
to replicas instead of cells.

Alarms are **typed, inert values** (frozen dataclasses), not
exceptions: monitoring must never alter control flow of the system it
watches.  The serving stack raises them through
:class:`~repro.telemetry.hub.TelemetryHub`, which checks every
``check_every`` batches and accumulates ``hub.alarms``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import TelemetryError


@dataclasses.dataclass(frozen=True)
class HotCellAlarm:
    """One cell's probe count is inconsistent with Binomial(Q, Φ_t(j))."""

    step: int
    cell: int
    observed: int
    expected: float
    sigma: float
    z: float
    threshold: float
    queries: int
    check: int
    kind: str = "hot-cell"

    def row(self) -> dict:
        """Flat dict for tables and snapshots."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class RouterSkewAlarm:
    """One replica's probe share is inconsistent with balanced routing."""

    replica: int
    observed: int
    expected: float
    sigma: float
    z: float
    threshold: float
    total: int
    check: int
    kind: str = "router-skew"

    def row(self) -> dict:
        """Flat dict for tables and snapshots."""
        return dataclasses.asdict(self)


class ContentionMonitor:
    """Streams per-cell counts against an exact Φ_t prediction.

    Parameters
    ----------
    phi:
        The exact contention matrix, shape ``(steps, cells)`` — e.g.
        ``exact_contention(dictionary, dist).phi`` for the structure
        and query distribution actually being served.
    sigma_threshold:
        σ's above the expected extreme of the tested cells at which a
        cell alarms (the "3σ threshold" of E20).
    min_expected:
        Cells are only tested once their expected count ``Q·Φ_t(j)``
        reaches this value (normal-approximation validity; early in a
        run nothing is tested, so a monitor never alarms on noise from
        tiny samples).
    """

    def __init__(
        self,
        phi: np.ndarray,
        sigma_threshold: float = 3.0,
        min_expected: float = 10.0,
    ):
        phi = np.asarray(phi, dtype=np.float64)
        if phi.ndim != 2:
            raise TelemetryError(
                f"phi must be a (steps, cells) matrix, got shape {phi.shape}"
            )
        if bool(np.any(phi < 0.0)) or bool(np.any(phi > 1.0)):
            raise TelemetryError("phi entries must be probabilities")
        if not float(sigma_threshold) > 0.0:
            raise TelemetryError("sigma_threshold must be > 0")
        if not float(min_expected) > 0.0:
            raise TelemetryError("min_expected must be > 0")
        self.phi = phi
        self.sigma_threshold = float(sigma_threshold)
        self.min_expected = float(min_expected)
        self.checks = 0
        self.cells_tested = 0
        self.alarms: list[HotCellAlarm] = []
        self.first_alarm_check: int | None = None

    def effective_threshold(self, tested: int) -> float:
        """``σ_threshold + sqrt(2 ln m)`` for ``m`` tested cells."""
        if tested <= 1:
            return self.sigma_threshold
        return self.sigma_threshold + math.sqrt(2.0 * math.log(tested))

    def observe(self, counts: np.ndarray, queries: int) -> list[HotCellAlarm]:
        """Check cumulative ``counts`` after ``queries`` completed queries.

        ``counts`` is the live per-step per-cell matrix (e.g.
        ``ProbeCounter.counts_per_step()``); fewer measured steps than
        ``phi`` has is fine (missing steps count as zero).  Returns the
        new alarms, which are also appended to :attr:`alarms`.
        """
        counts = np.asarray(counts)
        queries = int(queries)
        if queries < 0:
            raise TelemetryError("queries must be >= 0")
        if counts.ndim != 2 or counts.shape[1] != self.phi.shape[1]:
            raise TelemetryError(
                f"counts must have shape (steps, {self.phi.shape[1]}), "
                f"got {counts.shape}"
            )
        self.checks += 1
        if queries == 0:
            return []
        steps = self.phi.shape[0]
        measured = np.zeros_like(self.phi)
        overlap = min(steps, counts.shape[0])
        measured[:overlap] = counts[:overlap]
        expected = queries * self.phi
        testable = expected >= self.min_expected
        tested = int(np.count_nonzero(testable))
        self.cells_tested = tested
        if tested == 0:
            return []
        threshold = self.effective_threshold(tested)
        sigma = np.sqrt(expected * (1.0 - self.phi))
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(testable, (measured - expected) / sigma, 0.0)
        hot = np.argwhere(z > threshold)
        new: list[HotCellAlarm] = []
        for t, j in hot:
            new.append(
                HotCellAlarm(
                    step=int(t),
                    cell=int(j),
                    observed=int(measured[t, j]),
                    expected=float(expected[t, j]),
                    sigma=float(sigma[t, j]),
                    z=float(z[t, j]),
                    threshold=float(threshold),
                    queries=queries,
                    check=self.checks,
                )
            )
        if new and self.first_alarm_check is None:
            self.first_alarm_check = self.checks
        self.alarms.extend(new)
        return new

    def reset(self) -> None:
        """Forget all checks and alarms (the prediction is kept)."""
        self.checks = 0
        self.cells_tested = 0
        self.alarms = []
        self.first_alarm_check = None


class ReplicaBalanceMonitor:
    """Flags replicas whose probe share betrays a stuck/skewed router.

    The null hypothesis is balanced dispatch: each of ``total`` probes
    lands on any of the ``R`` replicas with probability ``1/R`` (the
    paper's uniform routing; round-robin and least-loaded concentrate
    even tighter, so they never alarm under the same test).  The same
    max-of-Gaussians correction as :class:`ContentionMonitor` is
    applied over the ``R`` replicas, and ``cluster`` inflates the
    per-probe variance for routers that assign whole batches at a time
    (probes arrive in clusters of roughly ``cluster`` per decision).
    """

    def __init__(
        self,
        replicas: int,
        sigma_threshold: float = 3.0,
        min_total: int = 256,
        cluster: float = 1.0,
    ):
        if int(replicas) < 2:
            raise TelemetryError("balance monitoring needs >= 2 replicas")
        if not float(sigma_threshold) > 0.0:
            raise TelemetryError("sigma_threshold must be > 0")
        if not float(cluster) >= 1.0:
            raise TelemetryError("cluster must be >= 1")
        self.replicas = int(replicas)
        self.sigma_threshold = float(sigma_threshold)
        self.min_total = int(min_total)
        self.cluster = float(cluster)
        self.checks = 0
        self.alarms: list[RouterSkewAlarm] = []
        self.first_alarm_check: int | None = None

    def effective_threshold(self) -> float:
        """``σ_threshold + sqrt(2 ln R)`` over the replica set."""
        return self.sigma_threshold + math.sqrt(
            2.0 * math.log(self.replicas)
        )

    def observe(self, loads: np.ndarray) -> list[RouterSkewAlarm]:
        """Check cumulative per-replica probe ``loads`` (length R)."""
        loads = np.asarray(loads, dtype=np.int64)
        if loads.shape != (self.replicas,):
            raise TelemetryError(
                f"loads must have shape ({self.replicas},), got {loads.shape}"
            )
        self.checks += 1
        total = int(loads.sum())
        if total < self.min_total:
            return []
        p = 1.0 / self.replicas
        expected = total * p
        sigma = math.sqrt(total * p * (1.0 - p) * self.cluster)
        threshold = self.effective_threshold()
        z = (loads - expected) / sigma
        new: list[RouterSkewAlarm] = []
        for r in np.argwhere(z > threshold).ravel():
            new.append(
                RouterSkewAlarm(
                    replica=int(r),
                    observed=int(loads[r]),
                    expected=float(expected),
                    sigma=float(sigma),
                    z=float(z[r]),
                    threshold=float(threshold),
                    total=total,
                    check=self.checks,
                )
            )
        if new and self.first_alarm_check is None:
            self.first_alarm_check = self.checks
        self.alarms.extend(new)
        return new

    def reset(self) -> None:
        """Forget all checks and alarms."""
        self.checks = 0
        self.alarms = []
        self.first_alarm_check = None
