"""Trace spans: request → admission → batcher → router → replica → probe.

A :class:`Span` is one timed operation with a parent pointer; a
:class:`Tracer` allocates deterministic sequential span ids and owns
the span list.  Like everything in the serving stack the tracer is
**clockless**: every ``start``/``finish`` takes ``now`` explicitly, so
the same tracer records virtual-time loadgen runs (byte-reproducible)
and wall-clock asyncio serving without knowing which it is in.

Two export formats:

- :meth:`Tracer.to_json` — a versioned, self-describing payload
  (round-tripped through :func:`repro.io.results.save_snapshot` /
  ``load_snapshot``);
- :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` format
  (complete ``"X"`` events, microsecond timestamps), loadable in
  ``chrome://tracing`` / Perfetto.  Span ids and parent ids ride along
  in ``args`` so the request → probe chain survives the export.

The span vocabulary used by the instrumented service
(:class:`~repro.telemetry.hub.TelemetryHub`):

====================  ========================================================
``request``           root; one per admitted request (arrival → completion)
``admission``         instant child of ``request`` (the admit decision)
``batch``             child of its oldest request's span (opened → dispatch)
``route``             instant child of ``batch`` (the routing pick)
``replica``           child of ``batch`` (dispatch start → finish, per group)
``table-probe``       instant child of ``replica`` (probes charged, per step)
====================  ========================================================
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.errors import TelemetryError

#: Bumped when the JSON span payload changes shape.
TRACE_VERSION = 1


@dataclasses.dataclass
class Span:
    """One timed (or instant) operation in a trace tree."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    category: str = "serve"
    track: int = 0
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """Whether :meth:`Tracer.finish` has run for this span."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """``end - start`` (0.0 for instants, NaN while open)."""
        if self.end is None:
            return float("nan")
        return self.end - self.start

    def as_dict(self) -> dict:
        """Plain-dict form for the JSON export."""
        return dataclasses.asdict(self)


class Tracer:
    """Allocates spans with deterministic ids and exports them.

    ``max_spans`` bounds memory on long-running servers: past the cap,
    new spans are counted in ``dropped`` and not retained (their ids
    keep advancing so parent links in retained spans stay unambiguous).
    """

    def __init__(self, max_spans: int = 1 << 20):
        if int(max_spans) < 1:
            raise TelemetryError("max_spans must be positive")
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording ---------------------------------------------------------------

    def start(
        self,
        name: str,
        now: float,
        parent: "Span | int | None" = None,
        category: str = "serve",
        track: int = 0,
        **attrs: Any,
    ) -> Span:
        """Open a span at time ``now``; ``parent`` is a span or span id."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent_id,
            start=float(now),
            category=category,
            track=int(track),
            attrs=dict(attrs),
        )
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def finish(self, span: Span, now: float) -> Span:
        """Close ``span`` at time ``now`` (monotonicity enforced)."""
        if span.end is not None:
            raise TelemetryError(f"span {span.span_id} already finished")
        if float(now) < span.start:
            raise TelemetryError(
                f"span {span.span_id} cannot end at {now} before its "
                f"start {span.start}"
            )
        span.end = float(now)
        return span

    def instant(
        self,
        name: str,
        now: float,
        parent: "Span | int | None" = None,
        category: str = "serve",
        track: int = 0,
        **attrs: Any,
    ) -> Span:
        """A zero-duration span (an event that *happened at* ``now``)."""
        span = self.start(
            name, now, parent=parent, category=category, track=track, **attrs
        )
        span.end = span.start
        return span

    # -- export ------------------------------------------------------------------

    def to_json(self) -> dict:
        """Versioned payload: every finished span as a plain dict.

        Open spans are exported too (``end: null``) so a crash dump is
        still inspectable.
        """
        return {
            "version": TRACE_VERSION,
            "kind": "repro-trace",
            "dropped": self.dropped,
            "spans": [s.as_dict() for s in self.spans],
        }

    def to_chrome(self, time_scale: float = 1e6) -> dict:
        """Chrome ``trace_event`` JSON (object form with ``traceEvents``).

        Times are multiplied by ``time_scale`` into microseconds — the
        default treats span times as seconds (both the wall clock and
        the loadgen's virtual time units).  Durations render as ``"X"``
        complete events; zero-duration spans as ``"i"`` instants.  Open
        spans are dropped (Chrome cannot render them).
        """
        events = []
        for s in self.spans:
            if s.end is None:
                continue
            args = {"span_id": s.span_id, "parent_id": s.parent_id}
            args.update(s.attrs)
            common = {
                "name": s.name,
                "cat": s.category,
                "pid": 0,
                "tid": s.track,
                "ts": s.start * time_scale,
                "args": args,
            }
            if s.end > s.start:
                events.append(
                    {**common, "ph": "X", "dur": (s.end - s.start) * time_scale}
                )
            else:
                events.append({**common, "ph": "i", "s": "t"})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path, fmt: str = "chrome") -> pathlib.Path:
        """Write the trace as ``"chrome"`` or ``"json"`` to ``path``."""
        if fmt == "chrome":
            payload = self.to_chrome()
        elif fmt == "json":
            payload = self.to_json()
        else:
            raise TelemetryError(
                f"unknown trace format {fmt!r}; options: chrome, json"
            )
        path = pathlib.Path(path)
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        return path

    # -- introspection -----------------------------------------------------------

    def children_of(self, span: "Span | int") -> list[Span]:
        """Retained spans whose parent is ``span`` (tree traversal)."""
        pid = span.span_id if isinstance(span, Span) else int(span)
        return [s for s in self.spans if s.parent_id == pid]

    def roots(self) -> list[Span]:
        """Retained spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self.spans)}, dropped={self.dropped})"
        )
