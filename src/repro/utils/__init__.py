"""Low-level utilities: primes, bit codecs, RNG discipline, validation."""

from repro.utils.primes import is_prime, next_prime, prev_prime
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_integer,
    check_positive_integer,
    check_probability,
    check_probability_vector,
)

__all__ = [
    "is_prime",
    "next_prime",
    "prev_prime",
    "as_generator",
    "spawn_generators",
    "check_integer",
    "check_positive_integer",
    "check_probability",
    "check_probability_vector",
]
