"""Bit-level codecs used by the low-contention dictionary.

Section 2.2 of the paper stores, for each *group* of ``s/m`` buckets, a
*group-histogram*: "a binary string where the load of each bucket in the
group is represented consecutively in unary code separated by zeros".
The histogram for a group with bucket loads ``(l_0, ..., l_{G-1})`` is the
bit string ``1^{l_0} 0 1^{l_1} 0 ... 1^{l_{G-1}} 0`` packed into
``rho = ceil(bits / b)`` b-bit words.  The query algorithm reads one random
replica of each of the ``rho`` words and decodes all bucket loads of the
group, from which it derives the squared-load prefix sums that address the
bucket's owned cell range (Section 2.3).

Bits are packed little-endian: stream bit ``k`` is bit ``k % word_bits`` of
word ``k // word_bits``.  Unused high bits of the last word are zero.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError

#: Default cell width in bits (see DESIGN.md conventions).
WORD_BITS = 64


def unary_histogram_bit_length(loads: Sequence[int]) -> int:
    """Number of bits of the unary, zero-separated encoding of ``loads``."""
    return int(sum(loads)) + len(loads)


def encode_unary_histogram(
    loads: Sequence[int], word_bits: int = WORD_BITS
) -> list[int]:
    """Encode bucket ``loads`` as unary-with-separators, packed into words.

    Returns the list of ``ceil(bits/word_bits)`` words (Python ints, each
    ``< 2**word_bits``).  An empty ``loads`` encodes to zero words.
    """
    if word_bits < 1:
        raise ParameterError("word_bits must be positive")
    if any(l < 0 for l in loads):
        raise ParameterError("loads must be non-negative")
    nbits = unary_histogram_bit_length(loads)
    if not loads:
        return []
    # Build the whole bit string as one big Python int, then slice words.
    # Bit positions: for each load l, emit l ones then one zero.
    big = 0
    pos = 0
    for l in loads:
        if l:
            big |= ((1 << l) - 1) << pos
        pos += l + 1
    mask = (1 << word_bits) - 1
    nwords = (nbits + word_bits - 1) // word_bits
    return [(big >> (i * word_bits)) & mask for i in range(nwords)]


def decode_unary_histogram(
    words: Sequence[int], num_buckets: int, word_bits: int = WORD_BITS
) -> list[int]:
    """Decode ``num_buckets`` loads from packed unary-histogram ``words``.

    Inverse of :func:`encode_unary_histogram`.  Raises
    :class:`ParameterError` if the words do not contain ``num_buckets``
    zero separators.
    """
    if word_bits < 1:
        raise ParameterError("word_bits must be positive")
    if num_buckets == 0:
        return []
    big = 0
    for i, w in enumerate(words):
        if not 0 <= w < (1 << word_bits):
            raise ParameterError(f"word {i} out of range for {word_bits}-bit cells")
        big |= int(w) << (i * word_bits)
    total_bits = len(words) * word_bits
    loads: list[int] = []
    run = 0
    pos = 0
    while len(loads) < num_buckets:
        if pos >= total_bits:
            raise ParameterError(
                f"histogram truncated: decoded {len(loads)} of {num_buckets} buckets"
            )
        if (big >> pos) & 1:
            run += 1
        else:
            loads.append(run)
            run = 0
        pos += 1
    return loads


def decode_unary_histogram_batch(
    words: np.ndarray, num_buckets: int, word_bits: int = WORD_BITS
) -> np.ndarray:
    """Decode a batch of packed unary histograms at once.

    ``words`` has shape ``(batch, rho)`` (uint64); the return value has
    shape ``(batch, num_buckets)`` (int64 loads).  Semantically identical
    to calling :func:`decode_unary_histogram` on each row, including the
    :class:`ParameterError` when any row lacks ``num_buckets`` separators.
    """
    if word_bits < 1:
        raise ParameterError("word_bits must be positive")
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ParameterError(f"words must be 2-D (batch, rho), got {words.ndim}-D")
    batch = words.shape[0]
    if num_buckets == 0:
        return np.zeros((batch, 0), dtype=np.int64)
    # Expand to the little-endian bit stream: bit k of the stream is bit
    # (k % word_bits) of word (k // word_bits).  Byte-aligned word sizes
    # take the fast unpackbits path (the hot loop of batched queries).
    if word_bits % 8 == 0 and word_bits <= 64:
        nbytes = word_bits // 8
        raw = np.ascontiguousarray(words.astype("<u8")).view(np.uint8)
        raw = raw.reshape(batch, words.shape[1], 8)[:, :, :nbytes]
        bits = np.unpackbits(
            np.ascontiguousarray(raw).reshape(batch, -1),
            axis=1,
            bitorder="little",
        )
        zeros = bits == 0
    else:
        shifts = np.arange(word_bits, dtype=np.uint64)
        bits = (
            (words[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
        ).reshape(batch, -1)
        zeros = bits == 0
    counts = zeros.sum(axis=1)
    if int(counts.min(initial=num_buckets)) < num_buckets:
        bad = int(np.argmax(counts < num_buckets))
        raise ParameterError(
            f"histogram truncated: row {bad} decoded "
            f"{int(counts[bad])} of {num_buckets} buckets"
        )
    # Positions of the first num_buckets zero separators in each row.
    _, cols = np.nonzero(zeros)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    take = offsets[:, None] + np.arange(num_buckets)
    positions = cols[take]
    loads = np.empty((batch, num_buckets), dtype=np.int64)
    loads[:, 0] = positions[:, 0]
    if num_buckets > 1:
        loads[:, 1:] = np.diff(positions, axis=1) - 1
    return loads


def pack_pair(a: int, b: int, half_bits: int = 31) -> int:
    """Pack two non-negative ints, each ``< 2**half_bits``, into one word.

    Used to store the two parameters of a bucket's perfect hash function
    in a single table cell (the paper stores "the perfect hash function
    h*_i ... repeatedly in the space owned by the bucket"; with primes
    below 2**31 both coefficients fit one 64-bit cell).
    """
    limit = 1 << half_bits
    if not (0 <= a < limit and 0 <= b < limit):
        raise ParameterError(
            f"pack_pair operands must be in [0, 2**{half_bits}): got {a}, {b}"
        )
    return (a << half_bits) | b


def unpack_pair(word: int, half_bits: int = 31) -> tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    if word < 0:
        raise ParameterError("packed word must be non-negative")
    mask = (1 << half_bits) - 1
    return (word >> half_bits) & mask, word & mask


def unpack_pair_batch(
    words: np.ndarray, half_bits: int = 31
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`unpack_pair` over a uint64 array of packed words.

    Returns ``(a, b)`` uint64 arrays of the same shape as ``words``.
    Skipped reads that surfaced :data:`~repro.cellprobe.table.EMPTY_CELL`
    unpack to garbage halves; callers must mask such entries out before
    using the result.
    """
    words = np.asarray(words, dtype=np.uint64)
    mask = np.uint64((1 << half_bits) - 1)
    return (words >> np.uint64(half_bits)) & mask, words & mask


def bit_reverse(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value`` (utility for tests)."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out
