"""Bit-level codecs used by the low-contention dictionary.

Section 2.2 of the paper stores, for each *group* of ``s/m`` buckets, a
*group-histogram*: "a binary string where the load of each bucket in the
group is represented consecutively in unary code separated by zeros".
The histogram for a group with bucket loads ``(l_0, ..., l_{G-1})`` is the
bit string ``1^{l_0} 0 1^{l_1} 0 ... 1^{l_{G-1}} 0`` packed into
``rho = ceil(bits / b)`` b-bit words.  The query algorithm reads one random
replica of each of the ``rho`` words and decodes all bucket loads of the
group, from which it derives the squared-load prefix sums that address the
bucket's owned cell range (Section 2.3).

Bits are packed little-endian: stream bit ``k`` is bit ``k % word_bits`` of
word ``k // word_bits``.  Unused high bits of the last word are zero.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError

#: Default cell width in bits (see DESIGN.md conventions).
WORD_BITS = 64


def unary_histogram_bit_length(loads: Sequence[int]) -> int:
    """Number of bits of the unary, zero-separated encoding of ``loads``."""
    return int(sum(loads)) + len(loads)


def encode_unary_histogram(
    loads: Sequence[int], word_bits: int = WORD_BITS
) -> list[int]:
    """Encode bucket ``loads`` as unary-with-separators, packed into words.

    Returns the list of ``ceil(bits/word_bits)`` words (Python ints, each
    ``< 2**word_bits``).  An empty ``loads`` encodes to zero words.
    """
    if word_bits < 1:
        raise ParameterError("word_bits must be positive")
    if any(l < 0 for l in loads):
        raise ParameterError("loads must be non-negative")
    nbits = unary_histogram_bit_length(loads)
    if not loads:
        return []
    # Build the whole bit string as one big Python int, then slice words.
    # Bit positions: for each load l, emit l ones then one zero.
    big = 0
    pos = 0
    for l in loads:
        if l:
            big |= ((1 << l) - 1) << pos
        pos += l + 1
    mask = (1 << word_bits) - 1
    nwords = (nbits + word_bits - 1) // word_bits
    return [(big >> (i * word_bits)) & mask for i in range(nwords)]


def decode_unary_histogram(
    words: Sequence[int], num_buckets: int, word_bits: int = WORD_BITS
) -> list[int]:
    """Decode ``num_buckets`` loads from packed unary-histogram ``words``.

    Inverse of :func:`encode_unary_histogram`.  Raises
    :class:`ParameterError` if the words do not contain ``num_buckets``
    zero separators.
    """
    if word_bits < 1:
        raise ParameterError("word_bits must be positive")
    if num_buckets == 0:
        return []
    big = 0
    for i, w in enumerate(words):
        if not 0 <= w < (1 << word_bits):
            raise ParameterError(f"word {i} out of range for {word_bits}-bit cells")
        big |= int(w) << (i * word_bits)
    total_bits = len(words) * word_bits
    loads: list[int] = []
    run = 0
    pos = 0
    while len(loads) < num_buckets:
        if pos >= total_bits:
            raise ParameterError(
                f"histogram truncated: decoded {len(loads)} of {num_buckets} buckets"
            )
        if (big >> pos) & 1:
            run += 1
        else:
            loads.append(run)
            run = 0
        pos += 1
    return loads


def pack_pair(a: int, b: int, half_bits: int = 31) -> int:
    """Pack two non-negative ints, each ``< 2**half_bits``, into one word.

    Used to store the two parameters of a bucket's perfect hash function
    in a single table cell (the paper stores "the perfect hash function
    h*_i ... repeatedly in the space owned by the bucket"; with primes
    below 2**31 both coefficients fit one 64-bit cell).
    """
    limit = 1 << half_bits
    if not (0 <= a < limit and 0 <= b < limit):
        raise ParameterError(
            f"pack_pair operands must be in [0, 2**{half_bits}): got {a}, {b}"
        )
    return (a << half_bits) | b


def unpack_pair(word: int, half_bits: int = 31) -> tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    if word < 0:
        raise ParameterError("packed word must be non-negative")
    mask = (1 << half_bits) - 1
    return (word >> half_bits) & mask, word & mask


def bit_reverse(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value`` (utility for tests)."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out
