"""Primality testing and prime search.

The hash families in :mod:`repro.hashing` evaluate Carter–Wegman
polynomials over a prime field GF(p).  For the vectorized uint64 Horner
evaluation to be overflow-free we need ``p < 2**31`` (products of two
residues stay below ``2**62``); :func:`next_prime` is typically called with
bounds well under that, and :data:`MAX_VECTOR_PRIME` documents the limit.

The Miller–Rabin test below is *deterministic* for all 64-bit inputs using
the standard witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
(Sorenson & Webster 2015), so no probabilistic caveats apply anywhere in
the library.
"""

from __future__ import annotations

import functools

from repro.errors import ParameterError

#: Largest prime modulus usable by the vectorized uint64 polynomial
#: evaluation without overflow (residue products must fit in 63 bits).
MAX_VECTOR_PRIME = (1 << 31) - 1

# Deterministic Miller-Rabin witnesses for n < 3.3 * 10**24 (covers uint64).
_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def _miller_rabin_witness(a: int, d: int, r: int, n: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite.

    ``n - 1 = d * 2**r`` with ``d`` odd.
    """
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


@functools.lru_cache(maxsize=65536)
def is_prime(n: int) -> bool:
    """Deterministically decide primality of ``n`` (exact for n < 2**64)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    return not any(
        _miller_rabin_witness(a % n, d, r, n) for a in _WITNESSES if a % n
    )


@functools.lru_cache(maxsize=65536)
def next_prime(n: int) -> int:
    """Return the smallest prime ``p >= n``."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def prev_prime(n: int) -> int:
    """Return the largest prime ``p <= n``; raises for ``n < 2``."""
    if n < 2:
        raise ParameterError(f"no prime <= {n}")
    if n == 2:
        return 2
    candidate = n if n % 2 else n - 1
    while candidate >= 3:
        if is_prime(candidate):
            return candidate
        candidate -= 2
    return 2


def field_prime_for_universe(universe_size: int) -> int:
    """Return a prime ``p >= universe_size`` suitable for vectorized hashing.

    Hash families evaluate polynomials over GF(p) with all keys reduced
    mod p, so ``p`` must be at least the universe size for the family to be
    genuinely d-wise independent on the whole universe.  Raises
    :class:`ParameterError` if that would exceed :data:`MAX_VECTOR_PRIME`.
    """
    if universe_size < 1:
        raise ParameterError("universe_size must be positive")
    p = next_prime(max(universe_size, 2))
    if p > MAX_VECTOR_PRIME:
        raise ParameterError(
            f"universe of size {universe_size} needs prime {p} > "
            f"MAX_VECTOR_PRIME={MAX_VECTOR_PRIME}; shrink the universe "
            "(the vectorized uint64 Horner evaluation would overflow)"
        )
    return p
