"""Seeding discipline.

Every stochastic component of the library accepts either an integer seed,
``None`` (fresh OS entropy) or an existing :class:`numpy.random.Generator`.
:func:`as_generator` normalizes all three, and :func:`spawn_generators`
derives statistically independent child streams so that, e.g., the hash
functions of a dictionary and the probe randomness of its queries never
share a stream (which would correlate construction with measurement).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else creates a fresh PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Independence comes from :class:`numpy.random.SeedSequence` spawning;
    when ``seed`` is already a Generator, children are seeded from its
    stream (still independent of each other).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in ss.spawn(n)]


def sample_distinct(
    rng: np.random.Generator, population_size: int, k: int
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``[0, population_size)``.

    Uses :meth:`Generator.choice` without replacement for small populations
    and Floyd's algorithm for huge ones (where materializing the population
    would dominate memory) — the universe U = [N] with N = n**2 is routinely
    in the millions.
    """
    if k > population_size:
        raise ValueError(f"cannot sample {k} distinct from {population_size}")
    if population_size <= 8 * max(k, 1) or population_size <= 1 << 22:
        return rng.choice(population_size, size=k, replace=False)
    # Floyd's algorithm: O(k) expected time, O(k) space.
    chosen: set[int] = set()
    for j in range(population_size - k, population_size):
        t = int(rng.integers(0, j + 1))
        chosen.add(t if t not in chosen else j)
    out = np.fromiter(chosen, dtype=np.int64, count=k)
    rng.shuffle(out)
    return out
