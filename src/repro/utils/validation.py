"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import DistributionError, ParameterError


def check_integer(name: str, value, *, minimum=None, maximum=None) -> int:
    """Validate that ``value`` is an integer within optional bounds."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ParameterError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_positive_integer(name: str, value) -> int:
    """Validate that ``value`` is a positive integer."""
    return check_integer(name, value, minimum=1)


def check_probability(name: str, value) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return value


def check_probability_vector(
    name: str, values: Sequence[float] | np.ndarray, *, total: float = 1.0,
    atol: float = 1e-9,
) -> np.ndarray:
    """Validate a non-negative vector summing to ``total`` (within atol)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DistributionError(f"{name} must be 1-dimensional")
    if arr.size == 0:
        raise DistributionError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise DistributionError(f"{name} has negative entries")
    s = float(arr.sum())
    if abs(s - total) > atol * max(1.0, arr.size):
        raise DistributionError(
            f"{name} must sum to {total}, got {s} (|diff|={abs(s - total):.3g})"
        )
    arr = np.clip(arr, 0.0, None)
    return arr * (total / arr.sum()) if arr.sum() > 0 else arr
