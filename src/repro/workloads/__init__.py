"""Stateful query workloads for the concurrent simulator.

The paper's model draws queries i.i.d. from a distribution q; real
shared-memory workloads have *temporal structure* — working sets,
phase changes, scans.  Since no production traces ship with a theory
paper, this subpackage synthesizes the standard structures (the
DESIGN.md substitution rule):

- :class:`~repro.workloads.temporal.WorkingSetWorkload` — with
  probability ``locality`` the next query repeats a recent one (LRU
  working set of size w), else a fresh draw from the base
  distribution; raises effective skew without changing the marginal
  support;
- :class:`~repro.workloads.phased.PhasedWorkload` — switches between
  base distributions every ``phase_length`` samples (e.g. uniform →
  hot-key attack → uniform);
- :class:`~repro.workloads.trace.TraceWorkload` — replays an explicit
  query trace cyclically; :func:`~repro.workloads.trace.synthesize_trace`
  builds Zipf-with-scans traces.

All of them duck-type the ``sample(rng, size)`` method the concurrent
simulator uses, so they drop into E12-style runs; they are *not*
:class:`~repro.distributions.base.QueryDistribution` instances (no
well-defined single-query pmf), so the exact contention engine
deliberately rejects them.
"""

from repro.workloads.phased import PhasedWorkload
from repro.workloads.spec import SPEC_FAMILIES, distribution_from_spec
from repro.workloads.temporal import WorkingSetWorkload
from repro.workloads.trace import TraceWorkload, synthesize_trace

__all__ = [
    "WorkingSetWorkload",
    "PhasedWorkload",
    "TraceWorkload",
    "synthesize_trace",
    "SPEC_FAMILIES",
    "distribution_from_spec",
]
