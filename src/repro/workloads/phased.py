"""Phase-switching workload."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import ParameterError
from repro.utils.validation import check_positive_integer


class PhasedWorkload:
    """Cycles through base distributions every ``phase_length`` samples.

    Models regime changes (steady uniform traffic, then a hot-key
    attack, then back); within a phase samples are i.i.d. from that
    phase's distribution.  The phase clock is global across calls.
    """

    def __init__(
        self,
        phases: Sequence[QueryDistribution],
        phase_length: int = 1000,
    ):
        if not phases:
            raise ParameterError("need at least one phase")
        sizes = {p.universe_size for p in phases}
        if len(sizes) != 1:
            raise ParameterError("phases must share a universe")
        self.phases = list(phases)
        self.phase_length = check_positive_integer("phase_length", phase_length)
        self._clock = 0

    @property
    def universe_size(self) -> int:
        return self.phases[0].universe_size

    @property
    def current_phase(self) -> int:
        return (self._clock // self.phase_length) % len(self.phases)

    def reset(self) -> None:
        """Rewind the phase clock."""
        self._clock = 0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw the next ``size`` queries, advancing the phase clock."""
        out = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            phase = self.phases[self.current_phase]
            left_in_phase = self.phase_length - (self._clock % self.phase_length)
            take = min(size - filled, left_in_phase)
            out[filled : filled + take] = phase.sample(rng, take)
            filled += take
            self._clock += take
        return out
