"""Declarative workload specs: a JSON-safe dict -> a QueryDistribution.

The adversarial search (:mod:`repro.adversary`) evolves workload
*shape* as part of its genome, so the shape must be expressible as
plain data that serializes to JSON and rebuilds the exact same
distribution on replay.  :func:`distribution_from_spec` is that bridge:
a spec dict names one of three families and its parameters, and the
builder returns a fully-validated
:class:`~repro.distributions.base.QueryDistribution`:

- ``uniform`` — the paper's Theorem 3 workload,
  :class:`~repro.distributions.UniformPositiveNegative` with
  ``positive_fraction`` of the mass on stored keys;
- ``zipf`` — a :class:`~repro.distributions.ZipfDistribution` with
  exponent ``skew`` over the stored keys, mixed with a uniform
  negative-query background at ``1 - positive_fraction`` mass;
- ``hotspot`` — ``skew`` of the mass uniformly on an explicit
  ``hot_keys`` set (the flash-crowd attack surface), the rest on the
  ``uniform`` family's background.

Every family is a pure function of the spec — no RNG is consumed at
build time — so identical specs always produce identical pmfs, which
is what makes genome replay byte-deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.distributions import (
    MixtureDistribution,
    UniformOverSet,
    UniformPositiveNegative,
    ZipfDistribution,
)
from repro.distributions.base import QueryDistribution
from repro.errors import ParameterError

#: Workload families a spec may name.
SPEC_FAMILIES = ("uniform", "zipf", "hotspot")


def _check_fraction(name: str, value) -> float:
    """Validate a [0, 1] fraction, returning it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return value


def distribution_from_spec(
    spec: dict, keys: np.ndarray, universe_size: int
) -> QueryDistribution:
    """Build the query distribution a workload spec describes.

    ``spec`` is a JSON-safe dict with keys ``family`` (one of
    :data:`SPEC_FAMILIES`), ``skew`` (Zipf exponent, or hot-set mass
    for ``hotspot``), ``positive_fraction`` (mass on stored keys), and
    ``hot_keys`` (explicit hot set, ``hotspot`` only).  ``keys`` is the
    stored key set and ``universe_size`` the query universe [N].
    Raises :class:`~repro.errors.ParameterError` on an unknown family
    or out-of-range parameter.
    """
    if not isinstance(spec, dict):
        raise ParameterError(f"workload spec must be a dict, got {type(spec)}")
    family = spec.get("family", "uniform")
    if family not in SPEC_FAMILIES:
        raise ParameterError(
            f"unknown workload family {family!r}; expected one of "
            f"{SPEC_FAMILIES}"
        )
    keys = np.asarray(keys, dtype=np.int64)
    positive = _check_fraction(
        "positive_fraction", spec.get("positive_fraction", 0.5)
    )
    skew = float(spec.get("skew", 1.0))
    if skew < 0.0:
        raise ParameterError(f"skew must be non-negative, got {skew}")

    background = UniformPositiveNegative(universe_size, keys, positive)
    if family == "uniform":
        return background

    if family == "zipf":
        head = ZipfDistribution(universe_size, keys, exponent=skew)
        negatives = UniformPositiveNegative(universe_size, keys, 0.0)
        return MixtureDistribution(
            [head, negatives], [positive, 1.0 - positive]
        )

    # hotspot: `skew` is the hot-set mass, clamped to a fraction so a
    # Zipf-range exponent still reads as "everything on the hot set".
    hot_mass = min(skew, 1.0)
    hot_keys = np.asarray(
        [int(k) % universe_size for k in spec.get("hot_keys", ())],
        dtype=np.int64,
    )
    hot_keys = np.unique(hot_keys)
    if hot_keys.size == 0 or hot_mass == 0.0:
        return background
    hot = UniformOverSet(universe_size, hot_keys)
    return MixtureDistribution([hot, background], [hot_mass, 1.0 - hot_mass])
