"""Working-set (temporal-locality) workload."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import ParameterError
from repro.utils.validation import check_probability, check_positive_integer


class WorkingSetWorkload:
    """Queries with an LRU working set.

    Each sample: with probability ``locality`` (and a non-empty working
    set) re-draw uniformly from the last ``working_set_size`` distinct
    queries; otherwise draw fresh from ``base`` and push it into the
    working set.  ``locality = 0`` recovers the base distribution; high
    locality concentrates query mass on few keys *transiently*, which
    is how real caches create hot cells that the stationary analysis
    of Definition 1 averages away.
    """

    def __init__(
        self,
        base: QueryDistribution,
        working_set_size: int = 16,
        locality: float = 0.8,
    ):
        self.base = base
        self.working_set_size = check_positive_integer(
            "working_set_size", working_set_size
        )
        self.locality = check_probability("locality", locality)
        self._window: deque[int] = deque(maxlen=self.working_set_size)

    @property
    def universe_size(self) -> int:
        return self.base.universe_size

    def reset(self) -> None:
        """Forget the working set."""
        self._window.clear()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw the next ``size`` queries, updating the working set."""
        out = np.empty(size, dtype=np.int64)
        for i in range(size):
            if self._window and rng.random() < self.locality:
                out[i] = self._window[int(rng.integers(0, len(self._window)))]
            else:
                fresh = int(self.base.sample(rng, 1)[0])
                self._window.append(fresh)
                out[i] = fresh
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkingSetWorkload(w={self.working_set_size}, "
            f"locality={self.locality}, base={type(self.base).__name__})"
        )
