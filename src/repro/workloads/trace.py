"""Trace replay and synthetic trace generation.

Stands in for the production traces a systems evaluation would use
(none exist for a theory paper — DESIGN.md substitution rule): traces
are synthesized with the three standard ingredients of key-value
workloads — a Zipf-skewed core, sequential scans, and uniform noise —
then replayed deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import as_generator


class TraceWorkload:
    """Replays a fixed query trace cyclically (deterministic)."""

    def __init__(self, trace, universe_size: int):
        self.trace = np.asarray(trace, dtype=np.int64)
        if self.trace.ndim != 1 or self.trace.size == 0:
            raise ParameterError("trace must be a non-empty 1-D sequence")
        self.universe_size = int(universe_size)
        if int(self.trace.min()) < 0 or int(self.trace.max()) >= self.universe_size:
            raise ParameterError("trace entries must lie in the universe")
        self._position = 0

    def reset(self) -> None:
        """Rewind to the start of the trace."""
        self._position = 0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Return the next ``size`` trace entries (rng unused; cyclic)."""
        idx = (self._position + np.arange(size)) % self.trace.size
        self._position = (self._position + size) % self.trace.size
        return self.trace[idx]

    def __len__(self) -> int:
        return int(self.trace.size)


def synthesize_trace(
    keys,
    universe_size: int,
    length: int,
    zipf_exponent: float = 1.0,
    scan_fraction: float = 0.1,
    noise_fraction: float = 0.1,
    seed=None,
) -> TraceWorkload:
    """Build a Zipf-core / scan / noise trace over ``keys``.

    - ``1 - scan - noise`` of positions draw from a Zipf over the keys;
    - scans are runs of 16 consecutive keys (in sorted order);
    - noise positions are uniform over the whole universe (mostly
      negative lookups).
    """
    rng = as_generator(seed)
    keys = np.asarray(sorted(int(k) for k in keys), dtype=np.int64)
    if keys.size == 0:
        raise ParameterError("keys must be non-empty")
    if length < 1:
        raise ParameterError("length must be positive")
    if scan_fraction + noise_fraction > 1.0:
        raise ParameterError("scan + noise fractions must be <= 1")
    ranks = np.arange(1, keys.size + 1, dtype=np.float64)
    zipf_p = ranks ** (-float(zipf_exponent))
    zipf_p /= zipf_p.sum()
    shuffled = keys.copy()
    rng.shuffle(shuffled)

    trace = np.empty(length, dtype=np.int64)
    i = 0
    scan_run = 0
    scan_pos = 0
    while i < length:
        u = rng.random()
        if scan_run > 0:
            trace[i] = keys[scan_pos % keys.size]
            scan_pos += 1
            scan_run -= 1
            i += 1
        elif u < scan_fraction:
            scan_run = min(16, length - i)
            scan_pos = int(rng.integers(0, keys.size))
        elif u < scan_fraction + noise_fraction:
            trace[i] = int(rng.integers(0, universe_size))
            i += 1
        else:
            trace[i] = shuffled[int(rng.choice(keys.size, p=zipf_p))]
            i += 1
    return TraceWorkload(trace, universe_size)
