"""Shared fixtures: a small paper-regime instance and built schemes.

Dictionaries are session-scoped because constructions are deterministic
given their seeds and tests only *read* them — except probe counters,
which tests must reset if they mutate (see ``fresh_counter``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LowContentionDictionary
from repro.dictionaries import (
    CuckooDictionary,
    DMDictionary,
    FKSDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
)
from repro.distributions import UniformPositiveNegative

N_KEYS = 128
UNIVERSE = N_KEYS * N_KEYS


@pytest.fixture(scope="session")
def keys() -> np.ndarray:
    rng = np.random.default_rng(1234)
    return np.sort(rng.choice(UNIVERSE, size=N_KEYS, replace=False))


@pytest.fixture(scope="session")
def universe_size() -> int:
    return UNIVERSE


@pytest.fixture(scope="session")
def negatives(keys) -> np.ndarray:
    pool = np.arange(4 * N_KEYS)
    return np.setdiff1d(pool, keys)[:N_KEYS]


@pytest.fixture(scope="session")
def uniform_dist(keys) -> UniformPositiveNegative:
    return UniformPositiveNegative(UNIVERSE, keys, 0.5)


def _build(cls, keys, seed=99, **kwargs):
    return cls(keys, UNIVERSE, rng=np.random.default_rng(seed), **kwargs)


@pytest.fixture(scope="session")
def lcd(keys) -> LowContentionDictionary:
    return _build(LowContentionDictionary, keys)


@pytest.fixture(scope="session")
def fks(keys) -> FKSDictionary:
    return _build(FKSDictionary, keys)


@pytest.fixture(scope="session")
def dm_dict(keys) -> DMDictionary:
    return _build(DMDictionary, keys)


@pytest.fixture(scope="session")
def cuckoo(keys) -> CuckooDictionary:
    return _build(CuckooDictionary, keys)


@pytest.fixture(scope="session")
def sorted_dict(keys) -> SortedArrayDictionary:
    return _build(SortedArrayDictionary, keys)


@pytest.fixture(scope="session")
def linear_probing(keys) -> LinearProbingDictionary:
    return _build(LinearProbingDictionary, keys)


@pytest.fixture(scope="session")
def all_dictionaries(lcd, fks, dm_dict, cuckoo, sorted_dict, linear_probing):
    return {
        "low-contention": lcd,
        "fks": fks,
        "dm": dm_dict,
        "cuckoo": cuckoo,
        "binary-search": sorted_dict,
        "linear-probing": linear_probing,
    }


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
