"""Update-stream genes: digest stability, operators, dynamic stage.

The PR-8 genome extension adds ``update_fraction`` /
``delete_fraction`` / ``update_hot_keys``.  The contract that keeps
every pre-existing committed fixture valid: a read-only genome
(``update_fraction == 0``) serializes, digests, and evaluates exactly
as it did before the genes existed.
"""

import numpy as np
import pytest

from repro.adversary import (
    EvalConfig,
    Genome,
    crossover,
    evaluate,
    mutate,
)
from repro.errors import ParameterError

UNIVERSE = 48 * 48
INNER_CELLS = 1024


class TestDigestStability:
    def test_read_only_genome_omits_update_genes(self):
        g = Genome()
        d = g.to_dict()
        assert "update_fraction" not in d
        assert "delete_fraction" not in d
        assert "update_hot_keys" not in d

    def test_read_only_digest_unchanged_by_gene_fields(self):
        # A genome explicitly constructed with the defaults digests the
        # same as one that never mentions the update genes.
        plain = Genome(family="zipf", skew=1.2)
        explicit = Genome(
            family="zipf", skew=1.2,
            update_fraction=0.0, delete_fraction=0.3, update_hot_keys=(),
        )
        assert plain.digest() == explicit.digest()

    def test_dynamic_genome_round_trips(self):
        g = Genome(
            update_fraction=0.4,
            delete_fraction=0.2,
            update_hot_keys=(1, 2, 3),
        )
        d = g.to_dict()
        assert d["update_fraction"] == 0.4
        assert d["update_hot_keys"] == [1, 2, 3]
        assert Genome.from_dict(d) == g
        assert Genome.from_dict(d).digest() == g.digest()

    def test_dynamic_genes_change_digest(self):
        assert Genome().digest() != Genome(update_fraction=0.4).digest()

    def test_validation(self):
        with pytest.raises(ParameterError):
            Genome(update_fraction=1.5)
        with pytest.raises(ParameterError):
            Genome(update_fraction=0.5, delete_fraction=-0.1)
        with pytest.raises(ParameterError):
            Genome(update_hot_keys=tuple(range(20)))


class TestOperators:
    def test_mutate_reaches_update_genes(self):
        g = Genome()
        found = False
        for seed in range(40):
            child = mutate(g, seed, UNIVERSE, INNER_CELLS)
            if child.update_fraction > 0.0:
                found = True
                break
        assert found, "no seed in 0..39 hit the update-gene mutation"

    def test_mutate_pure_with_update_genes(self):
        g = Genome(update_fraction=0.3, update_hot_keys=(5, 9))
        for seed in range(8):
            a = mutate(g, seed, UNIVERSE, INNER_CELLS)
            b = mutate(g, seed, UNIVERSE, INNER_CELLS)
            assert a == b
            assert a.digest() == b.digest()

    def test_mutate_keeps_update_genes_legal(self):
        g = Genome(update_fraction=0.5, update_hot_keys=(1,))
        for seed in range(30):
            g = mutate(g, seed, UNIVERSE, INNER_CELLS)
            assert 0.0 <= g.update_fraction <= 1.0
            assert 0.0 <= g.delete_fraction <= 1.0
            assert len(g.update_hot_keys) <= 8
        Genome.from_dict(g.to_dict())  # still serializable

    def test_crossover_inherits_update_genes_as_block(self):
        a = Genome(
            update_fraction=0.6, delete_fraction=0.1,
            update_hot_keys=(1, 2),
        )
        b = Genome(
            update_fraction=0.2, delete_fraction=0.9,
            update_hot_keys=(7,),
        )
        for seed in range(12):
            child = crossover(a, b, seed)
            triple = (
                child.update_fraction,
                child.delete_fraction,
                child.update_hot_keys,
            )
            assert triple in (
                (a.update_fraction, a.delete_fraction, a.update_hot_keys),
                (b.update_fraction, b.delete_fraction, b.update_hot_keys),
            )
            assert child == crossover(a, b, seed)


class TestDynamicStage:
    def test_read_only_genome_contributes_no_dyn_metrics(self):
        e = evaluate(Genome(rate=128.0), EvalConfig(requests=120), 0)
        assert not any(k.startswith("dyn_") for k in e.metrics)

    def test_dynamic_genome_runs_stage_deterministically(self):
        g = Genome(
            rate=128.0,
            update_fraction=0.5,
            delete_fraction=0.3,
            update_hot_keys=(3, 3, 17),
        )
        config = EvalConfig(requests=120)
        e1 = evaluate(g, config, 0)
        e2 = evaluate(g, config, 0)
        assert e1.digest == e2.digest
        assert e1.metrics["dyn_ran"] is True
        assert e1.metrics["dyn_wrong"] == 0
        assert e1.metrics["dyn_pinned_wrong"] == 0
        assert e1.metrics["dyn_updates_applied"] > 0
        assert e1.metrics["dyn_rebuilds"] > 0
        assert e1.metrics["dyn_epoch"] == e1.metrics["dyn_update_groups"]
        assert len(e1.metrics["dyn_counter_digest"]) == 64
        # Rebuild pressure shows up in the fitness gradient.
        base = evaluate(Genome(rate=128.0), config, 0)
        assert e1.fitness > base.fitness

    def test_hot_key_churn_draws_from_update_hot_keys(self):
        g = Genome(update_fraction=0.9, delete_fraction=0.5,
                   update_hot_keys=(11,))
        e = evaluate(g, EvalConfig(requests=120), 1)
        assert e.metrics["dyn_updates_applied"] > 0
