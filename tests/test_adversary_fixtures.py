"""Genome fixtures: round-trips, format guard, committed regressions.

Every fixture under ``tests/fixtures/genomes/`` is a frozen red-team
find; replaying it must reproduce the stored digest byte-for-byte and
keep zero wrong answers / zero quarantine violations — the same gate
the CI ``adversary`` job enforces.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.adversary import (
    EvalConfig,
    evaluate,
    fixture_paths,
    load_fixture,
    random_genome,
    replay_fixture,
    save_fixture,
)
from repro.errors import ParameterError

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures" / "genomes"

COMMITTED = fixture_paths(FIXTURE_DIR)


def test_fixtures_are_committed():
    # The PR ships at least the three evolved seeds; E23 Part D and the
    # CI job replay whatever is here.
    assert len(COMMITTED) >= 3


@pytest.mark.parametrize(
    "path", COMMITTED, ids=[pathlib.Path(p).name for p in COMMITTED]
)
def test_committed_fixture_replays_byte_identically(path):
    verdict = replay_fixture(path)
    assert verdict["digest_match"], f"{path}: digest drifted"
    assert verdict["no_wrong_answers"], f"{path}: wrong answers"
    assert verdict["no_violations"], f"{path}: quarantine violations"
    assert verdict["passed"]
    assert verdict["fitness"] == pytest.approx(verdict["stored_fitness"])


def test_save_load_round_trip(tmp_path):
    config = EvalConfig()
    genome = random_genome(5, 48 * 48, 4096)
    evaluation = evaluate(genome, config, 5)
    path = tmp_path / "fx.json"
    save_fixture(path, genome, config, 5, evaluation)
    fx = load_fixture(path)
    assert fx["genome"] == genome
    assert fx["config"] == config
    assert fx["seed"] == 5
    assert fx["replay_digest"] == evaluation.digest
    assert replay_fixture(path)["passed"] == (
        evaluation.metrics["wrong_answers"] == 0
        and evaluation.metrics["violations"] == 0
    )


def test_format_version_guard(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": 999}))
    with pytest.raises(ParameterError):
        load_fixture(path)


def test_fixture_paths_sorted_and_filtered(tmp_path):
    (tmp_path / "b.json").write_text("{}")
    (tmp_path / "a.json").write_text("{}")
    (tmp_path / "notes.txt").write_text("skip me")
    names = [pathlib.Path(p).name for p in fixture_paths(tmp_path)]
    assert names == ["a.json", "b.json"]
    assert fixture_paths(tmp_path / "missing") == []
