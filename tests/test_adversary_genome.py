"""Genome encoding, operators, and evaluation: purity and round-trips.

The determinism satellite for :mod:`repro.adversary`: mutation,
crossover, and evaluation are pure functions of ``(genome, seed)``,
genomes survive a JSON round-trip with an identical digest, and the
round-tripped genome replays to a byte-identical evaluation digest.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import (
    GENE_KINDS,
    EvalConfig,
    FaultGene,
    Genome,
    build_schedule,
    crossover,
    evaluate,
    mutate,
    random_genome,
)
from repro.adversary.genome import MAX_EVENTS
from repro.errors import ParameterError
from repro.serve.chaos import FABRIC_KINDS

UNIVERSE = 48 * 48
INNER_CELLS = 4096


class TestFaultGene:
    def test_kind_validated(self):
        with pytest.raises(ParameterError):
            FaultGene(frac=0.5, kind="meteor")

    def test_all_kinds_constructible(self):
        for kind in GENE_KINDS:
            FaultGene(frac=0.5, kind=kind)

    def test_frac_bounds(self):
        with pytest.raises(ParameterError):
            FaultGene(frac=1.5, kind="crash")
        with pytest.raises(ParameterError):
            FaultGene(frac=-0.1, kind="crash")

    def test_round_trip(self):
        gene = FaultGene(
            frac=0.25, kind="corrupt", replica=2,
            cells=(3, 5), masks=(7, 9),
        )
        assert FaultGene.from_dict(gene.to_dict()) == gene


class TestGenome:
    def test_family_validated(self):
        with pytest.raises(ParameterError):
            Genome(family="pareto")

    def test_rate_bounds(self):
        with pytest.raises(ParameterError):
            Genome(rate=0.0)

    def test_digest_stable_and_sensitive(self):
        g = random_genome(3, UNIVERSE, INNER_CELLS)
        assert g.digest() == random_genome(3, UNIVERSE, INNER_CELLS).digest()
        assert g.digest() != random_genome(4, UNIVERSE, INNER_CELLS).digest()

    def test_json_round_trip_identical_digest(self):
        for seed in range(5):
            g = random_genome(seed, UNIVERSE, INNER_CELLS)
            payload = json.dumps(g.to_dict(), sort_keys=True)
            back = Genome.from_dict(json.loads(payload))
            assert back == g
            assert back.digest() == g.digest()


class TestBuildSchedule:
    def test_damage_respects_honest_majority(self):
        # More damage genes than the (replicas-1)//2 budget: extras drop.
        events = tuple(
            FaultGene(frac=0.1 * (i + 1), kind="crash", replica=i)
            for i in range(5)
        )
        schedule = build_schedule(
            Genome(events=events), 10.0, 5, INNER_CELLS
        )
        damaged = {e.replica for e in schedule.events if e.kind == "crash"}
        assert len(damaged) <= (5 - 1) // 2

    def test_spike_gene_becomes_start_end_pair(self):
        schedule = build_schedule(
            Genome(events=(FaultGene(frac=0.2, kind="spike", span=0.3),)),
            10.0, 5, INNER_CELLS,
        )
        kinds = [e.kind for e in schedule.events]
        assert kinds == ["spike-start", "spike-end"]
        start, end = schedule.events
        assert 0.0 <= start.time < end.time <= schedule.horizon

    def test_fabric_kinds_compile(self):
        schedule = build_schedule(
            Genome(events=(
                FaultGene(frac=0.5, kind="kill-worker", worker=1),
                FaultGene(
                    frac=0.7, kind="corrupt-segment",
                    cells=(1, 2), masks=(3, 4),
                ),
            )),
            10.0, 3, INNER_CELLS,
        )
        assert [e.kind for e in schedule.events] == list(FABRIC_KINDS)


class TestOperatorPurity:
    def test_mutate_pure_in_genome_and_seed(self):
        g = random_genome(7, UNIVERSE, INNER_CELLS)
        a = mutate(g, 11, UNIVERSE, INNER_CELLS)
        b = mutate(g, 11, UNIVERSE, INNER_CELLS)
        assert a == b and a.digest() == b.digest()
        c = mutate(g, 12, UNIVERSE, INNER_CELLS)
        # Different seeds *can* collide, but not across a small sweep.
        d = [mutate(g, s, UNIVERSE, INNER_CELLS).digest() for s in range(8)]
        assert c == mutate(g, 12, UNIVERSE, INNER_CELLS)
        assert len(set(d)) > 1

    def test_crossover_pure_in_parents_and_seed(self):
        a = random_genome(1, UNIVERSE, INNER_CELLS)
        b = random_genome(2, UNIVERSE, INNER_CELLS)
        x = crossover(a, b, 5)
        y = crossover(a, b, 5)
        assert x == y and x.digest() == y.digest()

    def test_mutate_always_legal(self):
        g = random_genome(0, UNIVERSE, INNER_CELLS)
        for s in range(24):
            g = mutate(g, s, UNIVERSE, INNER_CELLS)
            assert len(g.events) <= MAX_EVENTS
        # Legal genomes always compile to a legal schedule.
        build_schedule(g, 10.0, 5, INNER_CELLS)


class TestEvaluationPurity:
    def test_same_genome_same_seed_same_digest(self):
        config = EvalConfig()
        g = random_genome(9, UNIVERSE, INNER_CELLS)
        a = evaluate(g, config, 4)
        b = evaluate(g, config, 4)
        assert a.digest == b.digest
        assert a.fitness == b.fitness
        assert a.metrics == b.metrics

    def test_round_tripped_genome_same_replay_digest(self):
        config = EvalConfig()
        g = random_genome(13, UNIVERSE, INNER_CELLS)
        back = Genome.from_dict(json.loads(json.dumps(g.to_dict())))
        assert evaluate(back, config, 2).digest == evaluate(g, config, 2).digest

    def test_seed_shifts_digest(self):
        config = EvalConfig()
        g = random_genome(9, UNIVERSE, INNER_CELLS)
        assert evaluate(g, config, 4).digest != evaluate(g, config, 5).digest
