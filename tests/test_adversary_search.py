"""The selection loop and the shrinker: determinism and the E23 gate.

Small-budget searches (the unit-test scale) must still be pure
functions of ``(config, seed)``, beat the hand-tuned baseline, and
hold the correctness line: zero wrong answers, zero quarantine
violations on the best genome's verification replay.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    EvalConfig,
    baseline_genome,
    evaluate,
    minimize,
    search,
)
from repro.errors import ParameterError

CONFIG = EvalConfig()


@pytest.fixture(scope="module")
def result():
    return search(CONFIG, seed=0, generations=2, population=4, elites=1)


class TestBaselineGenome:
    def test_deterministic(self):
        a = baseline_genome(CONFIG, 3)
        b = baseline_genome(CONFIG, 3)
        assert a == b and a.digest() == b.digest()

    def test_encodes_hand_tuned_schedule(self):
        base = baseline_genome(CONFIG, 0)
        kinds = {g.kind for g in base.events}
        assert "crash" in kinds and "spike" in kinds
        evaluation = evaluate(base, CONFIG, 0)
        # The baseline must not itself break correctness.
        assert evaluation.metrics["wrong_answers"] == 0
        assert evaluation.metrics["violations"] == 0


class TestSearch:
    def test_pure_in_config_and_seed(self, result):
        again = search(CONFIG, seed=0, generations=2, population=4, elites=1)
        assert again.best_genome.digest() == result.best_genome.digest()
        assert again.best.digest == result.best.digest
        assert again.history == result.history

    def test_beats_baseline(self, result):
        assert result.beat_baseline
        assert result.best.fitness > result.baseline.fitness

    def test_best_genome_keeps_correctness(self, result):
        assert result.best.metrics["wrong_answers"] == 0
        assert result.best.metrics["violations"] == 0

    def test_history_shape(self, result):
        assert [h["generation"] for h in result.history] == [0, 1]
        assert all(
            h["best_fitness"] >= h["mean_fitness"] - 1e-9
            for h in result.history
        )
        # Elitism: the best never gets worse across generations.
        bests = [h["best_fitness"] for h in result.history]
        assert bests == sorted(bests)

    def test_memoization_counts_distinct_genomes(self, result):
        assert 0 < result.evaluations <= 2 * 4

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            search(CONFIG, 0, generations=0)
        with pytest.raises(ParameterError):
            search(CONFIG, 0, population=4, elites=4)


class TestMinimize:
    def test_keeps_most_fitness_and_is_deterministic(self, result):
        a_genome, a_eval = minimize(result.best_genome, CONFIG, 0)
        b_genome, b_eval = minimize(result.best_genome, CONFIG, 0)
        assert a_genome == b_genome and a_eval.digest == b_eval.digest
        assert len(a_genome.events) <= len(result.best_genome.events)
        assert a_eval.fitness >= 0.8 * result.best.fitness

    def test_zero_fitness_genome_unchanged(self):
        from repro.adversary import Genome

        quiet = Genome()
        genome, evaluation = minimize(quiet, CONFIG, 0)
        assert genome == quiet
