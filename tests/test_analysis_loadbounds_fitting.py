"""Lemma 9/10 empirical checkers and growth-law fitting."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    GROWTH_LAWS,
    best_growth_law,
    fit_growth_law,
)
from repro.analysis.loadbounds import (
    lemma9_condition_rates,
    lemma10_negative_loads_ok,
)
from repro.core.params import SchemeParameters
from repro.errors import ParameterError
from repro.utils.primes import field_prime_for_universe


class TestLemma9Rates:
    def test_rates_structure(self, keys, universe_size):
        params = SchemeParameters(n=keys.size)
        prime = field_prime_for_universe(universe_size)
        rates = lemma9_condition_rates(keys, params, prime, 40, 0)
        assert rates.trials == 40
        for r in (
            rates.g_load_rate,
            rates.group_load_rate,
            rates.fks_rate,
            rates.joint_rate,
        ):
            assert 0.0 <= r <= 1.0
        assert rates.joint_rate <= min(
            rates.g_load_rate, rates.group_load_rate, rates.fks_rate
        )

    def test_joint_rate_at_least_half(self, keys, universe_size):
        """The paper's 1/2 - o(1): at this size it should be well above."""
        params = SchemeParameters(n=keys.size)
        prime = field_prime_for_universe(universe_size)
        rates = lemma9_condition_rates(keys, params, prime, 60, 1)
        assert rates.joint_rate >= 0.5


class TestLemma10:
    def test_dictionary_levels_pass(self, lcd, keys, universe_size):
        con = lcd.construction
        ok, worst = lemma10_negative_loads_ok(
            con.h.g, keys, universe_size, lcd.params.r
        )
        assert ok and worst <= 2.0

    def test_detects_skewed_function(self, keys, universe_size):
        class Skewed:
            def eval_batch(self, xs):
                # Everything to bucket 0: maximally non-uniform.
                return np.zeros(np.asarray(xs).shape, dtype=np.int64)

        ok, worst = lemma10_negative_loads_ok(
            Skewed(), keys, universe_size, 16
        )
        assert not ok and worst > 2.0


class TestFitting:
    def test_recovers_planted_law(self):
        n = np.array([64, 128, 256, 512, 1024, 4096], dtype=float)
        for law in ("const", "sqrt(n)", "log(n)", "1/n"):
            y = 3.7 * GROWTH_LAWS[law](n)
            fit = fit_growth_law(n, y, law)
            assert fit.scale == pytest.approx(3.7)
            assert fit.mean_relative_error < 1e-12
            best, _ = best_growth_law(n, y)
            assert best.law == law

    def test_noisy_recovery(self, rng):
        n = np.array([64, 256, 1024, 4096, 16384], dtype=float)
        y = 2.0 * np.sqrt(n) * rng.uniform(0.95, 1.05, size=n.size)
        best, fits = best_growth_law(n, y, ["const", "sqrt(n)", "n", "log(n)"])
        assert best.law == "sqrt(n)"
        assert fits == sorted(fits, key=lambda f: f.mean_relative_error)

    def test_predict(self):
        n = np.array([10.0, 100.0])
        fit = fit_growth_law(n, 5 * n, "n")
        assert np.allclose(fit.predict(np.array([2.0])), [10.0])

    def test_validation(self):
        with pytest.raises(ParameterError):
            fit_growth_law(np.array([1.0, 2.0]), np.array([1.0, 2.0]), "nope")
        with pytest.raises(ParameterError):
            fit_growth_law(np.array([1.0]), np.array([1.0]), "n")

    def test_loglog_distinguishable_from_log_on_wide_range(self):
        """The paper's log n / log log n vs log n: separable over a wide n
        span (this is what E5's fits rely on)."""
        n = 2.0 ** np.arange(4, 60, 4)
        y = GROWTH_LAWS["log(n)/loglog(n)"](n)
        best, _ = best_growth_law(
            n, y, ["log(n)", "log(n)/loglog(n)", "sqrt(n)", "const"]
        )
        assert best.law == "log(n)/loglog(n)"
