"""Tail bounds (Theorems 6-8) as evaluable functions."""

import math

import numpy as np
import pytest

from repro.analysis.tailbounds import (
    dwise_tail_bound,
    fact22_bound,
    hoeffding_tail_bound,
    lemma9_part3_failure_bound,
)
from repro.errors import ParameterError
from repro.hashing import PolynomialFamily
from repro.utils.primes import next_prime


class TestDwiseTail:
    def test_monotone_in_t(self):
        bounds = [dwise_tail_bound(10.0, t, 4) for t in (5, 10, 20, 40)]
        assert bounds == sorted(bounds, reverse=True)

    def test_clipped_to_one(self):
        assert dwise_tail_bound(10.0, 0.1, 4) == 1.0

    def test_requires_d_leq_2E(self):
        with pytest.raises(ParameterError):
            dwise_tail_bound(1.0, 5.0, 4)

    def test_dominates_empirical_polynomial_loads(self, rng):
        """Empirical load-deviation frequency <= the (constant-free) bound
        scaled by a modest constant — a sanity check, not a proof."""
        prime = next_prime(1 << 16)
        m, n, d = 32, 512, 4
        fam = PolynomialFamily(prime, m, d)
        keys = np.arange(n)
        expectation = n / m  # 16
        t = 2.0 * expectation
        exceed = 0
        trials = 300
        for _ in range(trials):
            h = fam.sample(rng)
            if int(h.loads(keys)[0]) - expectation > t:
                exceed += 1
        bound = dwise_tail_bound(expectation, t, d)
        assert exceed / trials <= 10 * bound + 0.02


class TestHoeffding:
    def test_decreasing_in_c(self):
        bounds = [hoeffding_tail_bound(10.0, c, 1.0) for c in (3, 4, 8)]
        assert bounds == sorted(bounds, reverse=True)

    def test_requires_c_above_e(self):
        with pytest.raises(ParameterError):
            hoeffding_tail_bound(1.0, math.e, 1.0)

    def test_paper_parameterization_is_small(self):
        """With c = 2e and E[Y] = alpha ln n / d the bound is o(1/n)."""
        n, d, alpha, c = 4096, 3, 1.25, 2 * math.e
        expectation = alpha * math.log(n)  # n/m with m = n/(alpha ln n)
        bound = hoeffding_tail_bound(expectation, c, d)
        assert bound < 1.0 / n


class TestFact22:
    def test_formula(self):
        assert fact22_bound(10, 100, 3) == pytest.approx(10 * (0.2) ** 3)

    def test_clipping(self):
        assert fact22_bound(100, 10, 3) == 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            fact22_bound(0, 10, 3)


class TestLemma9Part3:
    def test_beta2_gives_half(self):
        assert lemma9_part3_failure_bound(100, 2.0) == pytest.approx(0.5)

    def test_decreasing_in_beta(self):
        assert lemma9_part3_failure_bound(100, 4.0) < lemma9_part3_failure_bound(
            100, 2.0
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            lemma9_part3_failure_bound(100, 1.0)
