"""API quality gates: docstrings, exports, and error hygiene.

These tests keep the library honest as it grows: every public module,
class, and function must carry a docstring; every ``__all__`` entry
must resolve; and library errors must derive from :class:`ReproError`.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                # An override of a documented base-class method inherits
                # its contract (and, via inspect.getdoc, its docstring).
                documented = any(
                    getattr(base, meth_name, None) is not None
                    and (inspect.getdoc(getattr(base, meth_name)) or "").strip()
                    for base in obj.__mro__
                )
                if not documented:
                    undocumented.append(
                        f"{module.__name__}.{name}.{meth_name}"
                    )
    assert not undocumented, f"missing docstrings: {undocumented}"


@pytest.mark.parametrize(
    "module",
    [m for m in ALL_MODULES if hasattr(m, "__all__")],
    ids=lambda m: m.__name__,
)
def test_all_exports_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.__all__: {name}"


def test_error_hierarchy():
    from repro import errors

    for name, obj in vars(errors).items():
        if inspect.isclass(obj) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
