"""The autotune control plane: purity, safety, and identity properties.

The PR-9 satellite suite: policy validation, the pure decision engine
(identical telemetry streams + seed => identical decision traces),
executor actions (split / join / scheme-switch / capacity) with their
probe-accounting and precondition guarantees, capability honesty per
deployment, and the zero-overhead-when-off digest identity.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.autotune import (
    AutotuneController,
    AutotunePolicy,
    Decision,
    DecisionEngine,
    Observation,
    ReconfigExecutor,
    replay_trace,
    scheme_name,
    service_capabilities,
)
from repro.errors import (
    ActionUnsupportedError,
    AutotuneError,
    ReconfigError,
)
from repro.experiments.common import make_instance
from repro.serve.service import build_service
from repro.telemetry.events import BUS, ReconfigEvent
from repro.utils.rng import as_generator


@pytest.fixture(scope="module")
def instance():
    keys, N = make_instance(96, seed=3)
    return keys, N


def small_service(keys, N, **kwargs):
    defaults = dict(
        num_shards=2, replicas=2, probe_time=0.01, max_batch=4,
        max_delay=0.5, seed=9,
    )
    defaults.update(kwargs)
    return build_service(keys, N, **defaults)


def drive(service, keys, N, requests=120, seed=0, rate=24.0):
    """Open-loop drive; returns (tickets, wrong_count)."""
    rng = as_generator(seed)
    xs = rng.integers(0, N, size=requests)
    gaps = rng.exponential(1.0 / rate, size=requests)
    arrivals = np.cumsum(gaps)
    key_set = set(int(k) for k in keys)
    tickets = []
    for x, t in zip(xs, arrivals):
        service.advance(float(t))
        tickets.append((int(x), service.submit(int(x), float(t))))
    service.drain(float(arrivals[-1]) + 5.0)
    wrong = sum(
        1 for x, tk in tickets
        if tk.done and tk.answer != (x in key_set)
    )
    return tickets, wrong


class TestPolicy:
    def test_defaults_valid_and_round_trip(self):
        p = AutotunePolicy()
        back = AutotunePolicy.from_dict(p.to_dict())
        assert back == p and back.digest() == p.digest()

    @pytest.mark.parametrize("bad", [
        dict(low_load=2.0, high_load=1.0),
        dict(min_replicas=0),
        dict(min_replicas=4, max_replicas=2),
        dict(max_total_replicas=0, min_replicas=2),
        dict(cooldown=0.0),
        dict(check_every=-1.0),
        dict(shed_low=0.5, shed_high=0.1),
        dict(backlog_slack=0.0),
        dict(join_backlog=3.0, split_backlog=2.0),
        dict(min_capacity=0),
        dict(backlog_low=0.9, backlog_high=0.5),
        dict(hot_scheme="fks", cold_scheme="fks"),
    ])
    def test_validation_raises_typed_error(self, bad):
        with pytest.raises(AutotuneError):
            AutotunePolicy(**bad)

    def test_digest_sensitive_to_fields(self):
        assert (
            AutotunePolicy(cooldown=5.0).digest()
            != AutotunePolicy(cooldown=6.0).digest()
        )


def obs(now, probes, replicas, backlog=None, **kwargs):
    n = len(probes)
    defaults = dict(
        now=float(now),
        shard_probes=tuple(probes),
        shard_replicas=tuple(replicas),
        shard_schemes=tuple("low-contention" for _ in range(n)),
        shard_backlog=tuple(backlog if backlog is not None
                            else (0.0,) * n),
        admitted=100, shed=0, in_flight=0, capacity=256,
    )
    defaults.update(kwargs)
    return Observation(**defaults)


CAPS = frozenset(("capacity", "split", "join", "scheme-switch"))


class TestDecisionEngine:
    def test_identical_streams_identical_traces(self):
        policy = AutotunePolicy(cooldown=1.0, check_every=0.5)
        stream = [
            obs(t, (900, 40, 40, 20), (2, 2, 2, 2),
                backlog=(3.0, 0.0, 0.0, 0.0))
            for t in range(6)
        ]
        a = DecisionEngine(policy, CAPS, seed=4)
        b = DecisionEngine(policy, CAPS, seed=4)
        ta = [[d.to_dict() for d in a.decide(o)] for o in stream]
        tb = [[d.to_dict() for d in b.decide(o)] for o in stream]
        assert ta == tb
        assert any(ds for ds in ta)

    def test_hot_shard_splits(self):
        engine = DecisionEngine(AutotunePolicy(), CAPS)
        ds = engine.decide(obs(0.0, (970, 10, 10, 10), (2, 2, 2, 2)))
        assert [d.kind for d in ds] == ["split"]
        assert ds[0].shard == 0 and ds[0].after == 3

    def test_cold_shard_joins(self):
        engine = DecisionEngine(AutotunePolicy(), CAPS)
        ds = engine.decide(obs(0.0, (30, 30, 30, 1), (2, 2, 2, 3)))
        assert [d.kind for d in ds] == ["join"]
        assert ds[0].shard == 3 and ds[0].after == 2

    def test_backlogged_shard_splits_without_relative_heat(self):
        # Uniform saturation: equal shares, all backlogged — the
        # absolute-pressure band must still grow replication.
        engine = DecisionEngine(AutotunePolicy(split_backlog=1.0), CAPS)
        ds = engine.decide(obs(
            0.0, (25, 25, 25, 25), (2, 2, 2, 2),
            backlog=(2.0, 3.0, 2.5, 2.0),
        ))
        assert [d.kind for d in ds] == ["split"]
        assert ds[0].shard == 1  # most backlogged first

    def test_backlogged_victim_never_joins(self):
        engine = DecisionEngine(
            AutotunePolicy(join_backlog=0.25), CAPS
        )
        ds = engine.decide(obs(
            0.0, (30, 30, 30, 1), (2, 2, 2, 3),
            backlog=(0.0, 0.0, 0.0, 1.0),
        ))
        assert ds == []

    def test_budget_split_funded_by_join(self):
        engine = DecisionEngine(
            AutotunePolicy(max_total_replicas=8), CAPS
        )
        ds = engine.decide(obs(0.0, (970, 10, 10, 10), (2, 2, 2, 2)))
        assert [d.kind for d in ds] == ["join", "split"]
        assert ds[0].shard != ds[1].shard and ds[1].shard == 0

    def test_cooldown_suppresses_repeat(self):
        # Shares keep shard 0 hot and the rest inside the band, so the
        # only candidate action is the split the cooldown suppresses.
        policy = AutotunePolicy(cooldown=10.0)
        engine = DecisionEngine(policy, CAPS)
        hot = obs(0.0, (600, 140, 130, 130), (2, 2, 2, 2))
        assert engine.decide(hot)
        assert engine.decide(obs(
            1.0, (600, 140, 130, 130), (3, 2, 2, 2)
        )) == []

    def test_capacity_raises_on_shed(self):
        engine = DecisionEngine(AutotunePolicy(), frozenset(("capacity",)))
        ds = engine.decide(obs(
            0.0, (25, 25, 25, 25), (2, 2, 2, 2), admitted=90, shed=10,
        ))
        assert [d.kind for d in ds] == ["capacity"]
        assert ds[0].after > ds[0].before

    def test_decision_round_trip(self):
        d = Decision(now=1.0, kind="split", shard=2, before=2,
                     after=3, reason="hot")
        assert Decision.from_dict(d.to_dict()) == d


class TestCapabilities:
    def test_sharded_service_full_set(self, instance):
        keys, N = instance
        service = small_service(keys, N)
        assert service_capabilities(service) == CAPS

    def test_dynamic_service_admission_only(self):
        from repro.serve.dynamic_service import build_dynamic_service

        svc = build_dynamic_service(1 << 10, num_shards=1, replicas=2,
                                    seed=1)
        caps = service_capabilities(svc)
        assert caps == frozenset(("capacity", "update-capacity"))

    def test_unsupported_action_raises(self):
        from repro.serve.dynamic_service import build_dynamic_service

        svc = build_dynamic_service(1 << 10, num_shards=1, replicas=2,
                                    seed=1)
        executor = ReconfigExecutor(svc, seed=0)
        split = Decision(now=0.0, kind="split", shard=0, before=2,
                         after=3, reason="x")
        with pytest.raises(ActionUnsupportedError):
            executor.apply(split, 0.0)


class TestExecutor:
    def make(self, instance, **kwargs):
        keys, N = instance
        service = small_service(keys, N, **kwargs)
        return keys, N, service, ReconfigExecutor(service, seed=7)

    def test_split_grows_and_charges_reconfig_counter(self, instance):
        keys, N, service, executor = self.make(instance)
        query_probes_before = int(
            np.sum(service.shards[0].replica_probe_loads())
        )
        entry = executor.apply(
            Decision(now=0.0, kind="split", shard=0, before=2,
                     after=3, reason="hot"),
            0.0,
        )
        assert service.shards[0].replicas == 3
        assert len(service._busy_until[0]) == 3
        assert entry["probes"] > 0
        assert executor.reconfig_probes == entry["probes"]
        # Query-path counter untouched: the new table starts clean.
        assert int(
            np.sum(service.shards[0].replica_probe_loads())
        ) <= query_probes_before
        _, wrong = drive(service, keys, N)
        assert wrong == 0

    def test_join_shrinks_after_drain(self, instance):
        keys, N, service, executor = self.make(instance, replicas=3)
        entry = executor.apply(
            Decision(now=0.0, kind="join", shard=1, before=3,
                     after=2, reason="cold"),
            0.0,
        )
        assert service.shards[1].replicas == 2
        assert entry["probes"] == 0
        _, wrong = drive(service, keys, N)
        assert wrong == 0

    def test_join_refused_while_victim_busy(self, instance):
        keys, N, service, executor = self.make(instance, replicas=3)
        service._busy_until[0][2] = 99.0
        with pytest.raises(ReconfigError, match="drain"):
            executor.apply(
                Decision(now=0.0, kind="join", shard=0, before=3,
                         after=2, reason="cold"),
                0.0,
            )
        assert service.shards[0].replicas == 3

    def test_join_at_one_replica_refused(self, instance):
        keys, N, service, executor = self.make(instance, replicas=1)
        with pytest.raises(ReconfigError, match="one replica"):
            executor.apply(
                Decision(now=0.0, kind="join", shard=0, before=1,
                         after=0, reason="cold"),
                0.0,
            )

    def test_scheme_switch_swaps_at_epoch(self, instance):
        keys, N, service, executor = self.make(instance)
        assert scheme_name(service.shards[0]) == "low-contention"
        entry = executor.apply(
            Decision(now=0.0, kind="scheme-switch", shard=0, before=2,
                     after=2, reason="x", target="fks"),
            0.0,
        )
        assert scheme_name(service.shards[0]) == "fks"
        assert entry["epoch"] == executor.epochs.epoch
        _, wrong = drive(service, keys, N)
        assert wrong == 0

    def test_scheme_switch_to_same_scheme_refused(self, instance):
        keys, N, service, executor = self.make(instance)
        with pytest.raises(ReconfigError, match="already"):
            executor.apply(
                Decision(now=0.0, kind="scheme-switch", shard=0,
                         before=2, after=2, reason="x",
                         target="low-contention"),
                0.0,
            )

    def test_capacity_action_retargets_admission(self, instance):
        keys, N, service, executor = self.make(instance)
        executor.apply(
            Decision(now=0.0, kind="capacity", shard=-1, before=1024,
                     after=512, reason="x"),
            0.0,
        )
        assert service.admission.capacity == 512

    def test_structural_action_emits_reconfig_event(self, instance):
        keys, N, service, executor = self.make(instance)
        with BUS.capture() as events:
            executor.apply(
                Decision(now=0.0, kind="split", shard=0, before=2,
                         after=3, reason="hot"),
                0.0,
            )
        reconfigs = [e for e in events if isinstance(e, ReconfigEvent)]
        assert len(reconfigs) == 1
        assert reconfigs[0].kind == "split"
        assert reconfigs[0].after == 3

    def test_split_rebinds_health_machinery(self, instance):
        keys, N, service, executor = self.make(instance)
        service.enable_healing(seed=2)
        assert (0, 2) not in service.health.machines
        executor.apply(
            Decision(now=0.0, kind="split", shard=0, before=2,
                     after=3, reason="hot"),
            0.0,
        )
        assert service.health.machines[(0, 2)].state == "healthy"
        # The repair counter tracks the new table's geometry.
        assert (
            service.health.repair_counters[0].num_cells
            == service.shards[0].table.num_cells
        )


class TestControllerIdentity:
    def test_disabled_controller_is_byte_identical(self, instance):
        keys, N = instance
        bare = small_service(keys, N)
        drive(bare, keys, N)
        attached = small_service(keys, N)
        attached.enable_autotune(seed=3, enabled=False)
        drive(attached, keys, N)
        assert [
            s.table.counter.digest() for s in bare.shards
        ] == [
            s.table.counter.digest() for s in attached.shards
        ]
        assert attached.autotune.trace == []

    def test_enabled_controller_replays_byte_for_byte(self, instance):
        keys, N = instance
        service = small_service(keys, N)
        policy = AutotunePolicy(
            check_every=0.5, cooldown=1.0, split_backlog=0.5,
        )
        controller = service.enable_autotune(policy=policy, seed=5)
        drive(service, keys, N, requests=200, rate=64.0)
        assert controller.trace  # the controller actually observed
        result = replay_trace(controller.trace_payload())
        assert result["match"] and result["mismatches"] == []
        assert result["entries"] == len(controller.trace)

    def test_two_runs_identical_trace_digest(self, instance):
        keys, N = instance
        digests = []
        for _ in range(2):
            service = small_service(keys, N)
            controller = service.enable_autotune(
                policy=AutotunePolicy(check_every=0.5, cooldown=1.0),
                seed=5,
            )
            drive(service, keys, N, requests=160, rate=48.0)
            digests.append(controller.trace_digest())
        assert digests[0] == digests[1]

    def test_tampered_trace_fails_replay(self, instance):
        keys, N = instance
        service = small_service(keys, N)
        controller = service.enable_autotune(
            policy=AutotunePolicy(check_every=0.5, cooldown=1.0,
                                  split_backlog=0.5),
            seed=5,
        )
        drive(service, keys, N, requests=200, rate=64.0)
        payload = controller.trace_payload()
        entry = next(
            (e for e in payload["entries"] if e["decisions"]), None
        )
        if entry is None:
            pytest.skip("no decisions issued at this seed")
        entry["decisions"] = []
        assert not replay_trace(payload)["match"]

    def test_verify_toggle_shifts_no_decision(self, instance):
        keys, N = instance
        outcomes = {}
        for verify in (True, False):
            service = small_service(keys, N)
            controller = service.enable_autotune(
                policy=AutotunePolicy(
                    check_every=0.5, cooldown=1.0, split_backlog=0.5,
                    verify_clones=verify,
                ),
                seed=5,
            )
            drive(service, keys, N, requests=200, rate=64.0)
            outcomes[verify] = controller
        assert (
            outcomes[True].trace == outcomes[False].trace
        )
        assert (
            outcomes[True].executor.reconfig_probes
            >= outcomes[False].executor.reconfig_probes
        )


class TestControllerLoop:
    def test_funding_join_failure_skips_split(self, instance):
        # A refused funding join must veto its paired split: applying
        # the split anyway would bust the replica budget.
        keys, N = instance
        service = small_service(keys, N, num_shards=2, replicas=2)
        controller = AutotuneController(
            service,
            policy=AutotunePolicy(
                check_every=0.5, cooldown=1.0, max_total_replicas=4,
                high_load=1.2,
            ),
            seed=6,
        )
        # Make shard 0 look hot by probing it directly...
        rng = as_generator(1)
        for x in rng.integers(0, N, size=64):
            service.shards[0].query(int(x), rng)
        # ...while the funding victim (shard 1) hides a quarantined
        # replica the pure engine cannot see: the executor's steady
        # precondition refuses the join.
        service.enable_healing(seed=2)
        service.health.machines[(1, 1)].state = "quarantined"
        controller.tick(10.0)
        engine_kinds = [
            d["kind"] for d in controller.trace[-1]["decisions"]
        ]
        assert engine_kinds == ["join", "split"]
        skip_kinds = [s["kind"] for s in controller.skips]
        assert skip_kinds == ["join", "split"]
        assert sum(s.replicas for s in service.shards) == 4

    def test_gauges_exported_through_telemetry(self, instance):
        from repro.telemetry import TelemetryHub

        keys, N = instance
        service = small_service(keys, N)
        hub = TelemetryHub(metrics=True)
        service.attach_telemetry(hub)
        service.enable_autotune(
            policy=AutotunePolicy(check_every=0.5, cooldown=1.0,
                                  split_backlog=0.25, join_backlog=0.05),
            seed=5,
        )
        drive(service, keys, N, requests=200, rate=64.0)
        if service.autotune.applied:
            gauges = hub.metrics.snapshot()["gauges"]
            assert "autotune_replicas_total" in gauges
