"""Batched query engine: exactness against the scalar cell-probe path.

Two equivalence properties, checked for *every* scheme and several
instance sizes:

1. **Answers** — ``query_batch(xs, rng)`` returns exactly
   ``contains_batch(xs)`` (the ground truth), so batching never changes
   a membership answer.
2. **Probe accounting** — the per-step probe *totals* recorded by the
   counter match the scalar ``query`` path run over the same keys.
   Batch and scalar may consume the RNG in different orders (so the
   random column choices differ), but the number of probes charged to
   each step is a deterministic function of the instance; the contention
   estimator in :mod:`repro.contention.montecarlo` relies on this.

Plus unit coverage for the batched primitives: ``Table.read_batch``
skip semantics, the vectorized unary-histogram decoder (hypothesis
roundtrip against the scalar decoder), ``unpack_pair_batch``,
``horner_eval_batch``, and the typed :class:`VerificationError`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellprobe import EMPTY_CELL, Table
from repro.contention import empirical_contention
from repro.core import LowContentionDictionary
from repro.dictionaries import (
    CuckooDictionary,
    DMDictionary,
    FKSDictionary,
    LinearProbingDictionary,
    ReplicatedDictionary,
    SortedArrayDictionary,
)
from repro.distributions import UniformPositiveNegative
from repro.errors import ParameterError, TableError, VerificationError
from repro.hashing.polynomial import horner_eval_batch
from repro.utils.bits import (
    decode_unary_histogram,
    decode_unary_histogram_batch,
    encode_unary_histogram,
    pack_pair,
    unpack_pair_batch,
)
from repro.utils.rng import as_generator, sample_distinct

SCHEMES = [
    LowContentionDictionary,
    FKSDictionary,
    DMDictionary,
    CuckooDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
]

SIZES = [16, 64, 256]


def _instance(n: int, seed: int = 7):
    rng = as_generator(seed)
    N = n * n
    keys = np.sort(sample_distinct(rng, N, n))
    return keys, N


def _queries(keys, N, count, seed):
    """Half positives, half uniform over [N) (mostly negatives)."""
    rng = as_generator(seed)
    pos = rng.choice(keys, size=count // 2)
    neg = rng.integers(0, N, size=count - count // 2)
    return np.concatenate([pos, neg])


def _build(cls, n, seed=7):
    keys, N = _instance(n, seed)
    d = cls(keys, N, rng=as_generator(seed + 1))
    return d, keys, N


@pytest.mark.parametrize("cls", SCHEMES, ids=lambda c: c.__name__)
@pytest.mark.parametrize("n", SIZES)
class TestBatchScalarEquivalence:
    def test_answers_match_ground_truth(self, cls, n):
        d, keys, N = _build(cls, n)
        xs = _queries(keys, N, 400, seed=n)
        answers = d.query_batch(xs, as_generator(3))
        expected = d.contains_batch(xs)
        np.testing.assert_array_equal(answers, expected)

    def test_step_probe_totals_match_scalar(self, cls, n):
        d, keys, N = _build(cls, n)
        xs = _queries(keys, N, 300, seed=n + 1)
        counter = d.table.counter

        counter.reset()
        for x in xs:
            d.query(int(x), as_generator(int(x) % 17))
        scalar_totals = counter.counts_per_step().sum(axis=1)

        counter.reset()
        d.query_batch(xs, as_generator(5))
        batch_totals = counter.counts_per_step().sum(axis=1)

        assert batch_totals.shape == scalar_totals.shape
        np.testing.assert_array_equal(batch_totals, scalar_totals)

    def test_batch_probes_stay_in_plan_support(self, cls, n):
        """Every probed cell lies in some queried key's analytic plan."""
        d, keys, N = _build(cls, n)
        xs = _queries(keys, N, 200, seed=n + 2)
        counter = d.table.counter
        counter.reset()
        d.query_batch(xs, as_generator(9))
        counts = counter.counts_per_step()
        support = np.zeros_like(counts, dtype=bool)
        s = d.table.s
        for x in np.unique(xs):
            for step_index, step in enumerate(d.probe_plan(int(x))):
                flat = step.row * s + step.support()
                support[step_index, flat] = True
        assert not np.any(counts[~support])


@pytest.mark.parametrize("n", [32, 128])
def test_replicated_wrappers_equivalent(n):
    for inner_cls in (FKSDictionary, SortedArrayDictionary):
        keys, N = _instance(n)
        inner = inner_cls(keys, N, rng=as_generator(11))
        d = ReplicatedDictionary(inner, replicas=3)
        xs = _queries(keys, N, 300, seed=n)
        np.testing.assert_array_equal(
            d.query_batch(xs, as_generator(2)), d.contains_batch(xs)
        )
        counter = d.table.counter
        counter.reset()
        for x in xs:
            d.query(int(x), as_generator(int(x) % 13))
        scalar = counter.counts_per_step().sum(axis=1)
        counter.reset()
        d.query_batch(xs, as_generator(4))
        np.testing.assert_array_equal(
            counter.counts_per_step().sum(axis=1), scalar
        )


def test_empirical_contention_matches_exact_support(lcd, uniform_dist):
    """The batched estimator still verifies every answer and normalizes."""
    matrix = empirical_contention(lcd, uniform_dist, 2000, rng=as_generator(0))
    assert matrix.phi.shape[1] == lcd.table.num_cells
    # First probe of every query hits a coefficient row: mass exactly 1.
    assert matrix.step_mass()[0] == pytest.approx(1.0)


def test_empirical_contention_raises_typed_error(fks, keys, universe_size):
    """A lying dictionary triggers VerificationError with the evidence."""

    class Liar:
        def __init__(self, inner):
            self._inner = inner
            self.table = inner.table

        def query_batch(self, xs, rng):
            out = self._inner.query_batch(xs, rng)
            out[0] = ~out[0]
            return out

        def contains_batch(self, xs):
            return self._inner.contains_batch(xs)

    dist = UniformPositiveNegative(universe_size, keys, 0.5)
    with pytest.raises(VerificationError) as excinfo:
        empirical_contention(Liar(fks), dist, 64, rng=as_generator(1))
    err = excinfo.value
    assert isinstance(err, AssertionError)  # backwards-compatible catch
    assert err.answer != err.expected
    assert str(err.key) in str(err)


class TestReadBatch:
    def test_skipped_columns_charge_nothing(self):
        t = Table(2, 4)
        t.write(1, 2, 77)
        out = t.read_batch(1, np.array([2, -1, 3, -1]), step=0)
        assert out[0] == 77
        assert out[1] == EMPTY_CELL and out[3] == EMPTY_CELL
        assert t.counter.total_probes() == 2
        counts = t.counter.counts_per_step()[0]
        assert counts[t.flat_index(1, 2)] == 1
        assert counts[t.flat_index(1, 3)] == 1

    def test_rows_broadcast_and_match_scalar_read(self):
        t = Table(3, 5)
        rng = as_generator(0)
        for r in range(3):
            t.write_row(r, rng.integers(0, 1000, size=5).astype(np.uint64))
        rows = np.array([0, 1, 2, 2])
        cols = np.array([4, 0, 3, 1])
        out = t.read_batch(rows, cols, step=2)
        for i in range(4):
            assert out[i] == t.peek(int(rows[i]), int(cols[i]))

    def test_out_of_range_rejected_only_for_active(self):
        t = Table(2, 2)
        with pytest.raises(TableError):
            t.read_batch(0, np.array([0, 2]), step=0)
        # Negative column = skip, never a bounds error.
        t.read_batch(0, np.array([-5, 1]), step=0)
        assert t.counter.total_probes() == 1

    def test_all_skipped_batch_is_a_noop(self):
        t = Table(1, 1)
        out = t.read_batch(0, np.array([-1, -1]), step=0)
        assert np.all(out == EMPTY_CELL)
        assert t.counter.total_probes() == 0


class TestBatchPrimitives:
    @given(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=12),
        st.sampled_from([8, 16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_histogram_decode_batch_roundtrip(self, loads, word_bits):
        words = encode_unary_histogram(loads, word_bits)
        rho = len(words)
        batch = np.array([words, [0] * rho], dtype=np.uint64)
        # Row 1 must also decode: give it a valid all-zeros histogram iff
        # rho words can hold len(loads) separators, else reuse row 0.
        if rho * word_bits < len(loads):
            batch[1] = batch[0]
        decoded = decode_unary_histogram_batch(batch, len(loads), word_bits)
        assert decoded.shape == (2, len(loads))
        assert decoded[0].tolist() == loads
        assert decoded[0].tolist() == decode_unary_histogram(
            words, len(loads), word_bits
        )

    def test_histogram_decode_batch_truncation(self):
        words = np.array([[0xFF]], dtype=np.uint64)  # 8 ones, no separator
        with pytest.raises(ParameterError):
            decode_unary_histogram_batch(words, 2, word_bits=8)

    def test_histogram_decode_batch_empty(self):
        out = decode_unary_histogram_batch(
            np.zeros((3, 0), dtype=np.uint64), 0
        )
        assert out.shape == (3, 0)

    def test_unpack_pair_batch_matches_scalar(self):
        pairs = [(0, 0), (1, 2), (2**31 - 1, 5), (123456, 2**31 - 1)]
        words = np.array([pack_pair(a, b) for a, b in pairs], dtype=np.uint64)
        a_arr, b_arr = unpack_pair_batch(words)
        assert a_arr.tolist() == [a for a, _ in pairs]
        assert b_arr.tolist() == [b for _, b in pairs]

    @given(
        st.integers(min_value=2, max_value=2**31 - 1),
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=1,
            max_size=4,
        ),
        st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_horner_eval_batch_matches_python(self, range_size, coeffs, xs):
        # The largest prime the vectorized path permits (MAX_VECTOR_PRIME);
        # field_prime_for_universe rejects anything larger.
        prime = 2**31 - 1
        xs_arr = np.array(xs, dtype=np.int64)
        word_arrays = [
            np.full(len(xs), c, dtype=np.uint64) for c in coeffs
        ]
        got = horner_eval_batch(word_arrays, xs_arr, prime, range_size)
        for i, x in enumerate(xs):
            acc = 0
            for c in reversed(coeffs):
                acc = (acc * x + c) % prime
            assert got[i] == acc % range_size


def test_verification_error_attributes():
    err = VerificationError(42, True, False)
    assert (err.key, err.answer, err.expected) == (42, True, False)
    assert "42" in str(err)
    assert isinstance(err, AssertionError)
