"""ProbeCounter semantics: stratified counts and contention estimates."""

import numpy as np
import pytest

from repro.cellprobe import ProbeCounter
from repro.errors import ParameterError


def test_record_and_totals():
    c = ProbeCounter(4)
    c.record(0, 1)
    c.record(0, 1)
    c.record(2, 3)
    assert c.num_steps == 3
    assert c.total_counts().tolist() == [0, 2, 0, 1]
    assert c.total_probes() == 3


def test_record_batch_skips_negatives():
    c = ProbeCounter(5)
    c.record_batch(0, np.array([0, -1, 2, 2]))
    assert c.total_counts().tolist() == [1, 0, 2, 0, 0]


def test_record_batch_bounds():
    c = ProbeCounter(3)
    with pytest.raises(ParameterError):
        c.record_batch(0, np.array([3]))


def test_contention_requires_executions():
    c = ProbeCounter(2)
    c.record(0, 0)
    with pytest.raises(ParameterError):
        c.total_contention()
    c.finish_execution()
    assert c.total_contention().tolist() == [1.0, 0.0]


def test_contention_normalization():
    c = ProbeCounter(2)
    for _ in range(4):
        c.record(0, 0)
        c.record(1, 1)
    c.finish_execution(4)
    per_step = c.contention_per_step()
    assert per_step.shape == (2, 2)
    assert per_step[0, 0] == pytest.approx(1.0)
    assert per_step[1, 1] == pytest.approx(1.0)
    assert c.max_contention() == pytest.approx(1.0)
    assert c.max_step_contention() == pytest.approx(1.0)


def test_reset():
    c = ProbeCounter(2)
    c.record(0, 0)
    c.finish_execution()
    c.reset()
    assert c.num_steps == 0
    assert c.executions == 0
    assert c.total_probes() == 0


def test_empty_counter_shapes():
    c = ProbeCounter(3)
    assert c.counts_per_step().shape == (0, 3)
    assert c.total_counts().tolist() == [0, 0, 0]


def test_invalid_arguments():
    c = ProbeCounter(2)
    with pytest.raises(ParameterError):
        c.record(-1, 0)
    with pytest.raises(ParameterError):
        c.record(0, 2)
    with pytest.raises(ParameterError):
        c.finish_execution(0)
    with pytest.raises(ParameterError):
        ProbeCounter(0)
