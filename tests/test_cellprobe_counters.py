"""ProbeCounter semantics: stratified counts and contention estimates."""

import numpy as np
import pytest

from repro.cellprobe import ProbeCounter
from repro.errors import ParameterError


def test_record_and_totals():
    c = ProbeCounter(4)
    c.record(0, 1)
    c.record(0, 1)
    c.record(2, 3)
    assert c.num_steps == 3
    assert c.total_counts().tolist() == [0, 2, 0, 1]
    assert c.total_probes() == 3


def test_record_batch_skips_negatives():
    c = ProbeCounter(5)
    c.record_batch(0, np.array([0, -1, 2, 2]))
    assert c.total_counts().tolist() == [1, 0, 2, 0, 0]


def test_record_batch_negatives_charge_nothing_anywhere():
    # The documented contract: a negative entry is skipped *entirely* —
    # no probe lands on any cell (not cell 0, not |entry|) and the
    # execution counter does not move (only finish_execution does).
    c = ProbeCounter(4)
    c.record_batch(0, np.array([-1, -3, -2]))
    assert c.total_probes() == 0
    assert c.total_counts().tolist() == [0, 0, 0, 0]
    assert c.executions == 0
    assert c.num_steps == 1  # the step row exists, just empty


def test_merge_adds_counts_and_executions():
    a, b = ProbeCounter(3), ProbeCounter(3)
    a.record(0, 1)
    a.finish_execution()
    b.record(0, 1)
    b.record(2, 2)  # b has a deeper step ladder than a
    b.finish_execution(2)
    assert a.merge(b) is a
    assert a.executions == 3
    assert a.counts_per_step().tolist() == [
        [0, 2, 0], [0, 0, 0], [0, 0, 1],
    ]
    # b is untouched.
    assert b.executions == 2 and b.total_probes() == 2


def test_merge_matches_single_counter_stream():
    rng = np.random.default_rng(7)
    whole = ProbeCounter(8)
    parts = [ProbeCounter(8) for _ in range(3)]
    for part in parts:
        for _ in range(40):
            step, cell = int(rng.integers(0, 4)), int(rng.integers(0, 8))
            part.record(step, cell)
            whole.record(step, cell)
        part.finish_execution(5)
        whole.finish_execution(5)
    merged = ProbeCounter(8)
    for part in parts:
        merged.merge(part)
    assert (
        merged.counts_per_step().tobytes()
        == whole.counts_per_step().tobytes()
    )
    assert merged.executions == whole.executions


def test_merge_validation():
    c = ProbeCounter(3)
    with pytest.raises(ParameterError):
        c.merge(ProbeCounter(4))
    with pytest.raises(ParameterError):
        c.merge([1, 2, 3])


def test_record_batch_bounds():
    c = ProbeCounter(3)
    with pytest.raises(ParameterError):
        c.record_batch(0, np.array([3]))


def test_contention_requires_executions():
    c = ProbeCounter(2)
    c.record(0, 0)
    with pytest.raises(ParameterError):
        c.total_contention()
    c.finish_execution()
    assert c.total_contention().tolist() == [1.0, 0.0]


def test_contention_normalization():
    c = ProbeCounter(2)
    for _ in range(4):
        c.record(0, 0)
        c.record(1, 1)
    c.finish_execution(4)
    per_step = c.contention_per_step()
    assert per_step.shape == (2, 2)
    assert per_step[0, 0] == pytest.approx(1.0)
    assert per_step[1, 1] == pytest.approx(1.0)
    assert c.max_contention() == pytest.approx(1.0)
    assert c.max_step_contention() == pytest.approx(1.0)


def test_reset():
    c = ProbeCounter(2)
    c.record(0, 0)
    c.finish_execution()
    c.reset()
    assert c.num_steps == 0
    assert c.executions == 0
    assert c.total_probes() == 0


def test_empty_counter_shapes():
    c = ProbeCounter(3)
    assert c.counts_per_step().shape == (0, 3)
    assert c.total_counts().tolist() == [0, 0, 0]


def test_invalid_arguments():
    c = ProbeCounter(2)
    with pytest.raises(ParameterError):
        c.record(-1, 0)
    with pytest.raises(ParameterError):
        c.record(0, 2)
    with pytest.raises(ParameterError):
        c.finish_execution(0)
    with pytest.raises(ParameterError):
        ProbeCounter(0)
