"""CellProbeMachine: execution recording and plan conformance."""

import numpy as np
import pytest

from repro.cellprobe import CellProbeMachine
from repro.cellprobe.machine import PlanViolation
from repro.cellprobe.steps import FixedCell
from repro.errors import QueryError


def test_records_probes_and_answer(sorted_dict, rng, keys):
    machine = CellProbeMachine(sorted_dict)
    record = machine.run_query(int(keys[0]), rng)
    assert record.answer is True
    assert 1 <= record.num_probes <= sorted_dict.max_probes
    # Probes are (step, row, column) in step order.
    steps = [p[0] for p in record.probes]
    assert steps == sorted(steps)


def test_negative_query(sorted_dict, rng, negatives):
    machine = CellProbeMachine(sorted_dict)
    record = machine.run_query(int(negatives[0]), rng)
    assert record.answer is False


def test_run_many(lcd, rng, keys, negatives):
    machine = CellProbeMachine(lcd)
    records = machine.run_many(
        list(keys[:5]) + list(negatives[:5]), rng
    )
    assert [r.answer for r in records] == [True] * 5 + [False] * 5


def test_plan_violation_detected(sorted_dict, rng, keys):
    """A dictionary whose plan disagrees with execution must be caught."""

    class LyingDict:
        def __init__(self, inner):
            self._inner = inner
            self.table = inner.table
            self.keys = inner.keys
            self.universe_size = inner.universe_size

        def query(self, x, rng=None):
            return self._inner.query(x, rng)

        def contains(self, x):
            return self._inner.contains(x)

        def probe_plan(self, x):  # wrong row on purpose
            plan = self._inner.probe_plan(x)
            return [FixedCell(0, (step.support()[0] + 1) % 2) for step in plan]

    machine = CellProbeMachine(LyingDict(sorted_dict))
    with pytest.raises(PlanViolation):
        machine.run_query(int(keys[3]), rng)


def test_wrong_answer_detected(sorted_dict, rng, keys):
    class WrongDict:
        def __init__(self, inner):
            self._inner = inner
            self.table = inner.table
            self.keys = inner.keys
            self.universe_size = inner.universe_size

        def query(self, x, rng=None):
            return not self._inner.query(x, rng)

        def contains(self, x):
            return self._inner.contains(x)

        def probe_plan(self, x):
            return self._inner.probe_plan(x)

    machine = CellProbeMachine(WrongDict(sorted_dict), check_plan=False)
    with pytest.raises(QueryError):
        machine.run_query(int(keys[0]), rng)


def test_counter_executions_incremented(fks, rng, keys):
    counter = fks.table.counter
    counter.reset()
    machine = CellProbeMachine(fks)
    machine.run_query(int(keys[0]), rng)
    machine.run_query(int(keys[1]), rng)
    assert counter.executions == 2
    counter.reset()
