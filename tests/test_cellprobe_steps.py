"""Probe-step algebra tests: supports, sampling, accumulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellprobe.steps import (
    BatchStridedStep,
    FixedCell,
    UniformSet,
    UniformStrided,
)
from repro.errors import ParameterError


class TestFixedCell:
    def test_basics(self, rng):
        step = FixedCell(2, 7)
        assert step.size == 1
        assert step.probability() == 1.0
        assert step.contains(7) and not step.contains(8)
        assert step.sample(rng) == 7
        assert step.support().tolist() == [7]

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            FixedCell(-1, 0)


class TestUniformStrided:
    def test_support_and_contains(self):
        step = UniformStrided(row=0, start=3, stride=5, count=4)
        assert step.support().tolist() == [3, 8, 13, 18]
        for c in (3, 8, 13, 18):
            assert step.contains(c)
        for c in (4, 23, 0, 2):
            assert not step.contains(c)

    def test_sampling_stays_in_support(self, rng):
        step = UniformStrided(row=1, start=2, stride=3, count=10)
        support = set(step.support().tolist())
        draws = {step.sample(rng) for _ in range(200)}
        assert draws <= support
        assert len(draws) > 5  # actually random

    def test_sampling_uniformity(self, rng):
        step = UniformStrided(row=0, start=0, stride=1, count=4)
        draws = np.array([step.sample(rng) for _ in range(4000)])
        freq = np.bincount(draws, minlength=4) / 4000
        assert np.abs(freq - 0.25).max() < 0.05

    def test_validation(self):
        with pytest.raises(ParameterError):
            UniformStrided(0, 0, 0, 5)
        with pytest.raises(ParameterError):
            UniformStrided(0, 0, 1, 0)


class TestUniformSet:
    def test_basics(self, rng):
        step = UniformSet(row=0, columns=(4, 9, 1))
        assert step.size == 3
        assert step.probability() == pytest.approx(1 / 3)
        assert step.contains(9) and not step.contains(2)
        assert step.sample(rng) in {4, 9, 1}

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ParameterError):
            UniformSet(0, (1, 1))
        with pytest.raises(ParameterError):
            UniformSet(0, ())


class TestBatchStridedStep:
    def _step(self):
        return BatchStridedStep(
            row=1,
            starts=np.array([0, 5, 2]),
            strides=np.array([1, 2, 1]),
            counts=np.array([3, 2, 0]),
        )

    def test_accumulate_matches_manual(self):
        step = self._step()
        s = 12
        flat = np.zeros(2 * s)
        step.accumulate(flat, np.array([0.3, 0.6, 0.9]), s)
        expected = np.zeros(2 * s)
        for c in (0, 1, 2):  # query 0: cells 0,1,2 at 0.1 each
            expected[s + c] += 0.1
        for c in (5, 7):  # query 1: cells 5,7 at 0.3 each
            expected[s + c] += 0.3
        # query 2: count 0 -> nothing.
        assert np.allclose(flat, expected)

    def test_shared_fast_path_equals_general(self):
        starts = np.full(5, 3, dtype=np.int64)
        strides = np.full(5, 2, dtype=np.int64)
        counts = np.full(5, 4, dtype=np.int64)
        w = np.array([0.1, 0.2, 0.3, 0.25, 0.15])
        s = 20
        shared = BatchStridedStep(0, starts, strides, counts, shared=True)
        general = BatchStridedStep(0, starts, strides, counts, shared=False)
        f1, f2 = np.zeros(s), np.zeros(s)
        shared.accumulate(f1, w, s)
        general.accumulate(f2, w, s)
        assert np.allclose(f1, f2)

    def test_shared_flag_requires_identical(self):
        with pytest.raises(ParameterError):
            BatchStridedStep(
                0,
                starts=np.array([0, 1]),
                strides=np.array([1, 1]),
                counts=np.array([2, 2]),
                shared=True,
            )

    def test_sample_respects_counts(self, rng):
        step = self._step()
        cols = step.sample(rng)
        assert cols[2] == -1  # count 0 -> no probe
        assert cols[0] in {0, 1, 2}
        assert cols[1] in {5, 7}

    def test_step_for_roundtrip(self):
        step = self._step()
        s0 = step.step_for(0)
        assert isinstance(s0, UniformStrided) and s0.count == 3
        assert step.step_for(2) is None
        one = BatchStridedStep(
            0, np.array([4]), np.array([1]), np.array([1])
        ).step_for(0)
        assert isinstance(one, FixedCell) and one.column == 4

    def test_weight_shape_mismatch(self):
        step = self._step()
        with pytest.raises(ParameterError):
            step.accumulate(np.zeros(24), np.array([1.0]), 12)


@settings(max_examples=50)
@given(
    start=st.integers(min_value=0, max_value=50),
    stride=st.integers(min_value=1, max_value=7),
    count=st.integers(min_value=1, max_value=20),
)
def test_strided_support_probability_consistency(start, stride, count):
    step = UniformStrided(0, start, stride, count)
    support = step.support()
    assert support.size == step.size == count
    assert step.probability() * count == pytest.approx(1.0)
    assert all(step.contains(int(c)) for c in support)


@settings(max_examples=30)
@given(data=st.data())
def test_batch_accumulation_mass_conservation(data):
    """Total accumulated mass equals the active queries' weights."""
    n = data.draw(st.integers(min_value=1, max_value=8))
    starts = np.array(
        data.draw(st.lists(st.integers(0, 10), min_size=n, max_size=n))
    )
    strides = np.array(
        data.draw(st.lists(st.integers(1, 3), min_size=n, max_size=n))
    )
    counts = np.array(
        data.draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
    )
    weights = np.array(
        data.draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    step = BatchStridedStep(0, starts, strides, counts)
    flat = np.zeros(64)
    step.accumulate(flat, weights, 64)
    expected = weights[counts > 0].sum()
    assert flat.sum() == pytest.approx(expected, abs=1e-12)
