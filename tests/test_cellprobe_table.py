"""Table semantics: writes are free, reads are charged, bounds checked."""

import numpy as np
import pytest

from repro.cellprobe import EMPTY_CELL, ProbeCounter, Table
from repro.errors import TableError


def test_fresh_table_is_empty():
    t = Table(rows=2, s=5)
    assert t.occupancy() == 0.0
    assert t.peek(0, 0) == EMPTY_CELL
    assert t.num_cells == 10


def test_write_then_read_roundtrip():
    t = Table(rows=2, s=4)
    t.write(1, 3, 12345)
    assert t.read(1, 3, step=0) == 12345
    assert t.counter.total_probes() == 1


def test_writes_are_not_probes():
    t = Table(rows=1, s=4)
    for j in range(4):
        t.write(0, j, j)
    assert t.counter.total_probes() == 0
    assert t.occupancy() == 1.0


def test_peek_is_not_a_probe():
    t = Table(rows=1, s=2)
    t.write(0, 0, 9)
    assert t.peek(0, 0) == 9
    assert t.counter.total_probes() == 0


def test_write_row_bulk():
    t = Table(rows=2, s=3)
    t.write_row(0, np.array([1, 2, 3], dtype=np.uint64))
    assert [t.peek(0, j) for j in range(3)] == [1, 2, 3]
    with pytest.raises(TableError):
        t.write_row(0, np.array([1, 2], dtype=np.uint64))
    with pytest.raises(TableError):
        t.write_row(5, np.zeros(3, dtype=np.uint64))


def test_bounds_checking():
    t = Table(rows=2, s=3)
    for row, col in ((2, 0), (0, 3), (-1, 0), (0, -1)):
        with pytest.raises(TableError):
            t.read(row, col, 0)
        with pytest.raises(TableError):
            t.write(row, col, 0)


def test_value_must_fit_cell():
    t = Table(rows=1, s=1)
    t.write(0, 0, (1 << 64) - 1)  # max value OK (the EMPTY sentinel)
    with pytest.raises(TableError):
        t.write(0, 0, 1 << 64)
    with pytest.raises(TableError):
        t.write(0, 0, -1)


def test_shared_counter_rejected_on_size_mismatch():
    counter = ProbeCounter(5)
    with pytest.raises(TableError):
        Table(rows=2, s=3, counter=counter)


def test_flat_index():
    t = Table(rows=3, s=7)
    assert t.flat_index(2, 4) == 2 * 7 + 4
    with pytest.raises(TableError):
        t.flat_index(3, 0)


def test_reads_charge_correct_step_and_cell():
    t = Table(rows=2, s=4)
    t.write(0, 1, 5)
    t.write(1, 2, 6)
    t.read(0, 1, step=0)
    t.read(1, 2, step=1)
    t.read(1, 2, step=1)
    counts = t.counter.counts_per_step()
    assert counts[0, t.flat_index(0, 1)] == 1
    assert counts[1, t.flat_index(1, 2)] == 2
    assert counts.sum() == 3
