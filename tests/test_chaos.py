"""Chaos schedules, the chaos driver, and fault-schedule determinism.

The determinism satellite: fault schedules — injector placements,
generated chaos events, and the probe accounting they produce — are a
pure function of their seed, independent of read order,
``ProbeCounter.merge`` order, and parallel-runner worker count
(``grid_map`` ``jobs=1`` vs ``jobs=2`` byte-identical).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellprobe.counters import ProbeCounter
from repro.cellprobe.table import Table
from repro.errors import HealError, ParameterError
from repro.experiments.common import make_instance, uniform_distribution
from repro.experiments.parallel import grid_map
from repro.faults import FaultConfig, FaultInjector, FaultyTable
from repro.heal import charged_to
from repro.serve import (
    ChaosEvent,
    ChaosSchedule,
    build_service,
    run_chaos,
)
from repro.serve.chaos import require_armed


class TestChaosEvent:
    def test_kind_validated(self):
        with pytest.raises(ParameterError):
            ChaosEvent(time=1.0, kind="meteor")

    def test_valid_kinds(self):
        for kind in ("crash", "corrupt", "stick", "spike-start", "spike-end"):
            ChaosEvent(time=1.0, kind=kind, replica=0)


class TestChaosSchedule:
    def test_events_sorted_by_time(self):
        sched = ChaosSchedule(
            events=[
                ChaosEvent(time=5.0, kind="crash", replica=1),
                ChaosEvent(time=2.0, kind="spike-start"),
            ],
            horizon=10.0,
        )
        assert [e.time for e in sched.events] == [2.0, 5.0]

    def test_horizon_validated(self):
        with pytest.raises(ParameterError):
            ChaosSchedule(events=[], horizon=0.0)

    def test_generate_deterministic(self):
        a = ChaosSchedule.generate(7, 50.0, 5, 1024, stuck=0)
        b = ChaosSchedule.generate(7, 50.0, 5, 1024, stuck=0)
        assert a.events == b.events and a.horizon == b.horizon
        c = ChaosSchedule.generate(8, 50.0, 5, 1024, stuck=0)
        assert a.events != c.events

    def test_generate_damages_distinct_replicas(self):
        sched = ChaosSchedule.generate(3, 50.0, 7, 1024)
        victims = [e.replica for e in sched.damage_events]
        assert len(victims) == len(set(victims)) == 3

    def test_generate_guards_strict_majority(self):
        # 3 damaged of 5 leaves no strict majority of untouched voters.
        with pytest.raises(ParameterError):
            ChaosSchedule.generate(3, 50.0, 5, 1024)

    def test_generate_times_inside_horizon(self):
        sched = ChaosSchedule.generate(11, 80.0, 7, 2048)
        for event in sched.damage_events:
            assert 0.15 * 80.0 <= event.time <= 0.75 * 80.0


class TestRunChaos:
    def _run(self, seed=21):
        keys, N = make_instance(64, seed=5)
        service = build_service(
            keys, N, num_shards=1, replicas=5, router="random",
            faults=FaultConfig(armed=True), seed=6,
        )
        manager = service.enable_healing(seed=7)
        d = service.shards[0]
        schedule = ChaosSchedule.generate(
            9, 800 / 64.0, 5, d.inner_rows * d.table.s, stuck=0,
        )
        report = run_chaos(
            service, uniform_distribution(keys, N), schedule, 800, 64.0,
            seed=seed, expected_keys=keys, marks=(2.0, 6.0),
        )
        return report, manager

    def test_deterministic(self):
        a, _ = self._run()
        b, _ = self._run()
        assert a.row() == b.row()
        assert a.final_states == b.final_states
        assert len(a.snapshots) == len(b.snapshots)
        for sa, sb in zip(a.snapshots, b.snapshots):
            assert np.array_equal(sa["cell_counts"], sb["cell_counts"])

    def test_zero_wrong_answers_and_heals(self):
        report, manager = self._run()
        assert report.wrong_answers == 0
        assert report.completed == report.requested - report.shed
        assert manager.violations == 0
        assert set(report.final_states.values()) == {"healthy"}

    def test_requires_armed_faults(self):
        keys, N = make_instance(64, seed=5)
        service = build_service(keys, N, num_shards=1, replicas=3, seed=6)
        with pytest.raises(HealError):
            require_armed(service)


def _seeded_faulty_table(seed, rows=6, s=16):
    cfg = FaultConfig(stuck_rate=0.2, flip_rate=0.1, seed=seed)
    injector = FaultInjector(cfg, rows, s)
    table = Table(rows, s)
    for r in range(rows):
        table.write_row(r, np.arange(s, dtype=np.uint64) + r * 100)
    return FaultyTable(table, injector), table, injector


def _fault_fingerprint(point, point_seed):
    """Module-level (picklable) grid point: one seeded faulty run.

    Returns everything a worker could get wrong if fault schedules
    depended on process or scheduling state: injector placements, the
    generated chaos events, and the probe-accounting digest.
    """
    rows, s = point
    seed = int(point_seed) % (2**31)
    faulty, table, injector = _seeded_faulty_table(seed, rows, s)
    for r in range(rows):
        faulty.read_batch(r, np.arange(s), step=0)
    schedule = ChaosSchedule.generate(seed, 50.0, 5, rows * s, stuck=0)
    return (
        tuple(int(c) for c in injector._stuck_cells),
        tuple(int(v) for v in injector._stuck_values),
        tuple(
            (e.time, e.kind, e.replica, e.cells, e.masks, e.values)
            for e in schedule.events
        ),
        table.counter.digest(),
    )


class TestFaultScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = _fault_fingerprint((6, 16), 42)
        b = _fault_fingerprint((6, 16), 42)
        assert a == b

    def test_merge_order_independent(self):
        # Split one faulty read stream across two counters; merging
        # A<-B and B<-A must agree with each other and with the
        # unsplit run — fault charging commutes under merge.
        faulty, table, _ = _seeded_faulty_table(3)
        part_a = ProbeCounter(table.num_cells)
        part_b = ProbeCounter(table.num_cells)
        with charged_to(table, part_a):
            for r in range(0, 3):
                faulty.read_batch(r, np.arange(table.s), step=0)
        with charged_to(table, part_b):
            for r in range(3, 6):
                faulty.read_batch(r, np.arange(table.s), step=0)
        ab = ProbeCounter(table.num_cells)
        ab.merge(part_a)
        ab.merge(part_b)
        ba = ProbeCounter(table.num_cells)
        ba.merge(part_b)
        ba.merge(part_a)
        assert ab.digest() == ba.digest()
        whole_faulty, whole_table, _ = _seeded_faulty_table(3)
        for r in range(6):
            whole_faulty.read_batch(r, np.arange(whole_table.s), step=0)
        assert ab.digest() == whole_table.counter.digest()

    def test_grid_map_jobs_invariant(self):
        # satellite: same seed => same fault schedules regardless of
        # --jobs. Worker processes must reproduce placements, chaos
        # events, and accounting byte-identically.
        points = [(6, 16), (8, 8), (4, 32)]
        serial = grid_map(_fault_fingerprint, points, seed=17, jobs=1)
        parallel = grid_map(_fault_fingerprint, points, seed=17, jobs=2)
        assert serial == parallel


class TestHorizonBoundary:
    """Satellite: events at exactly ``t == horizon`` are not dropped."""

    def _service(self):
        keys, N = make_instance(64, seed=5)
        service = build_service(
            keys, N, num_shards=1, replicas=5, router="random",
            faults=FaultConfig(armed=True), seed=6,
        )
        service.enable_healing(seed=7)
        return keys, N, service

    def test_event_at_horizon_applied_before_quiescence(self):
        keys, N, service = self._service()
        horizon = 400 / 64.0
        schedule = ChaosSchedule(
            events=[ChaosEvent(time=horizon, kind="crash", replica=1)],
            horizon=horizon,
        )
        report = run_chaos(
            service, uniform_distribution(keys, N), schedule, 400, 64.0,
            seed=3, expected_keys=keys,
        )
        assert report.events_applied == 1
        assert report.events_skipped == 0
        # Quiescence still heals the boundary crash.
        assert report.final_states["0/1"] == "healthy"

    def test_event_beyond_horizon_rejected(self):
        with pytest.raises(ParameterError):
            ChaosSchedule(
                events=[ChaosEvent(time=10.5, kind="crash", replica=0)],
                horizon=10.0,
            )
        with pytest.raises(ParameterError):
            ChaosSchedule(
                events=[ChaosEvent(time=-0.5, kind="crash", replica=0)],
                horizon=10.0,
            )

    def test_fabric_kind_skipped_on_in_process_service(self):
        # kill-worker / corrupt-segment need the parallel fabric; the
        # in-process service counts them as skipped, never crashes.
        keys, N, service = self._service()
        horizon = 400 / 64.0
        schedule = ChaosSchedule(
            events=[
                ChaosEvent(time=horizon / 2, kind="kill-worker", worker=0),
            ],
            horizon=horizon,
        )
        report = run_chaos(
            service, uniform_distribution(keys, N), schedule, 400, 64.0,
            seed=3, expected_keys=keys,
        )
        assert report.events_applied == 0
        assert report.events_skipped == 1
        assert report.wrong_answers == 0

    def test_latency_percentiles_populated(self):
        keys, N, service = self._service()
        horizon = 400 / 64.0
        schedule = ChaosSchedule(events=[], horizon=horizon)
        report = run_chaos(
            service, uniform_distribution(keys, N), schedule, 400, 64.0,
            seed=3, expected_keys=keys,
        )
        assert report.latency_p50 > 0.0
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
