"""CLI smoke tests (python -m repro ...)."""

import json
import os

import pytest

from repro.cli import build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 15):
        assert f"E{i}" in out


def test_list_json(capsys):
    assert main(["list", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    experiments = data["experiments"]
    assert experiments["E1"].startswith("Contention optimality")
    assert set(experiments) == {f"E{i}" for i in range(1, 27)}
    # The telemetry capability descriptor for machine consumers.
    telemetry = data["telemetry"]
    assert telemetry["metrics"] and telemetry["tracing"]
    assert telemetry["snapshot_version"] == 1
    assert telemetry["trace_formats"] == ["chrome", "json"]


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "SPAA 2010" in out
    assert "EXPERIMENTS.md" in out


def test_info_json(capsys):
    assert main(["info", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["paper"]["venue"] == "SPAA 2010"
    assert data["experiments"] == [f"E{i}" for i in range(1, 27)]


def test_run_single_experiment(capsys):
    assert main(["run", "E11"]) == 0
    out = capsys.readouterr().out
    assert "[E11]" in out and "Claim:" in out


def test_run_writes_json(tmp_path, capsys):
    out_file = tmp_path / "res.json"
    assert main(["run", "E11", "--json", str(out_file)]) == 0
    data = json.loads(out_file.read_text())
    assert data[0]["experiment_id"] == "E11"


def test_run_unknown_experiment_exits_nonzero(capsys):
    # Library errors become a one-line stderr message + exit 2, never a
    # traceback (satellite: CLI catches ReproError).
    assert main(["run", "E99"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "E99" in err and err.count("\n") == 1


def test_fail_fast_and_keep_going_mutually_exclusive(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "E11", "--fail-fast", "--keep-going"])
    capsys.readouterr()


def test_run_timeout_failure_exits_one(capsys):
    # A tiny timeout kills the worker; with --fail-fast (default) that is
    # one stderr line and exit code 1.
    assert main(["run", "E11", "--timeout", "0.001"]) == 1
    err = capsys.readouterr().err
    assert "E11 failed" in err and "exceeded" in err


def test_run_keep_going_renders_survivors(capsys):
    # E1 (~0.4s fast mode) exceeds the timeout; E9 (~15ms) beats it.
    # --keep-going runs past the E1 failure, renders E9's table, and
    # still exits nonzero with the failure on stderr.
    code = main(["run", "E1", "E9", "--keep-going", "--timeout", "0.15"])
    assert code == 1
    captured = capsys.readouterr()
    assert "E1 failed" in captured.err
    assert "[E9]" in captured.out


def test_checkpoint_resume_round_trip(tmp_path, capsys):
    ckpt = str(tmp_path / "ckpts")
    assert main(["run", "E11", "--checkpoint-dir", ckpt]) == 0
    first = capsys.readouterr().out
    assert list((tmp_path / "ckpts").glob("*.json"))
    # Second invocation resumes from the checkpoint: same rendered
    # output, no recomputation needed.
    assert main(["run", "E11", "--checkpoint-dir", ckpt]) == 0
    assert capsys.readouterr().out == first


def test_checkpoint_dir_is_file_exits_two(tmp_path, capsys):
    # Pointing --checkpoint-dir at an existing *file* is a typed
    # ReproError and a one-line message, never an OSError traceback.
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("i am a file")
    assert main(["run", "E11", "--checkpoint-dir", str(bogus)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "not a usable directory" in err
    assert err.count("\n") == 1


def test_cache_dir_is_file_exits_two(tmp_path, capsys):
    bogus = tmp_path / "cachefile"
    bogus.write_text("")
    assert main(["run", "E11", "--cache-dir", str(bogus)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "not a usable directory" in err


def test_checkpoint_dir_under_file_exits_two(tmp_path, capsys):
    # A file where a *parent* directory should be (NotADirectoryError
    # territory) gets the same one-line treatment.
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    assert main(
        ["run", "E11", "--checkpoint-dir", str(blocker / "sub")]
    ) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "not a usable directory" in err


def test_corrupt_checkpoint_file_recomputes(tmp_path, capsys, recwarn):
    # A truncated/corrupt checkpoint *file* degrades to a warning and a
    # recompute — exit 0, correct output, checkpoint rewritten.
    ckpt = tmp_path / "ckpts"
    assert main(["run", "E11", "--checkpoint-dir", str(ckpt)]) == 0
    first = capsys.readouterr().out
    (path,) = ckpt.glob("*.json")
    path.write_text('{"version": 1, "experiment_id": "E11", "trunc')
    assert main(["run", "E11", "--checkpoint-dir", str(ckpt)]) == 0
    assert capsys.readouterr().out == first
    assert any(
        "unusable checkpoint" in str(w.message) for w in recwarn.list
    )
    # The recompute re-checkpointed a loadable result.
    import json as json_mod

    assert json_mod.loads(path.read_text())["experiment_id"] == "E11"


def test_survey_small(capsys):
    assert main(["survey", "--n", "64", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "low-contention" in out
    assert "binary-search" in out
    assert "ratio_step" in out


def test_serve_smoke(capsys):
    # Boots the asyncio server, answers a seeded self-test workload,
    # exits cleanly (the CI serving job runs the same command).
    assert main(["serve", "--n", "64", "--smoke-queries", "16"]) == 0
    out = capsys.readouterr().out
    assert "serving n=64" in out
    assert "0 wrong" in out


def test_loadgen_deterministic(tmp_path, capsys):
    args = [
        "loadgen", "--n", "64", "--requests", "200", "--workload", "zipf",
    ]
    assert main(args + ["--json", str(tmp_path / "a.json")]) == 0
    first = capsys.readouterr().out
    assert main(args + ["--json", str(tmp_path / "b.json")]) == 0
    second = capsys.readouterr().out
    # Byte-identical report: the loadgen runs in seeded virtual time.
    assert (tmp_path / "a.json").read_text() == (
        tmp_path / "b.json"
    ).read_text()
    assert first.replace("a.json", "b.json") == second
    data = json.loads((tmp_path / "a.json").read_text())
    assert data["completed"] == 200 and data["wrong_answers"] == 0


def test_loadgen_closed_loop(capsys):
    assert main(
        ["loadgen", "--n", "64", "--requests", "100", "--discipline",
         "closed", "--clients", "8", "--probe-time", "0.001"]
    ) == 0
    out = capsys.readouterr().out
    assert "closed" in out


def test_serve_metrics_flag(capsys):
    assert main(
        ["serve", "--n", "64", "--smoke-queries", "16", "--metrics"]
    ) == 0
    out = capsys.readouterr().out
    assert "metrics on" in out
    assert "serve_requests_total" in out  # Prometheus exposition


def test_run_emit_telemetry_writes_snapshots(tmp_path, capsys):
    tel = tmp_path / "tel"
    assert main(["run", "E2", "--emit-telemetry", str(tel)]) == 0
    out = capsys.readouterr().out
    assert "[E2]" in out and str(tel) in out
    files = list(tel.glob("*.metrics.json"))
    assert len(files) == 1 and files[0].name == "E2_fast_s0.metrics.json"
    snap = json.loads(files[0].read_text())
    assert snap["kind"] == "repro-metrics"
    assert snap["experiment"] == {"id": "E2", "fast": True, "seed": 0}
    assert snap["counters"]["probes"]["value"] > 0
    assert snap["counters"]["executions"]["value"] > 0


def test_stats_prints_metrics_table(tmp_path, capsys):
    snap_path = tmp_path / "snap.json"
    assert main(
        ["stats", "--n", "64", "--requests", "200", "--prometheus",
         "--json", str(snap_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "serve_completed" in out  # rendered metrics table
    assert "serve_requests_total 200" in out  # exposition
    snap = json.loads(snap_path.read_text())
    assert snap["version"] == 1 and snap["alarms"] == []


def test_stats_monitor_uniform_traffic_is_quiet(capsys):
    assert main(
        ["stats", "--n", "64", "--requests", "400", "--monitor",
         "--check-every", "4", "--replicas", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "monitor:" in out and "0 alarm(s)" in out


def test_stats_monitor_requires_single_shard(capsys):
    assert main(
        ["stats", "--n", "64", "--requests", "50", "--monitor",
         "--shards", "2"]
    ) == 2
    assert "--shards 1" in capsys.readouterr().err


def test_trace_writes_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(
        ["trace", "--n", "64", "--requests", "100", "--out",
         str(out_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "100 requests" in out
    data = json.loads(out_path.read_text())
    names = {e["name"] for e in data["traceEvents"]}
    assert {"request", "batch", "route", "replica"} <= names


def test_serve_procs_clamps_to_cpus_with_warning(capsys):
    # --procs beyond the host's CPU count clamps with a one-line
    # stderr warning and still serves correctly through the fabric.
    cpus = os.cpu_count() or 1
    assert main(
        ["serve", "--n", "64", "--smoke-queries", "16",
         "--procs", str(cpus + 1)]
    ) == 0
    captured = capsys.readouterr()
    assert f"clamping to {cpus}" in captured.err
    assert len(captured.err.strip().splitlines()) == 1
    assert f"{cpus} worker process(es)" in captured.out
    assert "0 wrong" in captured.out


def test_serve_procs_metrics_exposes_queue_depths(capsys):
    assert main(
        ["serve", "--n", "64", "--smoke-queries", "16",
         "--procs", "1", "--metrics"]
    ) == 0
    out = capsys.readouterr().out
    assert "repro_parallel_queue_depth_w0" in out
    assert "repro_parallel_workers 1" in out


def test_serve_procs_rejects_heal(capsys):
    assert main(["serve", "--procs", "1", "--heal"]) == 2
    err = capsys.readouterr().err
    assert "in-process only" in err


def test_serve_heal_flag(capsys):
    assert main(
        ["serve", "--n", "64", "--smoke-queries", "16", "--heal"]
    ) == 0
    out = capsys.readouterr().out
    assert "healing on" in out
    assert "0 violations" in out


def test_chaos_smoke(capsys):
    # Seeded chaos schedule against a healing service: zero wrong
    # answers, zero quarantine violations, exit 0.
    assert main(["chaos", "--n", "64", "--requests", "800"]) == 0
    out = capsys.readouterr().out
    assert "0 wrong answers" in out
    assert "0 quarantine violations" in out
    assert "states:" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_chaos_zero_rate_exits_two(capsys):
    # Satellite: bad --rate is a runner-style error, not a traceback.
    assert main(["chaos", "--rate", "0"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "rate" in err


def test_chaos_nonpositive_requests_exits_two(capsys):
    assert main(["chaos", "--requests", "0"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "requests" in err


def test_adversary_search_writes_fixture(tmp_path, capsys):
    out = tmp_path / "found.json"
    code = main([
        "adversary", "search", "--generations", "2", "--population", "3",
        "--elites", "1", "--out", str(out),
    ])
    captured = capsys.readouterr().out
    assert code in (0, 1)  # 1 only if this tiny budget missed baseline
    assert "gen 0:" in captured and "baseline" in captured
    assert out.exists()
    payload = json.loads(out.read_text())
    assert payload["format"] == 1
    assert payload["replay_digest"]


def test_adversary_replay_fixture_dir(capsys):
    # The committed red-team finds replay clean through the CLI gate.
    assert main([
        "adversary", "replay", "--dir", "tests/fixtures/genomes",
    ]) == 0
    out = capsys.readouterr().out
    assert "ok:" in out and "FAIL" not in out


def test_adversary_replay_no_fixtures_exits_two(capsys):
    assert main(["adversary", "replay"]) == 2
    assert "no fixtures" in capsys.readouterr().err


def test_adversary_replay_tampered_fixture_exits_one(tmp_path, capsys):
    src = sorted(
        p for p in os.listdir("tests/fixtures/genomes")
        if p.endswith(".json")
    )[0]
    payload = json.loads(
        open(os.path.join("tests/fixtures/genomes", src)).read()
    )
    payload["replay_digest"] = "0" * 64
    bad = tmp_path / "tampered.json"
    bad.write_text(json.dumps(payload))
    assert main(["adversary", "replay", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "failed replay" in captured.err


def test_adversary_minimize_round_trip(tmp_path, capsys):
    src = sorted(
        p for p in os.listdir("tests/fixtures/genomes")
        if p.endswith(".json")
    )[0]
    out = tmp_path / "small.json"
    assert main([
        "adversary", "minimize",
        os.path.join("tests/fixtures/genomes", src),
        "--out", str(out),
    ]) == 0
    assert "events @ fitness" in capsys.readouterr().out
    assert out.exists()
    # The shrunk fixture still passes the replay gate.
    assert main(["adversary", "replay", str(out)]) == 0


def test_serve_autotune_smoke(capsys):
    assert main(
        ["serve", "--n", "64", "--smoke-queries", "16", "--autotune"]
    ) == 0
    out = capsys.readouterr().out
    assert "autotune on" in out
    assert "trace digest" in out


def test_serve_dynamic_rejects_procs(capsys):
    assert main(["serve", "--dynamic", "--procs", "2"]) == 2
    assert "in-process" in capsys.readouterr().err


def test_serve_dynamic_rejects_heal(capsys):
    assert main(["serve", "--dynamic", "--heal"]) == 2
    assert "lockstep log replay" in capsys.readouterr().err


def test_serve_rejects_negative_procs(capsys):
    assert main(["serve", "--procs", "-1"]) == 2
    assert ">= 0" in capsys.readouterr().err


def test_autotune_inspect(capsys):
    assert main(["autotune", "inspect"]) == 0
    out = capsys.readouterr().out
    assert "policy digest:" in out
    assert "cooldown" in out


def test_autotune_inspect_json(capsys):
    assert main(["autotune", "inspect", "--json"]) == 0
    out = capsys.readouterr().out
    body, digest_line = out.rsplit("\n", 2)[:2]
    data = json.loads(body)
    assert "cooldown" in data and "high_load" in data
    assert digest_line.startswith("policy digest:")


def test_autotune_run_replay_round_trip(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    args = [
        "autotune", "run", "--n", "96", "--requests", "400",
        "--rate", "48", "--shards", "2", "--out", str(trace),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "0 wrong answers" in first
    # The saved trace replays byte-identically...
    assert main(["autotune", "replay", str(trace)]) == 0
    assert "match" in capsys.readouterr().out
    # ...and a second run is decision-for-decision identical.
    trace_b = tmp_path / "trace_b.json"
    assert main(args[:-1] + [str(trace_b)]) == 0
    capsys.readouterr()
    assert trace.read_text() == trace_b.read_text()


def test_autotune_replay_tampered_trace_exits_one(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main([
        "autotune", "run", "--n", "96", "--requests", "400",
        "--rate", "48", "--shards", "2", "--out", str(trace),
    ]) == 0
    payload = json.loads(trace.read_text())
    tampered = [e for e in payload["entries"] if e["decisions"]]
    tampered[0]["decisions"][0]["shard"] = 99
    trace.write_text(json.dumps(payload))
    capsys.readouterr()
    assert main(["autotune", "replay", str(trace)]) == 1
    assert "MISMATCH" in capsys.readouterr().out
