"""CLI smoke tests (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 15):
        assert f"E{i}" in out


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "SPAA 2010" in out
    assert "EXPERIMENTS.md" in out


def test_run_single_experiment(capsys):
    assert main(["run", "E11"]) == 0
    out = capsys.readouterr().out
    assert "[E11]" in out and "Claim:" in out


def test_run_writes_json(tmp_path, capsys):
    out_file = tmp_path / "res.json"
    assert main(["run", "E11", "--json", str(out_file)]) == 0
    data = json.loads(out_file.read_text())
    assert data[0]["experiment_id"] == "E11"


def test_run_unknown_experiment_raises():
    from repro.errors import ParameterError

    with pytest.raises(ParameterError):
        main(["run", "E99"])


def test_survey_small(capsys):
    assert main(["survey", "--n", "64", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "low-contention" in out
    assert "binary-search" in out
    assert "ratio_step" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
