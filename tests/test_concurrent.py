"""Concurrent simulator, resolution models, and fault adversaries."""

import numpy as np
import pytest

from repro.concurrent import (
    CellOutageAdversary,
    ConcurrentSimulator,
    ContentionSpikeAdversary,
    CRCWModel,
    QueuedModel,
)
from repro.distributions import UniformOverSet


class TestResolutionModels:
    def test_crcw_serves_everything(self, rng):
        cells = np.array([3, 3, 3, 7])
        assert CRCWModel().serve(cells, rng).all()

    def test_queued_one_per_cell(self, rng):
        cells = np.array([3, 3, 3, 7, 7, 9])
        served = QueuedModel().serve(cells, rng)
        for cell in (3, 7, 9):
            assert served[cells == cell].sum() == 1

    def test_queued_capacity(self, rng):
        cells = np.zeros(10, dtype=np.int64)
        served = QueuedModel(capacity=4).serve(cells, rng)
        assert served.sum() == 4

    def test_queued_fairness(self, rng):
        """Each of k contenders wins ~1/k of the time."""
        cells = np.zeros(4, dtype=np.int64)
        model = QueuedModel()
        wins = np.zeros(4)
        for _ in range(2000):
            wins += model.serve(cells, rng)
        assert np.abs(wins / 2000 - 0.25).max() < 0.05

    def test_empty_input(self, rng):
        assert QueuedModel().serve(np.zeros(0, dtype=np.int64), rng).size == 0


class TestSimulator:
    def _dist(self, d, keys):
        return UniformOverSet(d.universe_size, keys)

    def test_crcw_completions_match_probe_counts(self, fks, keys):
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=8,
            model=CRCWModel(), rng=np.random.default_rng(0),
        )
        res = sim.run(200)
        assert res.completed_queries > 0
        assert res.stalled_probes == 0
        assert res.stall_fraction == 0.0
        # Positive-only workload on FKS: every query takes 4 probes.
        assert res.mean_latency == pytest.approx(4.0)
        assert res.throughput == pytest.approx(8 / 4, rel=0.1)

    def test_queued_throughput_bounded_by_hot_cell(self, sorted_dict, keys):
        """Binary search root cell: <= 1 completion per ~log n cycles."""
        sim = ConcurrentSimulator(
            sorted_dict, self._dist(sorted_dict, keys), processors=64,
            model=QueuedModel(), rng=np.random.default_rng(1),
        )
        res = sim.run(400)
        assert res.throughput <= 1.05  # root serializes
        assert res.stall_fraction > 0.5

    def test_lcd_scales_better_than_binary(self, lcd, sorted_dict, keys):
        kwargs = dict(processors=64, model=QueuedModel())
        r_lcd = ConcurrentSimulator(
            lcd, self._dist(lcd, keys), rng=np.random.default_rng(2), **kwargs
        ).run(300)
        r_bin = ConcurrentSimulator(
            sorted_dict, self._dist(sorted_dict, keys),
            rng=np.random.default_rng(2), **kwargs
        ).run(300)
        assert r_lcd.throughput > 2 * r_bin.throughput
        assert r_lcd.stall_fraction < r_bin.stall_fraction

    def test_max_collisions_bounded_by_m(self, cuckoo, keys):
        sim = ConcurrentSimulator(
            cuckoo, self._dist(cuckoo, keys), processors=16,
            rng=np.random.default_rng(3),
        )
        res = sim.run(100)
        assert 1 <= res.max_cell_collisions <= 16

    def test_result_row_shape(self, fks, keys):
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=4,
            rng=np.random.default_rng(4),
        )
        row = sim.run(50).row()
        assert set(row) >= {"scheme", "model", "m", "throughput"}

    def test_latency_percentiles_ordered(self, lcd, keys):
        sim = ConcurrentSimulator(
            lcd, self._dist(lcd, keys), processors=32,
            model=QueuedModel(), rng=np.random.default_rng(5),
        )
        res = sim.run(200)
        assert res.p95_latency >= res.mean_latency * 0.5
        assert res.completed_queries > 0


class TestSimulatorEdgeCases:
    def _dist(self, d, keys):
        return UniformOverSet(d.universe_size, keys)

    def test_zero_cycles(self, fks, keys):
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=8,
            rng=np.random.default_rng(0),
        )
        res = sim.run(0)
        assert res.completed_queries == 0
        assert res.total_probes == 0
        assert res.throughput == 0.0
        assert res.availability == 1.0
        assert res.wrong_answer_rate == 0.0
        assert np.isnan(res.mean_latency)  # no completions to average

    def test_single_processor(self, fks, keys):
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=1,
            model=QueuedModel(), rng=np.random.default_rng(1),
        )
        res = sim.run(100)
        # One processor never contends with itself.
        assert res.stalled_probes == 0
        assert res.completed_queries == 100 // 4
        assert res.max_cell_collisions == 1

    def test_latency_buffer_grows_past_initial_capacity(self, fks, keys):
        # 64 processors x 400 cycles on a 4-probe scheme completes ~6400
        # queries — far past the 1024-entry initial latency buffer.
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=64,
            model=CRCWModel(), rng=np.random.default_rng(2),
        )
        res = sim.run(400)
        assert res.completed_queries > 1024
        assert res.mean_latency == pytest.approx(4.0)

    def test_negative_cycles_rejected(self, fks, keys):
        from repro.errors import ParameterError

        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=2,
            rng=np.random.default_rng(3),
        )
        with pytest.raises(ParameterError):
            sim.run(-1)


class TestAdversaries:
    def _dist(self, d, keys):
        return UniformOverSet(d.universe_size, keys)

    def test_outage_block_mode_degrades_availability(self, fks, keys):
        adv = CellOutageAdversary(
            event_rate=0.8, cells_per_event=32, duration=20,
            mode="block", seed=0,
        )
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=16,
            model=CRCWModel(), rng=np.random.default_rng(0), adversary=adv,
        )
        res = sim.run(300)
        assert res.blocked_probes > 0
        assert res.availability < 1.0
        assert res.retry_amplification > 1.0
        # Blocked probes stall queries but never corrupt answers.
        assert res.wrong_answers == 0
        assert res.throughput < 16 / 4

    def test_outage_corrupt_mode_produces_wrong_answers(self, fks, keys):
        adv = CellOutageAdversary(
            event_rate=0.8, cells_per_event=32, duration=20,
            mode="corrupt", seed=1,
        )
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=16,
            model=CRCWModel(), rng=np.random.default_rng(1), adversary=adv,
        )
        res = sim.run(300)
        # Corrupt cells serve probes (no blocking) but taint answers.
        assert res.blocked_probes == 0
        assert res.wrong_answers > 0
        assert 0.0 < res.wrong_answer_rate <= 1.0

    def test_contention_spike_hurts_queued_throughput(self, lcd, keys):
        kwargs = dict(processors=32, model=QueuedModel())
        clean = ConcurrentSimulator(
            lcd, self._dist(lcd, keys),
            rng=np.random.default_rng(2), **kwargs,
        ).run(300)
        spiked = ConcurrentSimulator(
            lcd, self._dist(lcd, keys),
            rng=np.random.default_rng(2),
            adversary=ContentionSpikeAdversary(period=20, width=10, seed=3),
            **kwargs,
        ).run(300)
        # Spike cycles aim every new query at one key: the low-contention
        # guarantee is distributional, so the adversary serializes it.
        assert spiked.throughput < clean.throughput
        assert spiked.stall_fraction > clean.stall_fraction

    def test_adversary_runs_are_deterministic(self, fks, keys):
        def run():
            adv = CellOutageAdversary(
                event_rate=0.5, cells_per_event=8, duration=10,
                mode="block", seed=5,
            )
            sim = ConcurrentSimulator(
                fks, self._dist(fks, keys), processors=8,
                rng=np.random.default_rng(4), adversary=adv,
            )
            return sim.run(200).row()

        assert run() == run()

    def test_advance_is_idempotent_per_cycle(self):
        adv = CellOutageAdversary(
            event_rate=1.0, cells_per_event=4, duration=5, seed=6
        )
        adv.bind(64)
        adv.advance(0)
        blocked = adv.blocked.copy()
        adv.advance(0)  # same cycle: no new RNG draws, same mask
        assert np.array_equal(adv.blocked, blocked)
        adv.advance(1)  # new cycle may change it

    def test_degradation_row_fields(self, fks, keys):
        sim = ConcurrentSimulator(
            fks, self._dist(fks, keys), processors=4,
            rng=np.random.default_rng(7),
            adversary=CellOutageAdversary(seed=8),
        )
        row = sim.run(50).degradation_row()
        assert set(row) >= {"availability", "retry_amp", "wrong_rate"}


class TestBackoffModel:
    def test_solo_probes_always_served(self, rng):
        from repro.concurrent import BackoffModel

        cells = np.array([1, 2, 3, 4])
        assert BackoffModel().serve(cells, rng).all()

    def test_contended_cell_serves_at_most_one(self, rng):
        from repro.concurrent import BackoffModel

        model = BackoffModel()
        cells = np.array([5, 5, 5, 5, 9])
        for _ in range(50):
            served = model.serve(cells, rng)
            assert served[cells == 5].sum() <= 1
            assert served[4]  # the solo probe

    def test_throughput_near_1_over_e_for_hot_cell(self, rng):
        from repro.concurrent import BackoffModel

        model = BackoffModel()
        k = 16
        cells = np.zeros(k, dtype=np.int64)
        successes = sum(
            int(model.serve(cells, rng).sum()) for _ in range(3000)
        )
        rate = successes / 3000
        # k contenders, each transmits w.p. 1/k: P[exactly one] ~ e^-1.
        assert abs(rate - np.exp(-1)) < 0.05

    def test_backoff_worse_than_queued_on_binary_search(
        self, sorted_dict, keys
    ):
        from repro.concurrent import BackoffModel

        dist = UniformOverSet(sorted_dict.universe_size, keys)
        queued = ConcurrentSimulator(
            sorted_dict, dist, processors=64, model=QueuedModel(),
            rng=np.random.default_rng(0),
        ).run(300)
        backoff = ConcurrentSimulator(
            sorted_dict, dist, processors=64, model=BackoffModel(),
            rng=np.random.default_rng(0),
        ).run(300)
        assert backoff.throughput < queued.throughput
