"""Adversarial distribution construction tests."""

import numpy as np
import pytest

from repro.contention import exact_contention, worst_point_mass, worst_support_k
from repro.errors import ParameterError


class TestWorstSupportK:
    def test_k1_matches_point_mass(self, lcd):
        dist, predicted = worst_support_k(lcd, 1)
        _, point_peak, _ = worst_point_mass(lcd)
        assert predicted == pytest.approx(point_peak)
        assert dist.support_size == 1

    def test_prediction_matches_measurement(self, lcd):
        for k in (1, 4, 16):
            dist, predicted = worst_support_k(lcd, k)
            measured = exact_contention(lcd, dist).max_step_contention()
            assert measured == pytest.approx(predicted, rel=1e-9)

    def test_contention_degrades_with_k(self, lcd):
        values = []
        for k in (1, 8, 64):
            dist, predicted = worst_support_k(lcd, k)
            values.append(predicted)
        assert values[0] > values[1] > values[2]
        # Exactly 1/k for the low-contention scheme (private data cells).
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(1.0 / 8)

    def test_support_is_uniform_k_queries(self, fks):
        dist, _ = worst_support_k(fks, 8)
        assert dist.support_size == 8
        assert np.allclose(dist.masses, 1.0 / 8)

    def test_shared_cell_adversary_beats_solo_on_fks(self, fks):
        """FKS bucket headers are shared: a k-set hitting one header
        gets contention ~1 (not 1/k) until k exceeds the bucket size."""
        dist, predicted = worst_support_k(fks, 2)
        # Two keys from the same level-1 bucket share the header cell.
        loads = fks.loads
        if int(loads.max()) >= 2:
            assert predicted > 0.5  # ~1.0: both probe the shared header

    def test_validation(self, lcd):
        with pytest.raises(ParameterError):
            worst_support_k(lcd, 0)
        with pytest.raises(ParameterError):
            worst_support_k(lcd, 10, candidates=np.array([1, 2]))


class TestWorstPointMass:
    def test_default_pool_is_keys(self, cuckoo, keys):
        x, peak, _ = worst_point_mass(cuckoo)
        assert x in set(keys.tolist())
        assert peak == pytest.approx(1.0)

    def test_empty_pool_rejected(self, cuckoo):
        with pytest.raises(ParameterError):
            worst_point_mass(cuckoo, np.array([], dtype=np.int64))
