"""Exact contention engine: Definition 1 realized, cross-validated."""

import numpy as np
import pytest

from repro.contention import (
    ContentionMatrix,
    empirical_contention,
    exact_contention,
    sampled_contention,
)
from repro.distributions import PointMass, UniformOverSet, UniformPositiveNegative
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def lcd_matrix(lcd, uniform_dist):
    return exact_contention(lcd, uniform_dist)


class TestContentionMatrix:
    def test_step_masses_are_probe_probabilities(self, lcd_matrix, lcd):
        """sum_j Phi_t(j) = Pr[a t-th probe happens] — 1 for the first
        2d + rho + 2 steps, <= 1 afterwards (empty buckets stop early)."""
        mass = lcd_matrix.step_mass()
        p = lcd.params
        always = 2 * p.degree + p.rho + 2
        assert np.allclose(mass[:always], 1.0)
        assert np.all(mass[always:] <= 1.0 + 1e-12)

    def test_expected_probes_consistent(self, lcd_matrix):
        assert lcd_matrix.expected_probes() == pytest.approx(
            float(lcd_matrix.step_mass().sum())
        )

    def test_max_bounds_ordering(self, lcd_matrix):
        assert (
            0
            < lcd_matrix.max_step_contention()
            <= lcd_matrix.max_total_contention()
            <= lcd_matrix.expected_probes()
        )

    def test_per_row_max_shape(self, lcd_matrix, lcd):
        per_row = lcd_matrix.per_row_max()
        assert per_row.shape == (lcd.table.rows,)
        # Coefficient rows are perfectly flat: every cell exactly 1/s.
        assert per_row[0] == pytest.approx(1.0 / lcd.params.s)

    def test_hottest_cells_sorted(self, lcd_matrix):
        cells = lcd_matrix.hottest_cells(5)
        values = [v for (_, _, v) in cells]
        assert values == sorted(values, reverse=True)

    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            ContentionMatrix(phi=np.zeros((2, 5)), rows=2, s=3)


class TestCrossValidation:
    def test_exact_equals_rao_blackwell_on_explicit_support(self, fks, keys):
        """On a finite-support distribution, RB sampling converges to exact."""
        dist = UniformOverSet(fks.universe_size, keys)
        exact = exact_contention(fks, dist)
        rb = sampled_contention(fks, dist, 120_000, np.random.default_rng(0))
        assert np.abs(exact.total() - rb.total()).max() < 5e-3

    def test_exact_equals_empirical(self, cuckoo, keys):
        dist = UniformOverSet(cuckoo.universe_size, keys)
        exact = exact_contention(cuckoo, dist)
        emp = empirical_contention(
            cuckoo, dist, 40_000, np.random.default_rng(1)
        )
        assert np.abs(exact.total() - emp.total()).max() < 2e-2
        # Expected probes must agree tightly (it's an average).
        assert emp.expected_probes() == pytest.approx(
            exact.expected_probes(), rel=0.02
        )

    def test_point_mass_contention_is_plan_distribution(self, lcd, keys):
        x = int(keys[0])
        matrix = exact_contention(lcd, PointMass(lcd.universe_size, x))
        plan = lcd.probe_plan(x)
        assert matrix.num_steps == len(plan)
        for t, step in enumerate(plan):
            row_slice = matrix.phi[t].reshape(lcd.table.rows, lcd.table.s)
            support = step.support()
            assert np.allclose(
                row_slice[step.row, support], step.probability()
            )
            # Nothing outside the support.
            assert row_slice.sum() == pytest.approx(1.0)


class TestTheorem3Numbers:
    def test_lcd_contention_near_optimal(self, lcd, uniform_dist):
        matrix = exact_contention(lcd, uniform_dist)
        ratio = matrix.max_step_contention() * lcd.params.s
        assert ratio < 4.0, "Theorem 3: O(1) x optimal"

    def test_binary_search_contention_is_one(self, sorted_dict, uniform_dist):
        matrix = exact_contention(sorted_dict, uniform_dist)
        assert matrix.max_step_contention() == pytest.approx(1.0)

    def test_lcd_beats_fks(self, lcd, fks, uniform_dist):
        lcd_phi = exact_contention(lcd, uniform_dist).max_step_contention()
        fks_phi = exact_contention(fks, uniform_dist).max_step_contention()
        assert lcd_phi < fks_phi

    def test_lower_bound_floor(self, lcd, uniform_dist):
        """1/s <= max_j Phi_t(j) (paper Section 1.1)."""
        matrix = exact_contention(lcd, uniform_dist)
        per_step_max = matrix.phi.max(axis=1)
        active = matrix.step_mass() > 1 - 1e-9
        assert np.all(per_step_max[active] >= 1.0 / lcd.params.s - 1e-15)
