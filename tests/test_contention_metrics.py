"""Metrics: summaries, Lorenz/Gini, adversarial distributions, reports."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.contention import (
    ContentionReport,
    contention_summary,
    exact_contention,
    gini_coefficient,
    lorenz_curve,
    measure,
    worst_point_mass,
)
from repro.contention.metrics import simultaneous_probe_bound
from repro.distributions import PointMass


class TestGiniLorenz:
    def test_flat_distribution_gini_zero(self):
        assert gini_coefficient(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_single_spike_gini_near_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.99

    def test_gini_empty_and_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0
        assert gini_coefficient(np.array([])) == 0.0

    def test_lorenz_endpoints(self):
        curve = lorenz_curve(np.random.default_rng(0).random(50))
        assert curve[0] == pytest.approx(0.0)
        assert curve[-1] == pytest.approx(1.0)
        assert np.all(np.diff(curve) >= -1e-12)  # non-decreasing

    def test_lorenz_below_diagonal(self):
        curve = lorenz_curve(np.arange(1, 100, dtype=float))
        diagonal = np.linspace(0, 1, curve.size)
        assert np.all(curve <= diagonal + 1e-9)

    @given(st.lists(st.floats(0.0, 100.0), min_size=2, max_size=50))
    def test_gini_in_unit_interval(self, values):
        g = gini_coefficient(np.asarray(values))
        assert -1e-9 <= g <= 1.0


class TestSummaryAndReport:
    def test_summary_fields(self, lcd, uniform_dist):
        matrix = exact_contention(lcd, uniform_dist)
        s = contention_summary(matrix)
        assert s.scheme == "low-contention"
        assert s.optimal == pytest.approx(1.0 / lcd.params.s)
        assert s.ratio_step == pytest.approx(s.max_step_contention / s.optimal)
        assert 0 <= s.gini_total <= 1

    def test_measure_report_row(self, fks, uniform_dist):
        report = measure(fks, uniform_dist)
        row = report.row()
        assert row["scheme"] == "fks"
        assert row["n"] == fks.n
        assert row["max_probes"] == 4
        assert isinstance(str(report), str)

    def test_simultaneous_probe_bound(self, lcd, uniform_dist):
        matrix = exact_contention(lcd, uniform_dist)
        assert simultaneous_probe_bound(matrix, 100) == pytest.approx(
            100 * matrix.max_total_contention()
        )


class TestAdversarial:
    def test_worst_point_mass_is_one_for_positives(self, lcd, keys):
        x, peak, dist = worst_point_mass(lcd)
        assert peak == pytest.approx(1.0)  # the fixed data probe
        assert isinstance(dist, PointMass)
        assert lcd.contains(x)

    def test_worst_point_mass_matches_exact(self, fks):
        x, peak, dist = worst_point_mass(fks)
        measured = exact_contention(fks, dist).max_step_contention()
        assert measured == pytest.approx(peak)

    def test_candidate_pool_respected(self, cuckoo, negatives):
        x, peak, _ = worst_point_mass(cuckoo, negatives[:10])
        assert x in set(int(v) for v in negatives[:10])
        assert 0 < peak <= 1.0


class TestComponentBreakdown:
    def test_fks_headers_are_hottest(self, fks, uniform_dist):
        from repro.contention import component_breakdown

        matrix = exact_contention(fks, uniform_dist)
        breakdown = component_breakdown(matrix, fks)
        assert breakdown[0]["component"].startswith("bucket-header")
        assert breakdown[0]["peak_phi"] == matrix.max_total_contention()

    def test_binary_search_root_row(self, sorted_dict, uniform_dist):
        from repro.contention import component_breakdown

        matrix = exact_contention(sorted_dict, uniform_dist)
        breakdown = component_breakdown(matrix, sorted_dict)
        assert breakdown == sorted(
            breakdown, key=lambda d: d["peak_phi"], reverse=True
        )
        assert breakdown[0]["component"] == "sorted-keys"
        assert breakdown[0]["peak_phi"] == pytest.approx(1.0)

    def test_lcd_labels_cover_layout(self, lcd, uniform_dist):
        from repro.contention import component_breakdown

        matrix = exact_contention(lcd, uniform_dist)
        breakdown = component_breakdown(matrix, lcd)
        components = {row["component"] for row in breakdown}
        assert "z-vector" in components
        assert "GBAS" in components
        assert "data" in components
        assert len(breakdown) == lcd.table.rows
        # Theorem 3: even the hottest component is O(1) x the floor.
        assert breakdown[0]["peak_x_s"] < 4.0

    def test_label_count_mismatch_rejected(self, fks, uniform_dist):
        from repro.contention import component_breakdown
        from repro.errors import ParameterError

        matrix = exact_contention(fks, uniform_dist)

        class Wrong:
            def row_labels(self):
                return ["just-one"]

        with pytest.raises(ParameterError):
            component_breakdown(matrix, Wrong())
