"""Closed-form contention bounds vs exact measurements."""

import numpy as np
import pytest

from repro.contention import exact_contention
from repro.core.analysis import (
    con_keys,
    contention_ratio,
    optimal_contention,
    predicted_step_bounds,
)
from repro.distributions import UniformPositiveNegative


def test_con_keys_recovers_key_set(lcd, keys):
    assert np.array_equal(con_keys(lcd.construction), np.sort(keys))


def test_predicted_bounds_dominate_measured(lcd, keys, universe_size):
    """The §2.3 accounting must upper-bound the exact per-step maxima."""
    for p_mass in (1.0, 0.5):
        bounds = predicted_step_bounds(
            lcd.construction, universe_size, p_mass, exact_negatives=True
        )
        dist = UniformPositiveNegative(universe_size, keys, p_mass)
        matrix = exact_contention(lcd, dist)
        params = lcd.params
        per_row = matrix.phi.max(axis=1).tolist()
        d = params.degree
        # Coefficient steps: exactly 1/s.
        for t in range(2 * d):
            assert per_row[t] == pytest.approx(bounds.coefficient)
        assert per_row[2 * d] <= bounds.z + 1e-12
        assert per_row[2 * d + 1] <= bounds.gbas + 1e-12
        for t in range(2 * d + 2, 2 * d + 2 + params.rho):
            assert per_row[t] <= bounds.histogram + 1e-12
        assert per_row[2 * d + 2 + params.rho] <= bounds.phf + 1e-12
        assert per_row[2 * d + 3 + params.rho] <= bounds.data + 1e-12
        assert matrix.max_step_contention() <= bounds.overall + 1e-12


def test_lemma10_bound_version_also_dominates(lcd, keys, universe_size):
    """With exact_negatives=False the Lemma 10 estimate is used; it may be
    loose but the positive-only distribution must still be dominated."""
    bounds = predicted_step_bounds(
        lcd.construction, universe_size, 1.0, exact_negatives=False
    )
    dist = UniformPositiveNegative(universe_size, keys, 1.0)
    measured = exact_contention(lcd, dist).max_step_contention()
    assert measured <= bounds.overall + 1e-12


def test_overall_is_max_of_fields(lcd, universe_size):
    bounds = predicted_step_bounds(lcd.construction, universe_size, 0.5)
    d = bounds.as_dict()
    assert d["overall"] == max(
        v for k, v in d.items() if k != "overall"
    )


def test_optimal_and_ratio(lcd):
    opt = optimal_contention(lcd.construction)
    assert opt == pytest.approx(1.0 / lcd.params.s)
    assert contention_ratio(2 * opt, lcd.construction) == pytest.approx(2.0)


def test_theorem3_bound_is_o_one_over_n(lcd, universe_size):
    """The predicted overall bound times n is a small constant."""
    bounds = predicted_step_bounds(
        lcd.construction, universe_size, 0.5, exact_negatives=True
    )
    assert bounds.overall * lcd.n < 4.0
