"""Construction invariants: property P(S), layout, spans, histograms."""

import numpy as np
import pytest

from repro.cellprobe.table import EMPTY_CELL
from repro.core import SchemeParameters, construct
from repro.core.construction import sample_until_property_p
from repro.errors import ConstructionError
from repro.utils.bits import decode_unary_histogram
from repro.utils.primes import field_prime_for_universe


@pytest.fixture(scope="module")
def con(keys, universe_size):
    return construct(keys, universe_size, rng=np.random.default_rng(11))


class TestPropertyP:
    def test_conditions_hold(self, con, keys):
        p = con.params
        g_loads = np.bincount(con.h.g.eval_batch(keys), minlength=p.r)
        assert int(g_loads.max()) <= p.max_g_load
        assert int(con.group_loads.max()) <= p.max_group_load
        assert int(np.sum(con.loads.astype(np.int64) ** 2)) <= p.fks_budget

    def test_sampler_reports_trials(self, keys, universe_size):
        params = SchemeParameters(n=keys.size)
        prime = field_prime_for_universe(universe_size)
        h, loads, group_loads, trials = sample_until_property_p(
            params, keys, prime, np.random.default_rng(0)
        )
        assert trials >= 1
        assert int(loads.sum()) == keys.size

    def test_trial_budget_enforced(self, keys, universe_size):
        params = SchemeParameters(n=keys.size)
        prime = field_prime_for_universe(universe_size)
        with pytest.raises(ConstructionError):
            sample_until_property_p(
                params, keys, prime, np.random.default_rng(0), max_trials=0
            )


class TestLayout:
    def test_coefficient_rows_constant(self, con):
        p = con.params
        words = con.h.f.parameter_words() + con.h.g.parameter_words()
        for i, word in enumerate(words):
            row = [con.table.peek(i, j) for j in range(0, p.s, max(p.s // 7, 1))]
            assert all(v == word for v in row)

    def test_z_row_periodic(self, con):
        p = con.params
        for j in range(0, p.s, max(p.s // 23, 1)):
            assert con.table.peek(p.z_row, j) == int(con.h.z[j % p.r])

    def test_gbas_row_periodic_and_bounded(self, con):
        p = con.params
        for j in range(0, p.s, max(p.s // 23, 1)):
            v = con.table.peek(p.gbas_row, j)
            assert v == int(con.gbas[j % p.m])
            assert v <= p.s  # "GBAS(i) <= s for any i" (paper §2.2)

    def test_histograms_decode_to_loads(self, con):
        p = con.params
        for group in range(0, p.m, max(p.m // 11, 1)):
            words = [
                con.table.peek(row, group) for row in p.histogram_rows
            ]
            decoded = decode_unary_histogram(words, p.group_size, p.word_bits)
            member_buckets = group + p.m * np.arange(p.group_size)
            assert decoded == [int(con.loads[b]) for b in member_buckets]

    def test_spans_disjoint_and_within_gbas(self, con):
        p = con.params
        sq = con.loads.astype(np.int64) ** 2
        intervals = sorted(
            (int(con.span_starts[b]), int(con.span_starts[b] + sq[b]))
            for b in range(p.s)
            if sq[b] > 0
        )
        for (a1, b1), (a2, b2) in zip(intervals, intervals[1:]):
            assert b1 <= a2, "spans overlap"
        assert intervals[-1][1] <= p.s

    def test_data_row_contains_exactly_the_keys(self, con, keys):
        p = con.params
        row = np.array(
            [con.table.peek(p.data_row, j) for j in range(p.s)], dtype=np.uint64
        )
        stored = np.sort(row[row != np.uint64(EMPTY_CELL)].astype(np.int64))
        assert np.array_equal(stored, np.sort(keys))

    def test_phf_row_replicated_within_spans(self, con):
        p = con.params
        nonempty = np.nonzero(con.loads)[0][:10]
        for b in nonempty:
            start = int(con.span_starts[b])
            span = int(con.loads[b]) ** 2
            words = {con.table.peek(p.phf_row, start + j) for j in range(span)}
            assert len(words) == 1  # same word everywhere in the span
            assert words.pop() == con.inner[b].packed_word()

    def test_keys_at_perfect_hash_positions(self, con, keys):
        p = con.params
        hv = con.h.eval_batch(keys)
        for x, b in zip(keys[:30], hv[:30]):
            pos = int(con.span_starts[b]) + con.inner[b](int(x))
            assert con.table.peek(p.data_row, pos) == int(x)


class TestValidation:
    def test_duplicate_keys_rejected(self, universe_size):
        with pytest.raises(ConstructionError):
            construct([1, 1, 2], universe_size)

    def test_too_few_keys_rejected(self, universe_size):
        with pytest.raises(ConstructionError):
            construct([1], universe_size)

    def test_out_of_universe_keys_rejected(self):
        with pytest.raises(ConstructionError):
            construct([1, 100], 50)

    def test_params_n_mismatch(self, keys, universe_size):
        with pytest.raises(ConstructionError):
            construct(keys, universe_size, SchemeParameters(n=keys.size + 1))
