"""LowContentionDictionary: the §2.3 query algorithm end to end."""

import numpy as np
import pytest

from repro.cellprobe import CellProbeMachine
from repro.core import LowContentionDictionary, SchemeParameters


def test_probe_count_exact_for_nonempty_buckets(lcd, keys, rng):
    p = lcd.params
    machine = CellProbeMachine(lcd)
    for x in keys[:10]:
        record = machine.run_query(int(x), rng)
        assert record.num_probes == 2 * p.degree + p.rho + 4


def test_empty_bucket_stops_two_probes_early(lcd, rng):
    p = lcd.params
    empty = np.nonzero(lcd.construction.loads == 0)[0]
    assert empty.size > 0, "beta=2 guarantees empty buckets"
    xs = np.arange(1 << 14)
    hits = xs[np.isin(lcd.construction.h.eval_batch(xs), empty)]
    hits = hits[~lcd.contains_batch(hits)]
    assert hits.size > 0
    machine = CellProbeMachine(lcd)
    record = machine.run_query(int(hits[0]), rng)
    assert record.answer is False
    assert record.num_probes == 2 * p.degree + p.rho + 2


def test_one_probe_per_row(lcd, keys, rng):
    machine = CellProbeMachine(lcd)
    record = machine.run_query(int(keys[3]), rng)
    rows = [row for (_, row, _) in record.probes]
    assert len(rows) == len(set(rows)), "at most one probe per row"
    assert rows == sorted(rows)


def test_coefficient_probes_span_whole_row(lcd, keys):
    plan = lcd.probe_plan(int(keys[0]))
    p = lcd.params
    for i in range(2 * p.degree):
        assert plan[i].row == i
        assert plan[i].size == p.s  # uniform over the entire row


def test_z_probe_geometry(lcd, keys):
    p = lcd.params
    x = int(keys[0])
    gx = lcd.construction.h.g(x)
    step = lcd.probe_plan(x)[2 * p.degree]
    assert step.row == p.z_row
    support = step.support()
    assert np.all(support % p.r == gx)
    assert support.size == p.z_copies(gx)


def test_group_probes_congruent_mod_m(lcd, keys):
    p = lcd.params
    x = int(keys[1])
    hx = lcd.construction.h(x)
    plan = lcd.probe_plan(x)
    for step in plan[2 * p.degree + 1 : 2 * p.degree + 2 + p.rho]:
        assert np.all(step.support() % p.m == hx % p.m)
        assert step.size == p.group_size


def test_final_probe_hits_key_cell(lcd, keys):
    p = lcd.params
    con = lcd.construction
    for x in keys[:10]:
        x = int(x)
        plan = lcd.probe_plan(x)
        data_step = plan[-1]
        assert data_step.row == p.data_row
        cell = int(data_step.support()[0])
        assert con.table.peek(p.data_row, cell) == x


def test_rebuild_reproducible(keys, universe_size):
    a = LowContentionDictionary(keys, universe_size, rng=np.random.default_rng(5))
    b = LowContentionDictionary(keys, universe_size, rng=np.random.default_rng(5))
    assert a.construction.h.parameter_words() == b.construction.h.parameter_words()
    assert np.array_equal(a.construction.loads, b.construction.loads)


def test_custom_params_accepted(keys, universe_size):
    params = SchemeParameters(n=keys.size, beta=3.0, degree=4)
    d = LowContentionDictionary(
        keys, universe_size, rng=np.random.default_rng(5), params=params
    )
    assert d.params.beta == 3.0
    assert d.max_probes == 2 * 4 + d.params.rho + 4
    assert all(d.query(int(x), np.random.default_rng(1)) for x in keys[:10])


def test_construction_trials_exposed(lcd):
    assert lcd.construction_trials >= 1


def test_small_n_edge(universe_size):
    """The scheme degrades gracefully at tiny n (m=1, single group)."""
    keys = [3, 77, 1009, 4242]
    d = LowContentionDictionary(keys, universe_size, rng=np.random.default_rng(2))
    rng = np.random.default_rng(3)
    assert all(d.query(k, rng) for k in keys)
    assert not d.query(5, rng)
    machine = CellProbeMachine(d)
    machine.run_query(3, rng)
    machine.run_query(5, rng)
