"""SchemeParameters: constraint validation and derived sizes."""

import math

import pytest

from repro.core import SchemeParameters
from repro.errors import ParameterError


def test_defaults_valid_across_sizes():
    for n in (2, 16, 128, 1024, 1 << 15):
        p = SchemeParameters(n=n)
        assert p.s % p.m == 0, "m must divide s"
        assert p.s >= 2 * n, "beta >= 2"
        assert p.group_size == p.s // p.m
        assert p.rho >= 1
        assert p.num_rows == 2 * p.degree + p.rho + 4


def test_row_layout_is_contiguous():
    p = SchemeParameters(n=256)
    rows = (
        list(range(p.coefficient_rows))
        + [p.z_row, p.gbas_row]
        + list(p.histogram_rows)
        + [p.phf_row, p.data_row]
    )
    assert rows == list(range(p.num_rows))


def test_histogram_capacity_sufficient():
    """rho words must hold the worst-case histogram P(S) allows."""
    for n in (64, 256, 4096):
        p = SchemeParameters(n=n)
        worst_bits = p.group_size + p.max_group_load
        assert p.rho * p.word_bits >= worst_bits


def test_delta_interval_enforced():
    SchemeParameters(n=100, degree=3, delta=0.5)  # inside (0.4, 0.667)
    with pytest.raises(ParameterError):
        SchemeParameters(n=100, degree=3, delta=0.4)
    with pytest.raises(ParameterError):
        SchemeParameters(n=100, degree=3, delta=0.7)


def test_degree_must_exceed_two():
    with pytest.raises(ParameterError):
        SchemeParameters(n=100, degree=2)


def test_alpha_floor():
    d, c = 3, 2 * math.e
    alpha_min = d / (c * (math.log(c) - 1))
    with pytest.raises(ParameterError):
        SchemeParameters(n=100, alpha=alpha_min * 0.99)
    SchemeParameters(n=100, alpha=alpha_min * 1.01)


def test_beta_floor():
    with pytest.raises(ParameterError):
        SchemeParameters(n=100, beta=1.9)


def test_c_floor():
    with pytest.raises(ParameterError):
        SchemeParameters(n=100, c=math.e)


def test_n_floor():
    with pytest.raises(ParameterError):
        SchemeParameters(n=1)


def test_z_copies_geometry():
    p = SchemeParameters(n=256)
    total = sum(p.z_copies(i) for i in range(p.r))
    assert total == p.s  # the z row is exactly covered
    with pytest.raises(ParameterError):
        p.z_copies(p.r)


def test_group_size_tracks_log_n():
    """Groups contain Theta(log n) buckets."""
    for n in (256, 1024, 4096, 1 << 14):
        p = SchemeParameters(n=n)
        ratio = p.group_size / math.log(n)
        assert 1.0 <= ratio <= 8.0


def test_space_is_linear():
    per_key = [
        SchemeParameters(n=n).space_words / n for n in (256, 1024, 4096)
    ]
    assert max(per_key) / min(per_key) < 1.3  # flat words/key
