"""Independent table verification: valid builds pass, corruption is caught."""

import numpy as np
import pytest

from repro.cellprobe.table import EMPTY_CELL
from repro.core import LowContentionDictionary
from repro.core.verification import verify_dictionary, verify_table


@pytest.fixture()
def fresh(keys, universe_size):
    return LowContentionDictionary(
        keys, universe_size, rng=np.random.default_rng(77)
    )


class TestValidTables:
    def test_fresh_build_verifies(self, fresh, keys):
        assert verify_dictionary(fresh, keys) == []

    def test_session_fixture_verifies(self, lcd, keys):
        assert verify_dictionary(lcd, keys) == []

    def test_loaded_dictionary_verifies(self, lcd, keys, tmp_path):
        from repro.io import load_dictionary, save_dictionary

        path = tmp_path / "d.npz"
        save_dictionary(lcd, path)
        assert verify_dictionary(load_dictionary(path), keys) == []

    def test_wrong_expected_keys_flagged(self, fresh, keys):
        wrong = list(keys[:-1]) + [int(keys[-1]) + 1]
        problems = verify_dictionary(fresh, wrong)
        assert any("key set" in p for p in problems)


class TestCorruptionDetection:
    def _corrupt(self, fresh, row, col, value):
        fresh.table._cells[row, col] = np.uint64(value)

    def test_coefficient_row_tamper(self, fresh, keys):
        self._corrupt(fresh, 0, 5, fresh.table.peek(0, 5) + 1)
        problems = verify_dictionary(fresh, keys)
        assert any("coefficient row 0" in p for p in problems)

    def test_z_row_tamper(self, fresh, keys):
        p = fresh.params
        self._corrupt(
            fresh, p.z_row, p.r + 3, (fresh.table.peek(p.z_row, p.r + 3) + 1) % p.s
        )
        problems = verify_dictionary(fresh, keys)
        assert any("z row" in p_ for p_ in problems)

    def test_gbas_tamper(self, fresh, keys):
        p = fresh.params
        self._corrupt(fresh, p.gbas_row, 0, fresh.table.peek(p.gbas_row, 0) + 1)
        problems = verify_dictionary(fresh, keys)
        assert any("GBAS" in p_ for p_ in problems)

    def test_histogram_tamper(self, fresh, keys):
        p = fresh.params
        row = next(iter(p.histogram_rows))
        self._corrupt(fresh, row, 0, fresh.table.peek(row, 0) ^ 1)
        problems = verify_dictionary(fresh, keys)
        assert problems  # periodicity, load total, or GBAS mismatch

    def test_data_key_swap(self, fresh, keys):
        p = fresh.params
        con = fresh.construction
        b = int(np.nonzero(con.loads)[0][0])
        start = int(con.span_starts[b])
        offset = next(
            j
            for j in range(int(con.loads[b]) ** 2)
            if fresh.table.peek(p.data_row, start + j) != EMPTY_CELL
        )
        key = fresh.table.peek(p.data_row, start + offset)
        self._corrupt(fresh, p.data_row, start + offset, key + 1)
        problems = verify_dictionary(fresh, keys)
        assert problems

    def test_stray_data_cell(self, fresh, keys):
        p = fresh.params
        con = fresh.construction
        total_span = int((con.loads.astype(np.int64) ** 2).sum())
        if total_span >= p.s:
            pytest.skip("no unowned data cells in this instance")
        self._corrupt(fresh, p.data_row, p.s - 1, 12345)
        problems = verify_dictionary(fresh, keys)
        assert any("unowned" in p_ for p_ in problems)

    def test_phf_span_tamper(self, fresh, keys):
        p = fresh.params
        con = fresh.construction
        multi = np.nonzero(con.loads >= 2)[0]
        if multi.size == 0:
            pytest.skip("no multi-key buckets in this instance")
        b = int(multi[0])
        start = int(con.span_starts[b])
        self._corrupt(
            fresh, p.phf_row, start + 1, fresh.table.peek(p.phf_row, start) + 1
        )
        problems = verify_dictionary(fresh, keys)
        assert any("span not constant" in p_ for p_ in problems)

    def test_shape_mismatch(self, fresh, keys):
        from repro.cellprobe import Table

        wrong = Table(rows=2, s=4)
        problems = verify_table(wrong, fresh.params, fresh.prime)
        assert any("shape" in p_ for p_ in problems)
