"""Cross-scheme contract tests: every dictionary obeys the protocol.

These tests run identically against all six schemes:

- correctness on all keys and on negatives;
- executed probes conform to the analytic plan (machine validation);
- batch plans agree with single-query plans, query by query;
- probe counts respect ``max_probes``;
- honest queries never read construction-private state (checked
  indirectly: the queries succeed using only a fresh rebuild of the
  reader side from parameter words — covered per-scheme).
"""

import numpy as np
import pytest

from repro.cellprobe import CellProbeMachine

SCHEMES = [
    "low-contention",
    "fks",
    "dm",
    "cuckoo",
    "binary-search",
    "linear-probing",
]


@pytest.fixture(params=SCHEMES)
def scheme(request, all_dictionaries):
    return all_dictionaries[request.param]


def test_all_positive_queries_found(scheme, keys, rng):
    for x in keys:
        assert scheme.query(int(x), rng) is True


def test_negative_queries_rejected(scheme, negatives, rng):
    for x in negatives:
        assert scheme.query(int(x), rng) is False


def test_plan_conformance(scheme, keys, negatives, rng):
    machine = CellProbeMachine(scheme, check_plan=True)
    for x in list(keys[:20]) + list(negatives[:20]):
        record = machine.run_query(int(x), rng)
        assert record.num_probes <= scheme.max_probes


def test_batch_plan_agrees_with_single(scheme, keys, negatives):
    xs = np.concatenate([keys[:25], negatives[:25]])
    batch = scheme.probe_plan_batch(xs)
    for i, x in enumerate(xs):
        single = scheme.probe_plan(int(x))
        batch_steps = [st.step_for(i) for st in batch]
        batch_steps = [b for b in batch_steps if b is not None]
        assert len(batch_steps) == len(single), f"query {x}"
        for b, s in zip(batch_steps, single):
            assert b.row == s.row, f"query {x}"
            assert np.array_equal(b.support(), s.support()), f"query {x}"


def test_plan_lengths_bounded(scheme, keys, negatives):
    xs = np.concatenate([keys, negatives])
    for x in xs[:50]:
        assert len(scheme.probe_plan(int(x))) <= scheme.max_probes


def test_contains_matches_membership(scheme, keys, negatives):
    assert all(scheme.contains(int(x)) for x in keys)
    assert not any(scheme.contains(int(x)) for x in negatives)
    batch = scheme.contains_batch(np.concatenate([keys[:10], negatives[:10]]))
    assert batch.tolist() == [True] * 10 + [False] * 10


def test_out_of_universe_query_rejected(scheme, rng):
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        scheme.query(scheme.universe_size, rng)
    with pytest.raises(QueryError):
        scheme.probe_plan(-1)


def test_space_is_positive_and_reported(scheme):
    assert scheme.space_words == scheme.table.num_cells > 0
    assert scheme.n > 0


def test_probe_rows_within_table(scheme, keys, negatives):
    for x in list(keys[:10]) + list(negatives[:10]):
        for step in scheme.probe_plan(int(x)):
            assert 0 <= step.row < scheme.table.rows
            assert int(step.support().max()) < scheme.table.s


def test_query_determinism_of_answers(scheme, keys, rng):
    """Randomized probes, deterministic answers."""
    x = int(keys[7])
    answers = {scheme.query(x, np.random.default_rng(s)) for s in range(10)}
    assert answers == {True}
