"""Whole-structure replication wrapper tests."""

import numpy as np
import pytest

from repro.cellprobe import CellProbeMachine
from repro.contention import exact_contention
from repro.dictionaries import (
    FKSDictionary,
    ReplicatedDictionary,
    SortedArrayDictionary,
)
from repro.distributions import UniformOverSet, UniformPositiveNegative
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def replicated(keys, universe_size):
    inner = SortedArrayDictionary(keys, universe_size)
    return ReplicatedDictionary(inner, replicas=8)


class TestCorrectness:
    def test_queries_match_inner(self, replicated, keys, negatives, rng):
        for x in list(keys[:30]) + list(negatives[:30]):
            assert replicated.query(int(x), rng) == replicated.contains(int(x))

    def test_plan_conformance(self, replicated, keys, negatives, rng):
        machine = CellProbeMachine(replicated, check_plan=True)
        for x in list(keys[:10]) + list(negatives[:10]):
            machine.run_query(int(x), rng)

    def test_inner_table_restored_after_query(self, replicated, keys, rng):
        inner_table = replicated.inner.table
        replicated.query(int(keys[0]), rng)
        assert replicated.inner.table is inner_table

    def test_replicas_spread_probes(self, replicated, keys):
        """Across many queries, probes land on multiple replicas."""
        rng = np.random.default_rng(0)
        counter = replicated.table.counter
        counter.reset()
        for _ in range(64):
            replicated.query(int(keys[0]), rng)
        counts = counter.total_counts().reshape(replicated.table.rows, -1)
        inner_rows = replicated.inner.table.rows
        replica_hits = [
            counts[r * inner_rows : (r + 1) * inner_rows].sum()
            for r in range(replicated.replicas)
        ]
        assert sum(1 for h in replica_hits if h > 0) >= 4
        counter.reset()


class TestContention:
    def test_contention_divides_by_R(self, keys, universe_size):
        dist = UniformPositiveNegative(universe_size, keys, 0.5)
        inner = SortedArrayDictionary(keys, universe_size)
        base = exact_contention(inner, dist).max_step_contention()
        for R in (2, 8):
            rep = ReplicatedDictionary(
                SortedArrayDictionary(keys, universe_size), R
            )
            phi = exact_contention(rep, dist).max_step_contention()
            assert phi == pytest.approx(base / R)

    def test_expected_probes_unchanged(self, keys, universe_size):
        dist = UniformOverSet(universe_size, keys)
        inner = FKSDictionary(
            keys, universe_size, rng=np.random.default_rng(1)
        )
        base = exact_contention(inner, dist).expected_probes()
        rep = ReplicatedDictionary(inner, 4)
        rep_probes = exact_contention(rep, dist).expected_probes()
        assert rep_probes == pytest.approx(base)

    def test_space_multiplies(self, replicated):
        assert (
            replicated.space_words
            == replicated.replicas * replicated.inner.space_words
        )


class TestValidation:
    def test_replicas_must_be_positive(self, keys, universe_size):
        inner = SortedArrayDictionary(keys, universe_size)
        with pytest.raises(ParameterError):
            ReplicatedDictionary(inner, 0)

    def test_r1_behaves_like_inner(self, keys, universe_size, rng):
        inner = SortedArrayDictionary(keys, universe_size)
        rep = ReplicatedDictionary(inner, 1)
        dist = UniformOverSet(universe_size, keys)
        assert exact_contention(rep, dist).max_step_contention() == (
            pytest.approx(
                exact_contention(inner, dist).max_step_contention()
            )
        )
