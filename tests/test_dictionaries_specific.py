"""Scheme-specific structural tests for the baselines."""

import numpy as np
import pytest

from repro.cellprobe.steps import FixedCell, UniformStrided
from repro.dictionaries import (
    CuckooDictionary,
    FKSDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
)
from repro.errors import ConstructionError


class TestSortedArray:
    def test_root_cell_always_probed(self, sorted_dict, keys, negatives):
        """The paper's opening observation: the middle cell is on every path."""
        root = sorted_dict.n // 2
        for x in list(keys[:20]) + list(negatives[:20]):
            plan = sorted_dict.probe_plan(int(x))
            assert isinstance(plan[0], FixedCell)
            assert plan[0].column == root

    def test_space_is_exactly_n(self, sorted_dict):
        assert sorted_dict.space_words == sorted_dict.n

    def test_probe_count_logarithmic(self, sorted_dict, negatives):
        import math

        bound = math.ceil(math.log2(sorted_dict.n)) + 1
        for x in negatives[:30]:
            assert len(sorted_dict.probe_plan(int(x))) <= bound


class TestLinearProbing:
    def test_slots_hold_all_keys(self, linear_probing, keys):
        stored = linear_probing._slots[linear_probing._slots >= 0]
        assert sorted(stored.tolist()) == sorted(keys.tolist())

    def test_load_factor_respected(self, keys, universe_size):
        d = LinearProbingDictionary(
            keys, universe_size, rng=np.random.default_rng(0), load_factor=0.25
        )
        assert d.num_slots >= 4 * len(keys)

    def test_bad_load_factor(self, keys, universe_size):
        with pytest.raises(ConstructionError):
            LinearProbingDictionary(
                keys, universe_size, load_factor=1.5
            )

    def test_param_step_is_replicated(self, linear_probing, keys):
        plan = linear_probing.probe_plan(int(keys[0]))
        assert isinstance(plan[0], UniformStrided)
        assert plan[0].count == linear_probing.replication > 1


class TestFKS:
    def test_fks_condition_holds(self, fks):
        assert int(np.sum(fks.loads.astype(np.int64) ** 2)) <= 4 * fks.n

    def test_loads_partition_keys(self, fks):
        assert int(fks.loads.sum()) == fks.n

    def test_offsets_are_prefix_sums_of_squares(self, fks):
        sq = fks.loads.astype(np.int64) ** 2
        expected = np.concatenate([[0], np.cumsum(sq)[:-1]])
        assert np.array_equal(fks.offsets, expected)

    def test_inner_hashes_are_perfect(self, fks, keys):
        buckets = fks.level1.buckets(keys)
        for i, bucket in enumerate(buckets):
            if len(bucket) > 0:
                assert fks.inner[i] is not None
                assert fks.inner[i].is_perfect_on(bucket)
                assert fks.inner[i].range_size == len(bucket) ** 2

    def test_empty_bucket_query_stops_early(self, fks, universe_size, rng):
        empty = np.nonzero(fks.loads == 0)[0]
        if empty.size == 0:
            pytest.skip("no empty buckets in this instance")
        # Find a universe element hashing to an empty bucket.
        xs = np.arange(min(universe_size, 1 << 14))
        hits = xs[np.isin(fks.level1.eval_batch(xs), empty)]
        assert hits.size > 0
        x = int(hits[0])
        plan = fks.probe_plan(x)
        assert len(plan) == 2  # params + header A only
        assert fks.query(x, rng) is False

    def test_single_copy_params_have_contention_one(self, keys, universe_size):
        d = FKSDictionary(
            keys, universe_size, rng=np.random.default_rng(3),
            param_replication=1,
        )
        plan = d.probe_plan(int(keys[0]))
        assert plan[0].size == 1  # classic layout: one hot parameter cell


class TestCuckoo:
    def test_every_key_in_one_of_its_cells(self, cuckoo, keys):
        for x in keys:
            x = int(x)
            in1 = int(cuckoo._slots1[cuckoo.h1(x)]) == x
            in2 = int(cuckoo._slots2[cuckoo.h2(x)]) == x
            assert in1 or in2
            assert not (in1 and in2)  # stored exactly once

    def test_occupancy_counts(self, cuckoo, keys):
        stored = int((cuckoo._slots1 >= 0).sum() + (cuckoo._slots2 >= 0).sum())
        assert stored == len(keys)

    def test_positive_in_t1_needs_three_probes(self, cuckoo, keys):
        t1_keys = [
            int(x) for x in keys if int(cuckoo._slots1[cuckoo.h1(int(x))]) == int(x)
        ]
        assert t1_keys, "instance should place some keys in T1"
        plan = cuckoo.probe_plan(t1_keys[0])
        assert len(plan) == 3  # 2 params + T1 hit

    def test_negative_needs_four_probes(self, cuckoo, negatives):
        plan = cuckoo.probe_plan(int(negatives[0]))
        assert len(plan) == 4

    def test_side_size(self, cuckoo, keys):
        assert cuckoo.side_size >= int(np.ceil(1.3 * len(keys)))

    def test_epsilon_validation(self, keys, universe_size):
        with pytest.raises(ConstructionError):
            CuckooDictionary(keys, universe_size, epsilon=0)


class TestDMDictionary:
    def test_z_step_geometry(self, dm_dict, keys):
        """The z probe spreads over columns congruent to g(x) mod r."""
        x = int(keys[0])
        W = len(dm_dict.param_words)
        plan = dm_dict.probe_plan(x)
        z_step = plan[W]
        gx = dm_dict.level1.g(x)
        support = z_step.support()
        assert np.all(support % dm_dict.r == gx)
        assert support.size == dm_dict._z_copies(gx)
        assert int(support.max()) < dm_dict.table.s

    def test_z_row_contents(self, dm_dict):
        for j in range(0, dm_dict.table.s, max(dm_dict.table.s // 13, 1)):
            assert dm_dict.table.peek(1, j) == int(
                dm_dict.level1.z[j % dm_dict.r]
            )

    def test_level1_is_dm_formula(self, dm_dict, keys):
        h = dm_dict.level1
        for x in keys[:20]:
            x = int(x)
            assert h(x) == (h.f(x) + int(h.z[h.g(x)])) % dm_dict.num_buckets

    def test_default_r_in_lemma9_interval(self):
        from repro.dictionaries.dm_dict import default_r

        for n in (64, 256, 4096):
            for d in (3, 4, 5):
                r = default_r(n, d)
                lo, hi = 2.0 / (d + 2.0), 1.0 - 1.0 / d
                # r = n^(1-delta) for some delta strictly inside (lo, hi):
                # loose check since default_r rounds.
                assert 1 <= r <= n

    def test_max_bucket_load_small(self, dm_dict):
        """Lemma 9-style behaviour: max load far below sqrt(n)."""
        assert int(dm_dict.loads.max()) <= 4 * np.log2(dm_dict.n)
