"""Query-distribution semantics: pmf, sampling, support enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions import (
    ExplicitDistribution,
    MixtureDistribution,
    PointMass,
    UniformOverSet,
    UniformPositiveNegative,
    UniformQueries,
    ZipfDistribution,
)
from repro.errors import DistributionError


class TestUniformPositiveNegative:
    def test_total_mass_one(self, keys, universe_size):
        d = UniformPositiveNegative(universe_size, keys, 0.3)
        assert d.total_mass() == pytest.approx(1.0)

    def test_pmf_values(self, keys, universe_size):
        d = UniformPositiveNegative(universe_size, keys, 0.5)
        n = keys.size
        assert d.pmf(int(keys[0])) == pytest.approx(0.5 / n)
        neg = 0 if 0 not in set(keys.tolist()) else 1
        while neg in set(keys.tolist()):
            neg += 1
        assert d.pmf(neg) == pytest.approx(0.5 / (universe_size - n))

    def test_sampling_class_balance(self, keys, universe_size, rng):
        d = UniformPositiveNegative(universe_size, keys, 0.7)
        samples = d.sample(rng, 20000)
        frac_pos = float(np.isin(samples, keys).mean())
        assert abs(frac_pos - 0.7) < 0.02

    def test_negative_sampler_never_hits_keys(self, keys, universe_size, rng):
        d = UniformPositiveNegative(universe_size, keys, 0.0)
        samples = d.sample(rng, 5000)
        assert not np.isin(samples, keys).any()
        assert int(samples.min()) >= 0
        assert int(samples.max()) < universe_size

    def test_negative_sampler_uniformity(self, rng):
        # Small universe: check every non-key is hit ~equally.
        keys = [2, 5, 6]
        d = UniformPositiveNegative(10, keys, 0.0)
        samples = d.sample(rng, 14000)
        counts = np.bincount(samples, minlength=10)
        assert all(counts[k] == 0 for k in keys)
        non_keys = [i for i in range(10) if i not in keys]
        freq = counts[non_keys] / samples.size
        assert np.abs(freq - 1 / 7).max() < 0.02

    def test_enumerate_mass_covers_support(self):
        keys = [1, 4, 7]
        d = UniformPositiveNegative(12, keys, 0.5)
        seen = {}
        for xs, ws in d.enumerate_mass(chunk_size=4):
            for x, w in zip(xs.tolist(), ws.tolist()):
                assert x not in seen
                seen[x] = w
        assert set(seen) == set(range(12))
        assert sum(seen.values()) == pytest.approx(1.0)
        assert seen[1] == pytest.approx(0.5 / 3)
        assert seen[0] == pytest.approx(0.5 / 9)

    def test_pure_positive(self, keys, universe_size, rng):
        d = UniformPositiveNegative(universe_size, keys, 1.0)
        assert d.support_size == keys.size
        assert np.isin(d.sample(rng, 100), keys).all()

    def test_rejects_bad_keys(self):
        with pytest.raises(DistributionError):
            UniformPositiveNegative(10, [])
        with pytest.raises(DistributionError):
            UniformPositiveNegative(10, [3, 3])
        with pytest.raises(DistributionError):
            UniformPositiveNegative(10, [10])

    def test_full_universe_needs_pure_positive(self):
        with pytest.raises(DistributionError):
            UniformPositiveNegative(3, [0, 1, 2], 0.5)
        UniformPositiveNegative(3, [0, 1, 2], 1.0)  # fine


class TestUniformQueries:
    def test_is_flat_over_universe(self, keys, universe_size):
        d = UniformQueries(universe_size, keys)
        xs = np.array([0, int(keys[0]), universe_size - 1])
        assert np.allclose(d.pmf_batch(xs), 1.0 / universe_size)


class TestUniformOverSet:
    def test_basics(self, rng):
        d = UniformOverSet(100, [3, 1, 4, 15, 92])
        assert d.support_size == 5
        assert d.pmf(4) == pytest.approx(0.2)
        assert d.pmf(5) == 0.0
        assert set(d.sample(rng, 200).tolist()) <= {3, 1, 4, 15, 92}


class TestExplicitAndPointMass:
    def test_point_mass(self, rng):
        d = PointMass(50, 7)
        assert d.pmf(7) == 1.0 and d.pmf(8) == 0.0
        assert np.all(d.sample(rng, 20) == 7)
        assert d.total_mass() == pytest.approx(1.0)

    def test_explicit_drops_zero_mass(self):
        d = ExplicitDistribution(10, [1, 2, 3], [0.5, 0.0, 0.5])
        assert d.support_size == 2

    def test_explicit_validation(self):
        with pytest.raises(DistributionError):
            ExplicitDistribution(10, [1, 1], [0.5, 0.5])
        with pytest.raises(DistributionError):
            ExplicitDistribution(10, [10], [1.0])
        with pytest.raises(DistributionError):
            ExplicitDistribution(10, [1, 2], [0.7, 0.7])


class TestZipf:
    def test_mass_ordering(self):
        d = ZipfDistribution(100, [10, 20, 30], exponent=1.0)
        assert d.pmf(10) > d.pmf(20) > d.pmf(30)
        assert d.total_mass() == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        d = ZipfDistribution(100, [1, 2, 3, 4], exponent=0.0)
        assert np.allclose(d.pmf_batch(np.array([1, 2, 3, 4])), 0.25)

    def test_shuffled_ranks_deterministic(self):
        a = ZipfDistribution(100, range(10), 1.0, shuffle_ranks=5)
        b = ZipfDistribution(100, range(10), 1.0, shuffle_ranks=5)
        xs = np.arange(10)
        assert np.allclose(a.pmf_batch(xs), b.pmf_batch(xs))


class TestMixture:
    def test_pmf_is_weighted_sum(self, rng):
        c1 = PointMass(20, 3)
        c2 = UniformOverSet(20, [3, 5])
        mix = MixtureDistribution([c1, c2], [0.25, 0.75])
        assert mix.pmf(3) == pytest.approx(0.25 + 0.75 * 0.5)
        assert mix.pmf(5) == pytest.approx(0.75 * 0.5)
        assert mix.total_mass() == pytest.approx(1.0)

    def test_sampling_respects_weights(self, rng):
        mix = MixtureDistribution(
            [PointMass(10, 0), PointMass(10, 9)], [0.8, 0.2]
        )
        samples = mix.sample(rng, 10000)
        assert abs(float((samples == 0).mean()) - 0.8) < 0.02

    def test_universe_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            MixtureDistribution([PointMass(10, 0), PointMass(11, 0)], [0.5, 0.5])


@settings(max_examples=25, deadline=None)
@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 1000),
)
def test_uniform_posneg_mass_property(p, seed):
    rng = np.random.default_rng(seed)
    keys = rng.choice(200, size=10, replace=False)
    d = UniformPositiveNegative(200, keys, p)
    assert d.total_mass() == pytest.approx(1.0)
    xs = np.arange(200)
    assert d.pmf_batch(xs).sum() == pytest.approx(1.0)
