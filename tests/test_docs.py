"""Documentation stays honest: tutorial code runs, docs reference real things."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_tutorial_code_blocks_execute(tmp_path, monkeypatch):
    """Every ```python block in docs/TUTORIAL.md runs top to bottom."""
    monkeypatch.chdir(tmp_path)  # the persistence block writes a file
    text = (ROOT / "docs" / "TUTORIAL.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 8
    namespace: dict = {}
    for i, block in enumerate(blocks):
        exec(compile(block, f"<tutorial block {i + 1}>", "exec"), namespace)


def test_paper_map_symbols_exist():
    """Every `repro.*` dotted path named in docs/PAPER_MAP.md resolves."""
    import importlib

    text = (ROOT / "docs" / "PAPER_MAP.md").read_text()
    paths = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
    assert len(paths) > 30
    missing = []
    for dotted in sorted(paths):
        parts = dotted.split(".")
        obj = None
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            rest = parts[cut:]
            try:
                for attr in rest:
                    obj = getattr(obj, attr)
            except AttributeError:
                obj = None
            break
        if obj is None:
            missing.append(dotted)
    assert not missing, f"PAPER_MAP references unknown symbols: {missing}"


def test_experiments_md_covers_registry():
    """EXPERIMENTS.md has a section for every registered experiment."""
    from repro.experiments import EXPERIMENTS

    text = (ROOT / "EXPERIMENTS.md").read_text()
    for eid in EXPERIMENTS:
        assert f"## {eid} —" in text or f"## {eid} –" in text, eid


def test_design_md_maps_every_experiment():
    from repro.experiments import EXPERIMENTS

    text = (ROOT / "DESIGN.md").read_text()
    for eid in EXPERIMENTS:
        assert f"| {eid} |" in text, eid


def test_readme_quickstart_runs(tmp_path, monkeypatch):
    """The README's quickstart block executes."""
    monkeypatch.chdir(tmp_path)
    text = (ROOT / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert blocks, "README must contain a python quickstart"
    exec(compile(blocks[0], "<readme quickstart>", "exec"), {})
