"""Dynamic dictionary: correctness, level discipline, cost accounting."""

import numpy as np
import pytest

from repro.distributions import UniformPositiveNegative
from repro.dynamic import DynamicLowContentionDictionary
from repro.dynamic.levels import (
    LevelStructure,
    SingletonDictionary,
    encode_delete,
    encode_insert,
)
from repro.errors import ParameterError, QueryError

UNIVERSE = 1 << 16


@pytest.fixture()
def dyn():
    return DynamicLowContentionDictionary(
        UNIVERSE, rng=np.random.default_rng(0)
    )


class TestCorrectness:
    def test_insert_then_query(self, dyn, rng):
        dyn.insert(42)
        assert dyn.query(42, rng) is True
        assert dyn.query(43, rng) is False
        assert dyn.contains(42)

    def test_delete(self, dyn, rng):
        dyn.insert(7)
        dyn.delete(7)
        assert dyn.query(7, rng) is False
        assert not dyn.contains(7)

    def test_reinsert_after_delete(self, dyn, rng):
        dyn.insert(5)
        dyn.delete(5)
        dyn.insert(5)
        assert dyn.query(5, rng) is True

    def test_idempotent_operations(self, dyn, rng):
        for _ in range(4):
            dyn.insert(9)
        dyn.delete(100)  # absent: no-op
        assert dyn.live_count == 1
        assert dyn.query(9, rng) is True

    def test_random_stream_matches_reference_set(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(1)
        )
        ref = set()
        for step in range(800):
            k = int(rng.integers(0, 500))
            if rng.random() < 0.65:
                dyn.insert(k)
                ref.add(k)
            else:
                dyn.delete(k)
                ref.discard(k)
            if step % 80 == 0:
                for probe in rng.integers(0, 500, size=8):
                    assert dyn.query(int(probe), rng) == (int(probe) in ref)
        assert dyn.live_count == len(ref)
        assert set(dyn.live_keys().tolist()) == ref

    def test_out_of_universe(self, dyn, rng):
        with pytest.raises(QueryError):
            dyn.query(UNIVERSE, rng)
        with pytest.raises(ParameterError):
            dyn.insert(-1)


class TestLevelDiscipline:
    def test_binary_counter_shape(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(2)
        )
        for k in range(1, 9):  # 8 distinct inserts, no deletes
            dyn.insert(k)
        # 8 = 2^3 ops -> single level of 8 (or a flattened equivalent).
        assert dyn.live_count == 8
        sizes = [s for s in dyn.level_sizes if s]
        assert sum(sizes) == 8

    def test_flatten_after_heavy_deletion(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(3)
        )
        for k in range(32):
            dyn.insert(k)
        for k in range(30):
            dyn.delete(k)
        assert dyn.live_count == 2
        # Flattening keeps total entries within 2x live.
        assert sum(dyn.level_sizes) <= max(2 * dyn.live_count, 8)
        for k in range(32):
            assert dyn.contains(k) == (k >= 30)

    def test_space_and_probes_reported(self, dyn):
        dyn.insert(1)
        dyn.insert(2)
        assert dyn.space_words > 0
        assert dyn.max_probes > 0


class TestAccounting:
    def test_update_and_query_counts(self, dyn, rng):
        dyn.insert(1)
        dyn.insert(2)
        dyn.query(1, rng)
        assert dyn.account.updates == 2
        assert dyn.account.queries == 1
        assert dyn.account.rebuilds

    def test_amortized_cost_logarithmic(self, rng):
        """Cells written per update stays O(rows * log(ops)) — far from
        the O(n) of rebuild-everything-every-time."""
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(4)
        )
        n_ops = 512
        for k in range(n_ops):
            dyn.insert(k)
        amortized = dyn.account.amortized_write_cost()
        assert amortized < 40 * np.log2(n_ops)
        # Naive full-rebuild would pay ~ total space per update.
        assert amortized < dyn.space_words / 4

    def test_write_contention_dominated_by_small_levels(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(5)
        )
        for k in range(128):
            dyn.insert(k)
        by_level = dyn.account.rebuild_count_by_level()
        # Level 0 is rebuilt most often (every other op lands there).
        assert by_level[0] == max(by_level.values())
        assert 0 < dyn.account.max_write_contention() <= 1.0


class TestContentionMeasurement:
    def test_padding_restores_low_contention(self):
        results = {}
        for width in (0, 512):
            dyn = DynamicLowContentionDictionary(
                UNIVERSE, rng=np.random.default_rng(6), min_level_width=width
            )
            rng = np.random.default_rng(7)
            for _ in range(300):
                k = int(rng.integers(0, 600))
                if rng.random() < 0.75:
                    dyn.insert(k)
                else:
                    dyn.delete(k)
            dist = UniformPositiveNegative(UNIVERSE, dyn.live_keys(), 0.5)
            res = dyn.empirical_query_contention(
                dist, 1200, np.random.default_rng(8)
            )
            results[width] = res["global_max_contention"]
        assert results[512] < results[0] / 4

    def test_contention_report_structure(self, dyn):
        dyn.insert(3)
        dyn.insert(4)
        dyn.insert(5)
        dist = UniformPositiveNegative(UNIVERSE, dyn.live_keys(), 0.5)
        res = dyn.empirical_query_contention(
            dist, 400, np.random.default_rng(9)
        )
        assert res["mean_probes"] > 0
        assert res["per_level"]
        for row in res["per_level"]:
            assert row["max_contention"] >= row["floor_1_over_s"] - 1e-9


class TestSingleton:
    def test_semantics(self, rng):
        s = SingletonDictionary([99], 1000, width=32)
        assert s.query(99, rng) is True
        assert s.query(98, rng) is False
        assert s.max_probes == 1
        plan = s.probe_plan(99)
        assert len(plan) == 1 and plan[0].size == 32

    def test_batch_plan(self, rng):
        s = SingletonDictionary([99], 1000)
        steps = s.probe_plan_batch(np.array([1, 99]))
        assert len(steps) == 1 and steps[0].shared

    def test_requires_one_key(self):
        with pytest.raises(ParameterError):
            SingletonDictionary([1, 2], 1000)


class TestEncoding:
    def test_encode_disjoint(self):
        assert encode_insert(5) != encode_delete(5)
        assert encode_insert(5) // 2 == encode_delete(5) // 2 == 5


class TestLevelEdgeCases:
    """Flatten landing, tombstone dropping, and width padding corners."""

    def test_flatten_single_live_key_lands_at_level_zero(self):
        ls = LevelStructure(1 << 10, np.random.default_rng(10))
        # One live key buried under eight tombstones of dead weight:
        # total = 9 > 2 * max(live=1, 1) and >= 8, so the next check
        # flattens — ceil(log2(1)) = 0, a singleton at level 0.
        ls._install(0, {1: True})
        ls._install(3, {k: False for k in range(2, 10)})
        ls._maybe_flatten()
        nonempty = ls.nonempty_levels
        assert len(nonempty) == 1
        assert nonempty[0].index == 0
        assert nonempty[0].entries == {1: True}
        assert isinstance(nonempty[0].structure, SingletonDictionary)

    def test_flatten_empty_live_set_clears_all_levels(self):
        ls = LevelStructure(1 << 10, np.random.default_rng(11))
        ls._install(3, {k: False for k in range(8)})
        ls._maybe_flatten()
        assert ls.nonempty_levels == []
        assert ls.total_entries == 0
        assert ls.live_keys() == []

    def test_delete_dropped_when_nothing_older(self):
        ls = LevelStructure(1 << 10, np.random.default_rng(12))
        # A tombstone merging below every non-empty level has nothing
        # older to cancel: it is dropped and no level is installed.
        ls.apply(5, False)
        assert ls.total_entries == 0
        assert ls.nonempty_levels == []

    def test_delete_kept_when_older_level_exists(self):
        ls = LevelStructure(1 << 10, np.random.default_rng(13))
        ls.apply(1, True)
        ls.apply(2, True)  # carries {1, 2} into level 1
        ls.apply(3, False)  # level 1 is older and non-empty: kept
        assert ls.levels[0] is not None
        assert ls.levels[0].entries == {3: False}
        assert ls.state_of(3) is False
        assert ls.live_keys() == [1, 2]

    def test_min_level_width_pads_singletons(self):
        for width, expected in ((0, 64), (256, 256)):
            ls = LevelStructure(
                1 << 10, np.random.default_rng(14), min_level_width=width
            )
            ls.apply(7, True)
            (level,) = ls.nonempty_levels
            assert isinstance(level.structure, SingletonDictionary)
            assert level.structure.table.s == expected

    def test_seeded_replay_is_deterministic(self):
        digests, sizes, spaces = [], [], []
        for _ in range(2):
            dyn = DynamicLowContentionDictionary(
                UNIVERSE, rng=np.random.default_rng(15)
            )
            stream = np.random.default_rng(16)
            for _ in range(300):
                k = int(stream.integers(0, 400))
                if stream.random() < 0.7:
                    dyn.insert(k)
                else:
                    dyn.delete(k)
            xs = stream.integers(0, UNIVERSE, size=256)
            dyn.query_batch(xs, np.random.default_rng(17))
            digests.append(dyn.query_counter_digest())
            sizes.append(dyn.level_sizes)
            spaces.append(dyn.space_words)
        assert digests[0] == digests[1]
        assert sizes[0] == sizes[1]
        assert spaces[0] == spaces[1]
