"""Dynamic dictionary: correctness, level discipline, cost accounting."""

import numpy as np
import pytest

from repro.distributions import UniformPositiveNegative
from repro.dynamic import DynamicLowContentionDictionary
from repro.dynamic.levels import (
    SingletonDictionary,
    encode_delete,
    encode_insert,
)
from repro.errors import ParameterError, QueryError

UNIVERSE = 1 << 16


@pytest.fixture()
def dyn():
    return DynamicLowContentionDictionary(
        UNIVERSE, rng=np.random.default_rng(0)
    )


class TestCorrectness:
    def test_insert_then_query(self, dyn, rng):
        dyn.insert(42)
        assert dyn.query(42, rng) is True
        assert dyn.query(43, rng) is False
        assert dyn.contains(42)

    def test_delete(self, dyn, rng):
        dyn.insert(7)
        dyn.delete(7)
        assert dyn.query(7, rng) is False
        assert not dyn.contains(7)

    def test_reinsert_after_delete(self, dyn, rng):
        dyn.insert(5)
        dyn.delete(5)
        dyn.insert(5)
        assert dyn.query(5, rng) is True

    def test_idempotent_operations(self, dyn, rng):
        for _ in range(4):
            dyn.insert(9)
        dyn.delete(100)  # absent: no-op
        assert dyn.live_count == 1
        assert dyn.query(9, rng) is True

    def test_random_stream_matches_reference_set(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(1)
        )
        ref = set()
        for step in range(800):
            k = int(rng.integers(0, 500))
            if rng.random() < 0.65:
                dyn.insert(k)
                ref.add(k)
            else:
                dyn.delete(k)
                ref.discard(k)
            if step % 80 == 0:
                for probe in rng.integers(0, 500, size=8):
                    assert dyn.query(int(probe), rng) == (int(probe) in ref)
        assert dyn.live_count == len(ref)
        assert set(dyn.live_keys().tolist()) == ref

    def test_out_of_universe(self, dyn, rng):
        with pytest.raises(QueryError):
            dyn.query(UNIVERSE, rng)
        with pytest.raises(ParameterError):
            dyn.insert(-1)


class TestLevelDiscipline:
    def test_binary_counter_shape(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(2)
        )
        for k in range(1, 9):  # 8 distinct inserts, no deletes
            dyn.insert(k)
        # 8 = 2^3 ops -> single level of 8 (or a flattened equivalent).
        assert dyn.live_count == 8
        sizes = [s for s in dyn.level_sizes if s]
        assert sum(sizes) == 8

    def test_flatten_after_heavy_deletion(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(3)
        )
        for k in range(32):
            dyn.insert(k)
        for k in range(30):
            dyn.delete(k)
        assert dyn.live_count == 2
        # Flattening keeps total entries within 2x live.
        assert sum(dyn.level_sizes) <= max(2 * dyn.live_count, 8)
        for k in range(32):
            assert dyn.contains(k) == (k >= 30)

    def test_space_and_probes_reported(self, dyn):
        dyn.insert(1)
        dyn.insert(2)
        assert dyn.space_words > 0
        assert dyn.max_probes > 0


class TestAccounting:
    def test_update_and_query_counts(self, dyn, rng):
        dyn.insert(1)
        dyn.insert(2)
        dyn.query(1, rng)
        assert dyn.account.updates == 2
        assert dyn.account.queries == 1
        assert dyn.account.rebuilds

    def test_amortized_cost_logarithmic(self, rng):
        """Cells written per update stays O(rows * log(ops)) — far from
        the O(n) of rebuild-everything-every-time."""
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(4)
        )
        n_ops = 512
        for k in range(n_ops):
            dyn.insert(k)
        amortized = dyn.account.amortized_write_cost()
        assert amortized < 40 * np.log2(n_ops)
        # Naive full-rebuild would pay ~ total space per update.
        assert amortized < dyn.space_words / 4

    def test_write_contention_dominated_by_small_levels(self, rng):
        dyn = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(5)
        )
        for k in range(128):
            dyn.insert(k)
        by_level = dyn.account.rebuild_count_by_level()
        # Level 0 is rebuilt most often (every other op lands there).
        assert by_level[0] == max(by_level.values())
        assert 0 < dyn.account.max_write_contention() <= 1.0


class TestContentionMeasurement:
    def test_padding_restores_low_contention(self):
        results = {}
        for width in (0, 512):
            dyn = DynamicLowContentionDictionary(
                UNIVERSE, rng=np.random.default_rng(6), min_level_width=width
            )
            rng = np.random.default_rng(7)
            for _ in range(300):
                k = int(rng.integers(0, 600))
                if rng.random() < 0.75:
                    dyn.insert(k)
                else:
                    dyn.delete(k)
            dist = UniformPositiveNegative(UNIVERSE, dyn.live_keys(), 0.5)
            res = dyn.empirical_query_contention(
                dist, 1200, np.random.default_rng(8)
            )
            results[width] = res["global_max_contention"]
        assert results[512] < results[0] / 4

    def test_contention_report_structure(self, dyn):
        dyn.insert(3)
        dyn.insert(4)
        dyn.insert(5)
        dist = UniformPositiveNegative(UNIVERSE, dyn.live_keys(), 0.5)
        res = dyn.empirical_query_contention(
            dist, 400, np.random.default_rng(9)
        )
        assert res["mean_probes"] > 0
        assert res["per_level"]
        for row in res["per_level"]:
            assert row["max_contention"] >= row["floor_1_over_s"] - 1e-9


class TestSingleton:
    def test_semantics(self, rng):
        s = SingletonDictionary([99], 1000, width=32)
        assert s.query(99, rng) is True
        assert s.query(98, rng) is False
        assert s.max_probes == 1
        plan = s.probe_plan(99)
        assert len(plan) == 1 and plan[0].size == 32

    def test_batch_plan(self, rng):
        s = SingletonDictionary([99], 1000)
        steps = s.probe_plan_batch(np.array([1, 99]))
        assert len(steps) == 1 and steps[0].shared

    def test_requires_one_key(self):
        with pytest.raises(ParameterError):
            SingletonDictionary([1, 2], 1000)


class TestEncoding:
    def test_encode_disjoint(self):
        assert encode_insert(5) != encode_delete(5)
        assert encode_insert(5) // 2 == encode_delete(5) // 2 == 5
