"""Vectorized dynamic queries: probe-accounting equivalence, typed errors.

``DynamicLowContentionDictionary.query_batch`` must be a pure
vectorization of the scalar walk: same answers, same short-circuit
discipline, and — the accounting property — the same per-level probe
*totals* (per-cell placement may differ only by rng draw order).  All
read entry points must reject out-of-universe keys with the same typed
:class:`~repro.errors.QueryError`.
"""

import numpy as np
import pytest

from repro.dynamic import DynamicLowContentionDictionary
from repro.errors import ParameterError, QueryError

UNIVERSE = 1 << 14


def _grown(seed: int, ops: int = 250, **kwargs) -> DynamicLowContentionDictionary:
    """A dictionary grown by one seeded 70/30 insert/delete stream."""
    dyn = DynamicLowContentionDictionary(
        UNIVERSE, rng=np.random.default_rng(seed), **kwargs
    )
    stream = np.random.default_rng(seed + 1)
    for _ in range(ops):
        k = int(stream.integers(0, 400))
        if stream.random() < 0.7:
            dyn.insert(k)
        else:
            dyn.delete(k)
    return dyn


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_per_level_probe_totals_match_scalar(self, seed):
        """The property E24's accounting gate relies on: batch and
        scalar walks charge byte-equal probe totals per level."""
        scalar = _grown(seed)
        batched = _grown(seed)
        xs = np.random.default_rng(seed + 2).integers(
            0, UNIVERSE, size=300
        )
        scalar_answers = np.array([
            scalar.query(int(x), np.random.default_rng(seed + 3))
            for x in xs
        ])
        batch_answers = batched.query_batch(
            xs, np.random.default_rng(seed + 3)
        )
        assert np.array_equal(scalar_answers, batch_answers)
        assert np.array_equal(batch_answers, np.isin(xs, scalar.live_keys()))
        scalar_totals = {
            lv.index: lv.structure.table.counter.total_probes()
            for lv in scalar._levels.nonempty_levels
        }
        batch_totals = {
            lv.index: lv.structure.table.counter.total_probes()
            for lv in batched._levels.nonempty_levels
        }
        assert scalar_totals == batch_totals
        assert sum(scalar_totals.values()) > 0

    def test_batch_records_one_query_per_key(self):
        dyn = _grown(7, ops=60)
        before = dyn.account.queries
        dyn.query_batch(
            np.arange(25, dtype=np.int64), np.random.default_rng(0)
        )
        assert dyn.account.queries == before + 25

    def test_empty_batch(self):
        dyn = _grown(8, ops=40)
        out = dyn.query_batch(
            np.empty(0, dtype=np.int64), np.random.default_rng(0)
        )
        assert out.shape == (0,)

    def test_contains_batch_matches_live_keys(self):
        dyn = _grown(9, ops=120)
        xs = np.random.default_rng(10).integers(0, UNIVERSE, size=200)
        assert np.array_equal(
            dyn.contains_batch(xs), np.isin(xs, dyn.live_keys())
        )


class TestTypedValidation:
    """Satellite: one QueryError contract across all read entry points."""

    @pytest.fixture()
    def dyn(self):
        d = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(20)
        )
        d.insert(1)
        return d

    @pytest.mark.parametrize("bad", [-1, UNIVERSE, UNIVERSE + 5])
    def test_query_out_of_universe(self, dyn, bad):
        with pytest.raises(QueryError, match="outside universe"):
            dyn.query(bad, np.random.default_rng(0))

    @pytest.mark.parametrize("bad", [-1, UNIVERSE])
    def test_query_batch_out_of_universe(self, dyn, bad):
        with pytest.raises(QueryError, match="outside universe"):
            dyn.query_batch(
                np.array([0, bad, 1]), np.random.default_rng(0)
            )

    def test_contains_out_of_universe(self, dyn):
        with pytest.raises(QueryError, match="outside universe"):
            dyn.contains(UNIVERSE)

    def test_contains_batch_out_of_universe(self, dyn):
        with pytest.raises(QueryError, match="outside universe"):
            dyn.contains_batch(np.array([UNIVERSE]))

    def test_updates_raise_parameter_error(self, dyn):
        with pytest.raises(ParameterError):
            dyn.insert(-1)
        with pytest.raises(ParameterError):
            dyn.delete(UNIVERSE)


class TestRebuildVerification:
    def test_digest_identical_verify_on_and_off(self):
        digests, rebuild_probes = [], []
        for verify in (True, False):
            dyn = _grown(30, ops=200, verify_rebuilds=verify)
            dyn.query_batch(
                np.random.default_rng(31).integers(0, UNIVERSE, size=300),
                np.random.default_rng(32),
            )
            digests.append(dyn.query_counter_digest())
            rebuild_probes.append(dyn.rebuild_probes)
        assert digests[0] == digests[1]
        assert rebuild_probes[0] > 0
        assert rebuild_probes[1] == 0

    def test_rebuild_probes_in_account_row(self):
        dyn = _grown(33, ops=80, verify_rebuilds=True)
        row = dyn.account.row()
        assert row["rebuild_probes"] == dyn.rebuild_probes > 0
