"""Replicated dynamic dictionary: lockstep, faults, epochs, pins.

State-machine replication over the Bentley–Saxe dynamization: R
replicas on spawned rng streams apply one log in lockstep; reads are
majority votes; a rebuilt replica replays the log into byte-identical
state; epoch pins make multi-key reads linearizable and gate retired
level reclamation.
"""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicLowContentionDictionary,
    EpochManager,
    ReplicatedDynamicDictionary,
)
from repro.errors import (
    FaultExhaustedError,
    HealError,
    ParameterError,
    ReplicaUnavailableError,
    ServeError,
)

UNIVERSE = 1 << 12


def _churn(rep, ops: int, seed: int, key_range: int = 300) -> set:
    """Apply a seeded mixed stream, returning the reference set."""
    rng = np.random.default_rng(seed)
    ref: set[int] = set()
    for _ in range(ops):
        k = int(rng.integers(0, key_range))
        if rng.random() < 0.7:
            rep.insert(k)
            ref.add(k)
        else:
            rep.delete(k)
            ref.discard(k)
    return ref


def _level_bytes(d: DynamicLowContentionDictionary) -> list:
    """A replica's physical level state: (index, raw cells) pairs."""
    return [
        (lv.index, lv.structure.table._cells.tobytes())
        for lv in d._levels.nonempty_levels
    ]


class TestLockstep:
    def test_replicas_agree_and_match_reference(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=3, seed=0)
        ref = _churn(rep, 200, seed=1)
        for d in rep._replicas:
            assert set(d.live_keys().tolist()) == ref
        xs = np.random.default_rng(2).integers(0, UNIVERSE, size=200)
        answers = rep.query_batch(xs, np.random.default_rng(3))
        assert np.array_equal(answers, np.isin(xs, sorted(ref)))

    def test_replicas_use_distinct_rng_streams(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=3, seed=0)
        _churn(rep, 120, seed=1)
        assert _level_bytes(rep._replicas[0]) != _level_bytes(
            rep._replicas[1]
        )

    def test_epoch_advances_once_per_group(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=2, seed=0)
        assert rep.epoch == 0
        rep.insert(1)
        assert rep.epoch == 1
        epoch = rep.apply_batch([(2, True), (3, True), (1, False)])
        assert epoch == rep.epoch == 2
        assert rep.update_count == 4

    def test_out_of_universe_update(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=2, seed=0)
        with pytest.raises(ParameterError):
            rep.apply_batch([(UNIVERSE, True)])


class TestFaults:
    def test_hooks_require_armed(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=3, seed=0)
        with pytest.raises(HealError):
            rep.crash_replica(0)
        with pytest.raises(HealError):
            rep.rebuild_replica(0)
        with pytest.raises(HealError):
            rep.corrupt_cell(0, 0, 0, 1)

    def test_rebuild_replays_to_byte_identical_state(self):
        healthy = ReplicatedDynamicDictionary(
            UNIVERSE, replicas=3, seed=7, armed=True
        )
        chaotic = ReplicatedDynamicDictionary(
            UNIVERSE, replicas=3, seed=7, armed=True
        )
        _churn(healthy, 80, seed=8)
        rng = np.random.default_rng(8)
        ref: set[int] = set()
        for i in range(80):
            k = int(rng.integers(0, 300))
            if rng.random() < 0.7:
                chaotic.insert(k)
                ref.add(k)
            else:
                chaotic.delete(k)
                ref.discard(k)
            if i == 40:
                chaotic.crash_replica(1)
        chaotic.rebuild_replica(1)
        assert _level_bytes(chaotic._replicas[1]) == _level_bytes(
            healthy._replicas[1]
        )
        assert chaotic.live_replicas() == [0, 1, 2]
        assert chaotic.fault_stats.crashes == 1
        assert chaotic.fault_stats.rebuilds == 1

    def test_majority_survives_corruption(self):
        rep = ReplicatedDynamicDictionary(
            UNIVERSE, replicas=5, seed=3, armed=True
        )
        ref = _churn(rep, 150, seed=4)
        corrupted = 0
        for r in (0, 1):  # minority: 2 of 5
            for lv in rep._replicas[r]._levels.nonempty_levels:
                rep.corrupt_cell(r, lv.index, 0, 0xFFFF)
                corrupted += 1
        assert corrupted > 0
        assert rep.fault_stats.corruptions == corrupted
        xs = np.random.default_rng(5).integers(0, UNIVERSE, size=300)
        answers = rep.query_batch(xs, np.random.default_rng(6))
        assert np.array_equal(answers, np.isin(xs, sorted(ref)))

    def test_crashed_replica_refuses_dispatch(self):
        rep = ReplicatedDynamicDictionary(
            UNIVERSE, replicas=3, seed=0, armed=True
        )
        rep.insert(1)
        rep.crash_replica(2)
        with pytest.raises(ReplicaUnavailableError):
            rep.query_batch_on(np.array([1]), 2, np.random.default_rng(0))
        assert rep.live_replicas() == [0, 1]

    def test_all_crashed_exhausts(self):
        rep = ReplicatedDynamicDictionary(
            UNIVERSE, replicas=3, seed=0, armed=True
        )
        rep.insert(1)
        for r in range(3):
            rep.crash_replica(r)
        with pytest.raises(FaultExhaustedError):
            rep.query_batch(np.array([1]), np.random.default_rng(0))
        with pytest.raises(FaultExhaustedError):
            rep.live_keys()


class TestEpochPins:
    def test_pinned_read_is_linearizable(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=3, seed=9)
        _churn(rep, 100, seed=10)
        pin = rep.pin()
        pinned_truth = np.asarray(pin.snapshot["live_keys"])
        for k in pinned_truth[: pinned_truth.size // 2]:
            rep.delete(int(k))
        _churn(rep, 60, seed=11)
        xs = np.unique(np.concatenate([
            pinned_truth,
            np.random.default_rng(12).integers(0, 400, size=100),
        ]))
        pinned = rep.query_pinned(pin, xs, np.random.default_rng(13))
        live = rep.query_batch(xs, np.random.default_rng(14))
        assert np.array_equal(pinned, np.isin(xs, pinned_truth))
        assert np.array_equal(live, np.isin(xs, rep.live_keys()))
        assert np.any(pinned != live)
        pin.release()

    def test_reclamation_waits_for_pin(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=2, seed=15)
        _churn(rep, 60, seed=16)
        pin = rep.pin()
        _churn(rep, 60, seed=17)
        retained_while = rep.epochs.retained
        assert retained_while > 0
        pin.release()
        assert rep.epochs.retained < retained_while
        # Without a pin, retirees from further churn reclaim eagerly.
        _churn(rep, 30, seed=18)
        assert rep.epochs.retained == 0

    def test_pin_context_manager_and_double_release(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=2, seed=19)
        rep.insert(1)
        with rep.pin() as pin:
            assert rep.epochs.pinned == 1
        assert rep.epochs.pinned == 0
        pin.release()  # idempotent
        assert rep.epochs.pinned == 0

    def test_epoch_manager_rejects_unknown_release(self):
        from repro.dynamic.epoch import EpochPin

        mgr = EpochManager()
        bogus = EpochPin(0, None, mgr)
        with pytest.raises(ServeError):
            bogus.release()


class TestAccounting:
    def test_verification_isolated_from_query_digest(self):
        digests = []
        for verify in (True, False):
            rep = ReplicatedDynamicDictionary(
                UNIVERSE, replicas=2, seed=20, verify_rebuilds=verify
            )
            _churn(rep, 100, seed=21)
            rep.query_batch(
                np.random.default_rng(22).integers(0, UNIVERSE, size=200),
                np.random.default_rng(23),
            )
            digests.append(
                tuple(rep.query_counter_digest(r) for r in range(2))
            )
            probes = [rep.rebuild_probes(r) for r in range(2)]
            if verify:
                assert all(p > 0 for p in probes)
            else:
                assert all(p == 0 for p in probes)
        assert digests[0] == digests[1]

    def test_probe_loads_and_stats(self):
        rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=3, seed=24)
        _churn(rep, 60, seed=25)
        rep.query_batch(
            np.random.default_rng(26).integers(0, UNIVERSE, size=100),
            np.random.default_rng(27),
        )
        loads = rep.replica_probe_loads()
        assert loads.shape == (3,)
        assert np.all(loads > 0)
        stats = rep.stats()
        assert stats["replicas"] == 3
        assert stats["live_replicas"] == 3
        assert stats["updates"] == 60
        assert stats["epoch_epoch"] == 60
        assert stats["space_words"] > 0
