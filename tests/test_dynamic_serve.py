"""The mutable sharded service: write path, read-your-writes, pins, CLI.

Clockless end-to-end tests of ``DynamicShardedService``: micro-batched
write groups advancing epochs, typed update backlog shedding,
read-your-writes ordering, epoch-pinned multi-key reads, telemetry
event flow, and the ``serve --dynamic`` CLI smoke path.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import (
    ParameterError,
    QueryError,
    UpdateBacklogError,
)
from repro.serve import (
    DynamicShardedService,
    build_dynamic_service,
)
from repro.telemetry.events import (
    BUS,
    EpochEvent,
    RebuildEvent,
    UpdateEvent,
)

UNIVERSE = 1 << 12


def _service(**kwargs) -> DynamicShardedService:
    defaults = dict(
        num_shards=2, replicas=3, seed=0, max_batch=4, max_delay=1.0,
        update_batch=4, update_delay=1.0, update_capacity=16, capacity=64,
    )
    defaults.update(kwargs)
    return build_dynamic_service(UNIVERSE, **defaults)


class TestWritePath:
    def test_update_groups_advance_epoch_once(self):
        svc = _service()
        tickets = [
            svc.submit_update(k, True, 0.0) for k in range(4)
        ]  # shard 0, full group -> flushed immediately
        assert all(t.done for t in tickets)
        assert {t.epoch for t in tickets} == {1}
        assert svc.epochs_by_shard()[0] == 1
        assert svc.stats.update_groups == 1
        assert svc.stats.updates_applied == 4

    def test_deadline_flush_via_advance(self):
        svc = _service()
        ticket = svc.submit_update(1, True, 0.0)
        assert not ticket.done
        assert svc.pending_updates == 1
        svc.advance(5.0)  # past update_delay
        assert ticket.done
        assert svc.pending_updates == 0

    def test_backlog_sheds_with_typed_error(self):
        svc = _service(update_capacity=3, update_batch=100, update_delay=50.0)
        for k in range(3):
            svc.submit_update(k, True, 0.0)
        with pytest.raises(UpdateBacklogError) as exc:
            svc.submit_update(99, True, 0.0)
        assert exc.value.pending == 3
        assert exc.value.capacity == 3
        assert svc.stats.shed_updates == 1
        # Draining the backlog restores admission.
        svc.drain(0.0)
        svc.submit_update(99, True, 1.0)

    def test_update_out_of_universe(self):
        svc = _service()
        with pytest.raises(QueryError):
            svc.submit_update(UNIVERSE, True, 0.0)


class TestReadPath:
    def test_read_your_writes(self):
        svc = _service()
        ref: set[int] = set()
        rng = np.random.default_rng(1)
        checked = 0
        for i in range(120):
            now = float(i)
            if rng.random() < 0.5:
                k = int(rng.integers(0, UNIVERSE))
                ins = rng.random() < 0.7
                svc.submit_update(k, ins, now)
                (ref.add if ins else ref.discard)(k)
            ticket = svc.submit(int(rng.integers(0, UNIVERSE)), now)
            svc.advance(now)
            if ticket.done:
                checked += 1
                assert ticket.answer == (ticket.key in ref)
        svc.drain(float(120))
        assert checked > 0

    def test_same_tick_write_visible_to_read(self):
        """A write admitted before a read is applied before it executes,
        even when the write group is not yet full."""
        svc = _service(max_batch=1)
        svc.submit_update(7, True, 0.0)  # sits in the write batcher
        ticket = svc.submit(7, 0.0)  # batch of 1: dispatches immediately
        assert ticket.done
        assert ticket.answer is True

    def test_read_pinned_consistent_cut(self):
        svc = _service()
        ref: set[int] = set()
        rng = np.random.default_rng(2)
        for i in range(60):
            k = int(rng.integers(0, UNIVERSE))
            svc.submit_update(k, True, float(i))
            ref.add(k)
            svc.advance(float(i))
        sample = rng.integers(0, UNIVERSE, size=128)
        answers, epochs = svc.read_pinned(sample, 100.0)
        assert np.array_equal(answers, np.isin(sample, sorted(ref)))
        assert set(epochs) <= {0, 1}
        assert epochs == {
            s: svc.shards[s].epoch for s in epochs
        }
        # All pins released: further churn reclaims eagerly.
        for s in epochs:
            assert svc.shards[s].epochs.pinned == 0

    def test_read_pinned_out_of_universe(self):
        svc = _service()
        with pytest.raises(QueryError):
            svc.read_pinned(np.array([0, UNIVERSE]), 0.0)


class TestTelemetry:
    def test_events_flow(self):
        with BUS.capture(UpdateEvent, RebuildEvent, EpochEvent) as events:
            svc = _service()
            for k in range(8):
                svc.submit_update(k, True, 0.0)
            svc.drain(1.0)
        updates = [e for e in events if isinstance(e, UpdateEvent)]
        rebuilds = [e for e in events if isinstance(e, RebuildEvent)]
        epochs = [e for e in events if isinstance(e, EpochEvent)]
        assert len(updates) == svc.stats.update_groups
        assert len(epochs) == svc.stats.update_groups
        assert rebuilds
        assert sum(e.size for e in updates) == svc.stats.updates_applied


class TestConstruction:
    def test_boundary_validation(self):
        shard = build_dynamic_service(UNIVERSE, num_shards=1).shards[0]
        with pytest.raises(ParameterError):
            DynamicShardedService([shard], boundaries=[1])
        with pytest.raises(ParameterError):
            DynamicShardedService([shard], boundaries=[0, 8])
        with pytest.raises(ParameterError):
            DynamicShardedService([], boundaries=[])

    def test_shard_of(self):
        svc = _service()
        assert svc.shard_of(0) == 0
        assert svc.shard_of(UNIVERSE - 1) == 1
        with pytest.raises(QueryError):
            svc.shard_of(UNIVERSE)

    def test_stats_row_shape(self):
        svc = _service()
        svc.submit_update(3, True, 0.0)
        svc.drain(0.0)
        row = svc.stats_row()
        assert row["updates_applied"] == 1
        assert row["pending_updates"] == 0
        assert row["shard0_epoch_epoch"] == 1
        assert row["shard1_epoch_epoch"] == 0
        assert row["update_log_entries"] == 1

    def test_update_log_gauge_and_warning(self, monkeypatch):
        import warnings

        from repro.serve import dynamic_service
        from repro.telemetry import TelemetryHub

        svc = _service()
        hub = TelemetryHub(metrics=True)
        svc.attach_telemetry(hub)
        svc.submit_update(3, True, 0.0)
        svc.submit_update(7, False, 0.0)
        svc.drain(0.0)
        gauges = hub.metrics.snapshot()["gauges"]
        assert gauges["dynamic_update_log_entries"]["value"] == 2.0
        # Crossing the (patched) threshold warns exactly once.
        monkeypatch.setattr(
            dynamic_service, "UPDATE_LOG_WARN_THRESHOLD", 3
        )
        with pytest.warns(RuntimeWarning, match="update log"):
            svc.submit_update(9, True, 1.0)
            svc.drain(1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            svc.submit_update(11, True, 2.0)
            svc.drain(2.0)


class TestCLI:
    def test_serve_dynamic_smoke(self, capsys):
        assert main([
            "serve", "--dynamic", "--n", "64",
            "--smoke-queries", "48", "--seed", "0", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 wrong" in out

    def test_serve_dynamic_rejects_procs_and_heal(self):
        assert main(["serve", "--dynamic", "--procs", "2"]) == 2
        assert main(["serve", "--dynamic", "--heal"]) == 2
