"""Experiment registry: every runner produces a well-formed result.

E1/E5 are exercised for real (their findings are the headline claims);
the rest run in fast mode and are checked structurally.  Heavy runners
are marked slow-ish but still bounded to keep CI reasonable.
"""

import pytest

from repro.errors import ParameterError
from repro.experiments import EXPERIMENTS, run_experiment

ALL_IDS = list(EXPERIMENTS)


def test_registry_complete():
    assert ALL_IDS == [f"E{i}" for i in range(1, 27)]
    for eid, (title, runner) in EXPERIMENTS.items():
        assert callable(runner) and title


def test_unknown_experiment():
    with pytest.raises(ParameterError):
        run_experiment("E99")


def test_case_insensitive_lookup():
    result = run_experiment("e11", fast=True)
    assert result.experiment_id == "E11"


@pytest.mark.parametrize("eid", ALL_IDS)
def test_runner_produces_wellformed_result(eid):
    result = run_experiment(eid, fast=True, seed=0)
    assert result.experiment_id == eid
    assert result.rows, f"{eid} produced no rows"
    assert result.claim and result.title and result.finding
    assert isinstance(result.render(), str)
    assert all(isinstance(r, dict) for r in result.rows)


def test_e1_contention_is_near_optimal():
    result = run_experiment("E1", fast=True, seed=0)
    for row in result.rows:
        assert row["s*phi (bounded?)"] < 4.0
        # The table rounds predicted_bound*s to 3 decimals; for pure
        # positives the bound is tight, so allow the rounding slack.
        assert row["max_step_phi"] <= (row["predicted_bound*s"] + 5e-4) / row["s"]


def test_e5_ranking_matches_paper():
    result = run_experiment("E5", fast=True, seed=0)
    by_scheme = {}
    for row in result.rows:
        by_scheme.setdefault(row["scheme"], []).append(row["ratio_vs_optimal"])
    # The paper's ordering at every n: new scheme < cuckoo/fks << binary.
    for i in range(len(by_scheme["low-contention"])):
        lcd = by_scheme["low-contention"][i]
        assert lcd < by_scheme["fks"][i]
        assert lcd < by_scheme["dm"][i]
        assert lcd < by_scheme["cuckoo"][i]
        assert by_scheme["binary-search"][i] > 10 * lcd


def test_e9_tstar_monotone():
    result = run_experiment("E9", fast=True, seed=0)
    ts = [r["t*(n)"] for r in result.rows if r.get("series") == "recursion"]
    assert ts == sorted(ts) and ts[-1] > ts[0]


def test_determinism_same_seed():
    a = run_experiment("E3", fast=True, seed=3)
    b = run_experiment("E3", fast=True, seed=3)
    assert a.rows == b.rows
