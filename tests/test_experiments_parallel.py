"""Parallel experiment runner and construction cache.

The runner's contract is *bitwise determinism*: the rendered results of
``run_experiments`` are identical for any ``jobs`` count, because every
experiment derives all randomness from its own seed and results come
back in request order.  The cache's contract is *transparency*: a hit
returns an object indistinguishable from a fresh build (probe counter
reset, same construction), keyed only on trustworthy inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.cache import (
    ConstructionCache,
    configure_cache,
    get_cache,
)
from repro.experiments.common import build_scheme, make_instance
from repro.experiments.parallel import (
    default_jobs,
    grid_map,
    grid_point_seeds,
    normalize_ids,
    run_experiments,
)
from repro.experiments.registry import EXPERIMENTS


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from the process-wide cache and restore it."""
    configure_cache()
    yield
    configure_cache()


class TestNormalizeIds:
    def test_all_expands_to_registry_order(self):
        assert normalize_ids("all") == list(EXPERIMENTS)
        assert normalize_ids(["all"]) == list(EXPERIMENTS)

    def test_case_insensitive(self):
        assert normalize_ids(["e1", "E5"]) == ["E1", "E5"]

    def test_unknown_id_rejected(self):
        with pytest.raises(ParameterError):
            normalize_ids(["E999"])

    def test_duplicates_preserved(self):
        assert normalize_ids(["E1", "E1"]) == ["E1", "E1"]


class TestRunExperiments:
    def test_jobs_do_not_change_results(self):
        ids = ["E11", "E13", "E11"]
        serial = [r.render() for r in run_experiments(ids, jobs=1, seed=0)]
        parallel = [r.render() for r in run_experiments(ids, jobs=2, seed=0)]
        assert serial == parallel

    def test_request_order_preserved(self):
        results = run_experiments(["E13", "E11"], jobs=2, seed=0)
        assert [r.experiment_id for r in results] == ["E13", "E11"]

    def test_invalid_jobs(self):
        with pytest.raises(ParameterError):
            run_experiments(["E11"], jobs=0)

    def test_single_string_id(self):
        (r,) = run_experiments("E11", seed=0)
        assert r.experiment_id == "E11"


def _square(point, point_seed):
    return (point * point, point_seed)


class TestGridMap:
    def test_point_seeds_deterministic_and_distinct(self):
        a = grid_point_seeds(0, 8)
        assert a == grid_point_seeds(0, 8)
        assert len(set(a)) == 8
        assert a != grid_point_seeds(1, 8)

    def test_grid_map_parallel_matches_serial(self):
        points = [1, 2, 3, 4, 5]
        assert grid_map(_square, points, seed=3, jobs=2) == grid_map(
            _square, points, seed=3, jobs=1
        )

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestConstructionCache:
    def test_memory_hit_returns_same_object_reset(self):
        keys, N = make_instance(32, seed=0)
        cache = get_cache()
        d1 = build_scheme("fks", keys, N, 42)
        d1.query(int(keys[0]), np.random.default_rng(0))
        assert d1.table.counter.total_probes() > 0
        d2 = build_scheme("fks", keys, N, 42)
        assert d2 is d1
        assert d2.table.counter.total_probes() == 0
        assert cache.hits >= 1

    def test_different_seed_misses(self):
        keys, N = make_instance(32, seed=0)
        d1 = build_scheme("fks", keys, N, 1)
        d2 = build_scheme("fks", keys, N, 2)
        assert d2 is not d1

    def test_generator_seed_bypasses_cache(self):
        keys, N = make_instance(32, seed=0)
        rng_seed = np.random.default_rng(7)
        d1 = build_scheme("fks", keys, N, rng_seed)
        d2 = build_scheme("fks", keys, N, np.random.default_rng(7))
        assert d2 is not d1

    def test_nonscalar_kwargs_uncacheable(self):
        keys, N = make_instance(16, seed=0)
        key = ConstructionCache.cache_key(
            "fks", keys, N, 0, {"level1": object()}
        )
        assert key is None

    def test_key_sensitivity(self):
        keys, N = make_instance(16, seed=0)
        base = ConstructionCache.cache_key("fks", keys, N, 0, {})
        assert base == ConstructionCache.cache_key("fks", keys, N, 0, {})
        others = [
            ConstructionCache.cache_key("dm", keys, N, 0, {}),
            ConstructionCache.cache_key("fks", keys, N, 1, {}),
            ConstructionCache.cache_key("fks", keys, N + 1, 0, {}),
            ConstructionCache.cache_key("fks", keys[:-1], N, 0, {}),
            ConstructionCache.cache_key("fks", keys, N, 0, {"r": 2}),
        ]
        assert base not in others

    def test_disk_roundtrip(self, tmp_path):
        keys, N = make_instance(32, seed=0)
        configure_cache(cache_dir=tmp_path)
        d1 = build_scheme("cuckoo", keys, N, 9)
        # A fresh cache (new process, cold memory) must load from disk
        # and the loaded build must answer identically.
        cache2 = configure_cache(cache_dir=tmp_path)
        d2 = build_scheme("cuckoo", keys, N, 9)
        assert d2 is not d1
        assert cache2.hits == 1 and cache2.misses == 0
        xs = np.concatenate([keys, (keys + 1) % N])
        np.testing.assert_array_equal(
            d1.contains_batch(xs), d2.contains_batch(xs)
        )
        assert d2.table.counter.total_probes() == 0

    def test_disk_corruption_degrades_to_rebuild(self, tmp_path):
        keys, N = make_instance(16, seed=0)
        configure_cache(cache_dir=tmp_path)
        build_scheme("fks", keys, N, 3)
        for p in tmp_path.iterdir():
            p.write_bytes(b"not a pickle")
        cache = configure_cache(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="bad magic"):
            d = build_scheme("fks", keys, N, 3)
        assert cache.misses == 1
        assert d.contains(int(keys[0]))

    def test_truncated_cache_file_is_checksum_miss(self, tmp_path):
        """Regression: a cache file cut mid-byte must fail the checksum,
        warn, and rebuild — never unpickle garbage or crash."""
        keys, N = make_instance(16, seed=0)
        configure_cache(cache_dir=tmp_path)
        d1 = build_scheme("fks", keys, N, 5)
        (entry,) = list(tmp_path.iterdir())
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) - len(blob) // 3])
        cache = configure_cache(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="CRC32|truncated"):
            d2 = build_scheme("fks", keys, N, 5)
        assert cache.misses == 1 and cache.hits == 0
        assert d2 is not d1
        xs = np.concatenate([keys, (keys + 1) % N])
        np.testing.assert_array_equal(
            d1.contains_batch(xs), d2.contains_batch(xs)
        )
        # The rebuild re-stored a valid entry: next cold read hits.
        cache3 = configure_cache(cache_dir=tmp_path)
        build_scheme("fks", keys, N, 5)
        assert cache3.hits == 1

    def test_bitflipped_payload_fails_checksum(self, tmp_path):
        keys, N = make_instance(16, seed=0)
        configure_cache(cache_dir=tmp_path)
        build_scheme("fks", keys, N, 6)
        (entry,) = list(tmp_path.iterdir())
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0x01  # single bit deep in the pickle payload
        entry.write_bytes(bytes(blob))
        cache = configure_cache(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="CRC32 mismatch"):
            d = build_scheme("fks", keys, N, 6)
        assert cache.misses == 1
        assert d.contains(int(keys[0]))

    def test_cache_dir_pointing_at_file_degrades_to_memory(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        configure_cache(cache_dir=not_a_dir)
        keys, N = make_instance(16, seed=0)
        d = build_scheme("fks", keys, N, 4)
        assert d.contains(int(keys[0]))
        assert build_scheme("fks", keys, N, 4) is d

    def test_lru_eviction(self):
        cache = configure_cache(capacity=2)
        keys, N = make_instance(16, seed=0)
        builds = [build_scheme("fks", keys, N, s) for s in (1, 2, 3)]
        assert len(cache._memory) == 2
        # Seed 1 was evicted: rebuilding it is a miss, seeds 2/3 are hits.
        assert build_scheme("fks", keys, N, 1) is not builds[0]
        assert build_scheme("fks", keys, N, 3) is builds[2]


class TestCheckpoints:
    def _result(self):
        from repro.experiments.registry import run_experiment

        return run_experiment("E11", fast=True, seed=0)

    def test_round_trip(self, tmp_path):
        from repro.experiments.parallel import load_checkpoint, save_checkpoint

        result = self._result()
        save_checkpoint(tmp_path, "E11", True, 0, result)
        loaded = load_checkpoint(tmp_path, "E11", True, 0)
        assert loaded is not None
        assert loaded.render() == result.render()

    def test_metadata_mismatch_is_miss(self, tmp_path):
        from repro.experiments.parallel import (
            checkpoint_path,
            load_checkpoint,
            save_checkpoint,
        )

        save_checkpoint(tmp_path, "E11", True, 0, self._result())
        assert load_checkpoint(tmp_path, "E11", True, 1) is None  # other seed
        assert load_checkpoint(tmp_path, "E11", False, 0) is None  # other mode
        # Same key but the file lies about what it holds: warn + miss.
        good = checkpoint_path(tmp_path, "E11", True, 0)
        bad = checkpoint_path(tmp_path, "E3", True, 0)
        bad.write_text(good.read_text())
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            assert load_checkpoint(tmp_path, "E3", True, 0) is None

    def test_corrupt_json_is_miss(self, tmp_path):
        from repro.experiments.parallel import checkpoint_path, load_checkpoint

        path = checkpoint_path(tmp_path, "E11", True, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"version": 1, "experiment')
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            assert load_checkpoint(tmp_path, "E11", True, 0) is None

    def test_resume_skips_recompute_and_matches(self, tmp_path):
        first = run_experiments(
            ["E11", "E13"], seed=0, checkpoint_dir=tmp_path
        )
        assert len(list(tmp_path.glob("*.json"))) == 2

        # Second invocation must resume purely from checkpoints — make
        # recomputation impossible to prove none happens.
        import repro.experiments.parallel as parallel_mod

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resumed run recomputed an experiment")

        orig = parallel_mod._run_isolated
        parallel_mod._run_isolated = _boom
        try:
            second = run_experiments(
                ["E11", "E13"], seed=0, checkpoint_dir=tmp_path
            )
        finally:
            parallel_mod._run_isolated = orig
        assert [r.render() for r in first] == [r.render() for r in second]

    def test_partial_checkpoints_resume_the_rest(self, tmp_path):
        from repro.experiments.parallel import load_checkpoint

        run_experiments(["E11"], seed=0, checkpoint_dir=tmp_path)
        # A "killed mid-flight" run left E11 done, E13 not: re-invoking
        # with both finishes E13 and checkpoints it too.
        results = run_experiments(
            ["E11", "E13"], seed=0, checkpoint_dir=tmp_path
        )
        assert [r.experiment_id for r in results] == ["E11", "E13"]
        assert load_checkpoint(tmp_path, "E13", True, 0) is not None


class TestResilientFailures:
    def test_timeout_failure_carries_partial_results(self):
        from repro.errors import ExperimentFailureError

        # E9 (~15ms) beats the timeout, E1 (~0.4s) cannot.
        with pytest.raises(ExperimentFailureError) as exc_info:
            run_experiments(
                ["E9", "E1"], seed=0, timeout=0.15, keep_going=True
            )
        err = exc_info.value
        assert set(err.failures) == {"E1"}
        assert "exceeded" in err.failures["E1"]
        assert [r.experiment_id for r in err.results] == ["E9"]

    def test_retries_are_counted_in_failure_reason(self):
        from repro.errors import ExperimentFailureError

        with pytest.raises(ExperimentFailureError) as exc_info:
            run_experiments(
                ["E1"], seed=0, timeout=0.05, retries=2, retry_backoff=0.01
            )
        assert "3 attempt(s)" in exc_info.value.failures["E1"]

    def test_resilient_path_matches_plain_results(self, tmp_path):
        plain = run_experiments(["E11"], seed=0)
        resilient = run_experiments(
            ["E11"], seed=0, timeout=120, retries=1, checkpoint_dir=tmp_path
        )
        assert [r.render() for r in plain] == [r.render() for r in resilient]


def test_cli_multi_id_and_jobs(capsys):
    from repro.cli import main

    assert main(["run", "E11", "E13", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "E11" in out and "E13" in out
