"""Fault-injection layer: config, injector, faulty table, query modes.

The two load-bearing guarantees:

1. **Zero overhead by default** — with faults disabled the replicated
   dictionary's answers, RNG draw sequence, and per-step probe counts
   are byte-identical to the fault-free implementation (property-based).
2. **Honest accounting under faults** — every fault-injected read is
   still charged to the real counter at the real cell; faults change
   what queries see, never what they cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellprobe.table import EMPTY_CELL, Table
from repro.dictionaries import ReplicatedDictionary, SortedArrayDictionary
from repro.errors import (
    FaultError,
    FaultExhaustedError,
    ParameterError,
    ReplicaUnavailableError,
)
from repro.faults import FaultConfig, FaultInjector, FaultStats, FaultyTable


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled

    def test_enabled_variants(self):
        assert FaultConfig(stuck_rate=0.1).enabled
        assert FaultConfig(flip_rate=0.1).enabled
        assert FaultConfig(crash_rate=0.1).enabled
        assert FaultConfig(crashed_replicas=(1,)).enabled

    def test_rates_validated(self):
        with pytest.raises(ParameterError):
            FaultConfig(stuck_rate=1.5)
        with pytest.raises(ParameterError):
            FaultConfig(flip_rate=-0.1)

    def test_hashable_and_deterministic(self):
        a = FaultConfig(stuck_rate=0.1, seed=3)
        b = FaultConfig(stuck_rate=0.1, seed=3)
        assert a == b and hash(a) == hash(b)


class TestFaultInjector:
    def _table(self, rows=4, s=32):
        t = Table(rows, s)
        for r in range(rows):
            t.write_row(r, np.arange(s, dtype=np.uint64) + r * 1000)
        return t

    def test_stuck_cells_deterministic(self):
        cfg = FaultConfig(stuck_rate=0.25, seed=9)
        a = FaultInjector(cfg, 4, 32)
        b = FaultInjector(cfg, 4, 32)
        assert np.array_equal(a._stuck_cells, b._stuck_cells)
        assert np.array_equal(a._stuck_values, b._stuck_values)
        assert a.num_stuck == round(0.25 * 4 * 32)

    def test_stuck_read_returns_stuck_value(self):
        table = self._table()
        cfg = FaultConfig(stuck_rate=0.5, seed=1)
        inj = FaultInjector(cfg, table.rows, table.s)
        faulty = FaultyTable(table, inj)
        flat = int(inj._stuck_cells[0])
        row, col = divmod(flat, table.s)
        value = faulty.read(row, col, step=0)
        assert value == int(inj._stuck_values[0])
        assert faulty.peek(row, col) == value  # stuck damage is physical

    def test_scalar_and_batch_corruption_agree_on_stuck(self):
        table = self._table()
        inj = FaultInjector(FaultConfig(stuck_rate=0.3, seed=2), 4, 32)
        faulty = FaultyTable(table, inj)
        cols = np.arange(32)
        batch = faulty.read_batch(1, cols, step=0)
        for c in range(32):
            flat = table.s + c
            if inj.is_stuck(flat):
                assert int(batch[c]) == faulty.peek(1, c)
            else:
                assert int(batch[c]) == table.peek(1, c)

    def test_flips_are_single_bit(self):
        table = self._table()
        inj = FaultInjector(FaultConfig(flip_rate=1.0, seed=3), 4, 32)
        faulty = FaultyTable(table, inj)
        for c in range(16):
            clean = table.peek(2, c)
            seen = faulty.read(2, c, step=0)
            xor = clean ^ seen
            assert xor != 0 and (xor & (xor - 1)) == 0  # exactly one bit

    def test_flip_stream_independent_of_query_rng(self):
        """Transient flips never consume the caller's generator."""
        table = self._table()
        inj = FaultInjector(FaultConfig(flip_rate=0.5, seed=4), 4, 32)
        faulty = FaultyTable(table, inj)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        for c in range(16):
            faulty.read(0, c, step=0)
        assert rng.bit_generator.state["state"]["state"] == before

    def test_probes_charged_identically(self):
        """Fault wrapping changes values, never the probe accounting."""
        table = self._table()
        inj = FaultInjector(
            FaultConfig(stuck_rate=0.4, flip_rate=0.4, seed=5), 4, 32
        )
        faulty = FaultyTable(table, inj)
        faulty.read(1, 3, step=0)
        faulty.read_batch(2, np.array([0, 5, -1, 9]), step=1)
        counts = table.counter.counts_per_step()
        assert counts[0].sum() == 1
        assert counts[0][table.s + 3] == 1
        assert counts[1].sum() == 3  # -1 skipped, exactly as Table does
        assert counts[1][2 * table.s + 5] == 1

    def test_skipped_batch_entries_stay_empty(self):
        table = self._table()
        inj = FaultInjector(FaultConfig(flip_rate=1.0, seed=6), 4, 32)
        faulty = FaultyTable(table, inj)
        out = faulty.read_batch(0, np.array([-1, -1]), step=0)
        assert all(int(v) == EMPTY_CELL for v in out)

    def test_crash_sampling_respects_faulty_replicas(self):
        cfg = FaultConfig(
            crash_rate=1.0, faulty_replicas=(0, 2), seed=7
        )
        inj = FaultInjector(cfg, rows=8, s=4, replicas=4)
        assert inj.crashed == frozenset({0, 2})
        assert inj.available(1) and inj.available(3)

    def test_faults_confined_to_faulty_replicas(self):
        cfg = FaultConfig(stuck_rate=0.5, faulty_replicas=(1,), seed=8)
        inj = FaultInjector(cfg, rows=8, s=16, replicas=4)
        rows = inj._stuck_cells // 16
        assert rows.size > 0
        assert all(2 <= r < 4 for r in rows)  # replica 1 owns rows [2, 4)

    def test_rows_must_split_into_replicas(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultConfig(), rows=7, s=4, replicas=2)


def _make_pair(keys, universe, R, **kwargs):
    inner = SortedArrayDictionary(keys, universe)
    return ReplicatedDictionary(inner, R, **kwargs)


class TestZeroOverheadDefault:
    """Faults disabled => byte-identical to the fault-free wrapper."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(8, 32),
        replicas=st.integers(1, 6),
        disabled=st.sampled_from(["none", "zero-config"]),
    )
    def test_answers_probes_and_rng_identical(
        self, seed, n, replicas, disabled
    ):
        rng = np.random.default_rng(seed)
        universe = 4 * n * n
        keys = np.sort(rng.choice(universe, size=n, replace=False))
        faults = None if disabled == "none" else FaultConfig()
        base = _make_pair(keys, universe, replicas)
        cand = _make_pair(keys, universe, replicas, faults=faults)
        assert cand._injector is None  # nothing wrapped at all
        assert cand._read_table is cand.table
        xs = np.concatenate([keys, rng.integers(0, universe, size=n)])
        r1, r2 = np.random.default_rng(seed + 1), np.random.default_rng(seed + 1)
        got_base = [base.query(int(x), r1) for x in xs]
        got_cand = [cand.query(int(x), r2) for x in xs]
        assert got_base == got_cand
        # Same RNG draw sequence: the two generators stay in lockstep.
        assert r1.bit_generator.state == r2.bit_generator.state
        # Same per-step probe totals on every cell.
        assert np.array_equal(
            base.table.counter.counts_per_step(),
            cand.table.counter.counts_per_step(),
        )

    def test_batch_path_identical(self, keys, universe_size):
        base = _make_pair(keys, universe_size, 4)
        cand = _make_pair(keys, universe_size, 4, faults=FaultConfig())
        xs = np.concatenate([keys[:40], keys[:40] + 1])
        r1, r2 = np.random.default_rng(3), np.random.default_rng(3)
        assert np.array_equal(
            base.query_batch(xs, r1), cand.query_batch(xs, r2)
        )
        assert np.array_equal(
            base.table.counter.counts_per_step(),
            cand.table.counter.counts_per_step(),
        )


class TestQueryModes:
    def test_unknown_mode_rejected(self, keys, universe_size):
        with pytest.raises(ParameterError):
            _make_pair(keys, universe_size, 2, mode="quorum")

    def test_random_mode_raises_on_crashed_replica(self, keys, universe_size):
        rep = _make_pair(
            keys, universe_size, 2,
            faults=FaultConfig(crashed_replicas=(0, 1)),
        )
        with pytest.raises(ReplicaUnavailableError):
            rep.query(int(keys[0]), np.random.default_rng(0))
        assert rep.fault_stats.crash_hits == 1

    def test_majority_outvotes_crashed_minority(self, keys, universe_size):
        rep = _make_pair(
            keys, universe_size, 5, mode="majority",
            faults=FaultConfig(crashed_replicas=(1, 3)),
        )
        rng = np.random.default_rng(0)
        for x in list(keys[:10]) + [int(keys[0]) + 1]:
            assert rep.query(int(x), rng) == rep.contains(int(x))
        assert rep.fault_stats.crash_hits > 0

    def test_majority_all_crashed_exhausts(self, keys, universe_size):
        rep = _make_pair(
            keys, universe_size, 3, mode="majority",
            faults=FaultConfig(crashed_replicas=(0, 1, 2)),
        )
        with pytest.raises(FaultExhaustedError):
            rep.query(int(keys[0]), np.random.default_rng(0))
        assert rep.fault_stats.exhausted == 1

    def test_failover_survives_crashes_with_backoff(self, keys, universe_size):
        rep = _make_pair(
            keys, universe_size, 4, mode="failover", max_retries=8,
            faults=FaultConfig(crashed_replicas=(0, 1, 2)),
        )
        rng = np.random.default_rng(1)
        for x in keys[:20]:
            assert rep.query(int(x), rng) is True
        stats = rep.fault_stats
        assert stats.retries > 0
        # Exponential backoff: cost is sum of 2**k over retries, so the
        # probe-equivalent spend dominates the retry count.
        assert stats.backoff_probes >= stats.retries

    def test_failover_exhausts_when_all_crashed(self, keys, universe_size):
        rep = _make_pair(
            keys, universe_size, 2, mode="failover", max_retries=3,
            faults=FaultConfig(crashed_replicas=(0, 1)),
        )
        with pytest.raises(FaultExhaustedError) as exc_info:
            rep.query(int(keys[0]), np.random.default_rng(0))
        assert exc_info.value.attempts == 4
        assert exc_info.value.backoff_probes == 1 + 2 + 4

    def test_live_replicas(self, keys, universe_size):
        rep = _make_pair(
            keys, universe_size, 4,
            faults=FaultConfig(crashed_replicas=(2,)),
        )
        assert rep.live_replicas() == [0, 1, 3]

    def test_fault_stats_reset(self):
        stats = FaultStats(retries=3, backoff_probes=7)
        stats.reset()
        assert stats.retries == 0 and stats.backoff_probes == 0

    def test_majority_charges_probes_on_all_live_replicas(
        self, keys, universe_size
    ):
        rep = _make_pair(
            keys, universe_size, 3, mode="majority",
            faults=FaultConfig(crashed_replicas=(0,)),
        )
        rep.table.counter.reset()
        rep.query(int(keys[0]), np.random.default_rng(0))
        counts = rep.table.counter.total_counts().reshape(
            rep.table.rows, -1
        )
        inner_rows = rep._inner_rows
        per_replica = [
            int(counts[r * inner_rows:(r + 1) * inner_rows].sum())
            for r in range(3)
        ]
        assert per_replica[0] == 0  # crashed: never probed
        assert per_replica[1] > 0 and per_replica[2] > 0
