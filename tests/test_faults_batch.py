"""FaultyTable × query_batch composition: faults never change probe cost.

The fault layer's contract is "faults change what a query *sees*, never
what it *cost*": probes are charged to the real counter at the real
cell before any corruption is applied.  The batch engine's contract is
that per-step probe *totals* are a deterministic function of the
instance (batch and scalar consume the RNG differently, so addresses
differ, but counts do not).  These properties must compose — a batched
query stream through a faulty table must charge exactly the probe
counts the scalar faulted path charges.

Transient flips are scoped with ``FaultConfig.faulty_rows`` to the
perfect-hash and data rows of the low-contention dictionary: those
values never steer the probe *sequence* (phases 1–3 read clean control
words, phase 4 issues exactly one phf read and one data read per
non-empty bucket regardless of what the corrupted words decode to), so
the per-step totals of the faulted paths also equal the clean run's.
Flips on control rows (histogram, GBAS) legitimately change the probe
addresses and the early-exit pattern — that is why the scoping exists.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cellprobe import Table
from repro.core import LowContentionDictionary
from repro.dictionaries import ReplicatedDictionary
from repro.faults import FaultConfig, FaultInjector, FaultyTable
from repro.utils.rng import as_generator, sample_distinct


def _instance(n: int, seed: int):
    rng = as_generator(seed)
    N = n * n
    keys = np.sort(sample_distinct(rng, N, n))
    return keys, N


def _queries(keys, N, count, seed):
    rng = as_generator(seed)
    pos = rng.choice(keys, size=count // 2)
    neg = rng.integers(0, N, size=count - count // 2)
    return np.concatenate([pos, neg])


def _faulted_dictionary(
    n: int, seed: int, flip_rate: float, flip_seed: int
) -> LowContentionDictionary:
    """A fresh dictionary whose reads pass through row-scoped flips."""
    keys, N = _instance(n, seed)
    d = LowContentionDictionary(keys, N, rng=as_generator(seed + 1))
    config = FaultConfig(
        flip_rate=flip_rate,
        faulty_rows=(d.params.phf_row, d.params.data_row),
        seed=flip_seed,
    )
    injector = FaultInjector(config, d.table.rows, d.table.s)
    d.table = FaultyTable(d.table, injector)
    return d


class TestFaultyTableProbeCharging:
    """Table-level: corruption is applied after the probe is charged."""

    @given(
        flip_rate=st.floats(min_value=0.0, max_value=1.0),
        stuck_rate=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_charges_match_bare_table(self, flip_rate, stuck_rate, seed):
        rng = np.random.default_rng(seed)
        reads = rng.integers(0, 16, size=(20, 2))
        steps = rng.integers(0, 5, size=20)

        bare = Table(16, 16)
        faulty_inner = Table(16, 16)
        injector = FaultInjector(
            FaultConfig(
                flip_rate=flip_rate, stuck_rate=stuck_rate, seed=seed
            ),
            16,
            16,
        )
        faulty = FaultyTable(faulty_inner, injector)
        for (row, col), step in zip(reads, steps):
            bare.read(int(row), int(col), int(step))
            faulty.read(int(row), int(col), int(step))
        batch_cols = rng.integers(-1, 16, size=(5, 8))
        for i, cols in enumerate(batch_cols):
            bare.read_batch(np.full(8, i, dtype=np.int64), cols, 5)
            faulty.read_batch(np.full(8, i, dtype=np.int64), cols, 5)
        np.testing.assert_array_equal(
            bare.counter.counts_per_step(),
            faulty.counter.counts_per_step(),
        )

    def test_skipped_entries_charge_nothing(self):
        injector = FaultInjector(FaultConfig(flip_rate=1.0, seed=1), 4, 8)
        faulty = FaultyTable(Table(4, 8), injector)
        faulty.read_batch(
            np.zeros(4, dtype=np.int64),
            np.array([-1, -1, -1, -1]),
            0,
        )
        assert faulty.counter.total_probes() == 0


class TestBatchScalarEquivalenceUnderFlips:
    """Dictionary-level: batch and scalar faulted paths cost the same."""

    @given(
        n=st.sampled_from([16, 32, 64]),
        flip_rate=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_per_step_probe_totals_match(self, n, flip_rate, seed):
        keys, N = _instance(n, seed)
        xs = _queries(keys, N, 40, seed + 2)

        scalar = _faulted_dictionary(n, seed, flip_rate, seed + 3)
        rng = as_generator(seed + 4)
        for x in xs:
            scalar.query(int(x), rng)
        scalar_steps = scalar.table.counter.counts_per_step().sum(axis=1)

        batch = _faulted_dictionary(n, seed, flip_rate, seed + 3)
        batch.query_batch(xs, as_generator(seed + 5))
        batch_steps = batch.table.counter.counts_per_step().sum(axis=1)

        np.testing.assert_array_equal(scalar_steps, batch_steps)

        # Row-scoped flips also leave the totals equal to the fault-free
        # run: the corrupted rows never steer the probe sequence.
        clean = _faulted_dictionary(n, seed, 0.0, seed + 3)
        clean.query_batch(xs, as_generator(seed + 6))
        np.testing.assert_array_equal(
            batch_steps, clean.table.counter.counts_per_step().sum(axis=1)
        )

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_replica_dispatch_totals_match_scalar(self, seed):
        """The serve-path primitive (query_batch_on) composes too."""
        n = 32
        keys, N = _instance(n, seed)
        xs = _queries(keys, N, 30, seed + 2)
        inner = LowContentionDictionary(keys, N, rng=as_generator(seed + 1))
        config = FaultConfig(
            flip_rate=0.5,
            faulty_rows=(inner.params.phf_row, inner.params.data_row),
            seed=seed + 3,
        )

        # Scalar faulted path: each query picks a random replica, but
        # per-step totals are replica-independent (the replicas are
        # copies), so they compare directly against a pinned dispatch.
        rep_scalar = ReplicatedDictionary(inner, 3, faults=config)
        rng = as_generator(seed + 4)
        for x in xs:
            rep_scalar.query(int(x), rng)
        scalar_steps = (
            rep_scalar.table.counter.counts_per_step().sum(axis=1)
        )

        rep_batch = ReplicatedDictionary(inner, 3, faults=config)
        rep_batch.query_batch_on(xs, 1, as_generator(seed + 5))
        batch_steps = (
            rep_batch.table.counter.counts_per_step().sum(axis=1)
        )
        np.testing.assert_array_equal(scalar_steps, batch_steps)
