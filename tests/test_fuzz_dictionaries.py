"""Property-based fuzzing: random instances across every scheme.

For random (seed, n) instances each dictionary must answer all
membership queries correctly, stay within its probe budget, and keep
its batch plans consistent with execution.  These instances are much
smaller than the fixtures (hypothesis runs many of them) but vary
shape: clustered keys, adversarial arithmetic progressions, extreme
universes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cellprobe import CellProbeMachine
from repro.core import LowContentionDictionary
from repro.dictionaries import (
    CuckooDictionary,
    DMDictionary,
    FKSDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
)

SCHEME_CLASSES = [
    LowContentionDictionary,
    FKSDictionary,
    DMDictionary,
    CuckooDictionary,
    SortedArrayDictionary,
    LinearProbingDictionary,
]

KEY_STYLES = ["random", "clustered", "arithmetic"]


def _make_keys(style: str, n: int, universe: int, rng) -> np.ndarray:
    if style == "random":
        return np.sort(rng.choice(universe, size=n, replace=False))
    if style == "clustered":
        base = int(rng.integers(0, universe - 4 * n))
        return np.sort(
            base + rng.choice(4 * n, size=n, replace=False)
        )
    # Arithmetic progression — the classic bad case for weak hashing.
    stride = int(rng.integers(1, max(2, universe // (n + 1))))
    start = int(rng.integers(0, universe - stride * n))
    return start + stride * np.arange(n, dtype=np.int64)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(8, 48),
    style=st.sampled_from(KEY_STYLES),
    scheme_idx=st.integers(0, len(SCHEME_CLASSES) - 1),
)
def test_random_instance_end_to_end(seed, n, style, scheme_idx):
    rng = np.random.default_rng(seed)
    universe = max(n * n, 4 * n)
    keys = _make_keys(style, n, universe, rng)
    cls = SCHEME_CLASSES[scheme_idx]
    d = cls(keys, universe, rng=np.random.default_rng(seed + 1))
    machine = CellProbeMachine(d, check_plan=True)
    qrng = np.random.default_rng(seed + 2)
    # All keys answer True, probing within budget and within plan.
    for x in keys:
        record = machine.run_query(int(x), qrng)
        assert record.answer is True
        assert record.num_probes <= d.max_probes
    # A spread of negatives answers False.
    negatives = [
        x for x in range(0, universe, max(1, universe // 17))
        if not d.contains(x)
    ][:10]
    for x in negatives:
        assert machine.run_query(int(x), qrng).answer is False


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(8, 40))
def test_lcd_batch_plan_mass(seed, n):
    """Each query's plan mass equals its probe count, for random builds."""
    rng = np.random.default_rng(seed)
    universe = n * n
    keys = np.sort(rng.choice(universe, size=n, replace=False))
    d = LowContentionDictionary(keys, universe, rng=np.random.default_rng(seed))
    xs = np.concatenate([keys, rng.integers(0, universe, size=n)])
    flat = np.zeros(d.table.num_cells)
    weights = np.ones(xs.size)
    for step in d.probe_plan_batch(xs):
        step.accumulate(flat, weights, d.table.s)
    total_mass = flat.sum()
    plan_lengths = sum(len(d.probe_plan(int(x))) for x in xs)
    assert total_mass == pytest.approx(plan_lengths)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(8, 32),
    replicas=st.sampled_from([3, 4, 5, 7]),
    stuck_rate=st.floats(0.0, 1.0),
    flip_rate=st.floats(0.0, 1.0),
    crash_minority=st.booleans(),
)
def test_majority_vote_never_wrong_with_healthy_majority(
    seed, n, replicas, stuck_rate, flip_rate, crash_minority
):
    """The fuzzed fault-tolerance guarantee (ISSUE satellite): as long as
    a strict majority of replicas is healthy, majority-vote mode answers
    every membership query correctly — for *any* fault rates (up to 100%
    stuck cells and certain bit flips) confined to the faulty minority,
    whether those replicas are corrupted, crashed, or both."""
    from repro.dictionaries import ReplicatedDictionary
    from repro.faults import FaultConfig

    rng = np.random.default_rng(seed)
    universe = max(n * n, 4 * n)
    keys = np.sort(rng.choice(universe, size=n, replace=False))
    inner = SortedArrayDictionary(keys, universe)
    f = (replicas - 1) // 2  # largest strict minority
    faulty = tuple(
        sorted(rng.choice(replicas, size=f, replace=False).tolist())
    )
    faults = FaultConfig(
        stuck_rate=stuck_rate,
        flip_rate=flip_rate,
        crashed_replicas=faulty if crash_minority else (),
        faulty_replicas=faulty,
        seed=seed + 1,
    )
    rep = ReplicatedDictionary(
        inner, replicas, mode="majority", faults=faults
    )
    qrng = np.random.default_rng(seed + 2)
    xs = np.concatenate([keys, rng.integers(0, universe, size=n)])
    for x in xs:
        assert rep.query(int(x), qrng) == inner.contains(int(x))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n=st.integers(16, 64),
    beta=st.floats(2.0, 5.0),
    degree=st.integers(3, 5),
)
def test_lcd_parameter_fuzz(seed, n, beta, degree):
    """Random legal parameters: construction succeeds, invariants hold,
    and the independent verifier accepts the table."""
    import math

    from repro.core import SchemeParameters, verify_dictionary

    alpha_min = degree / (2 * math.e * (math.log(2 * math.e) - 1))
    params = SchemeParameters(
        n=n, beta=beta, degree=degree, alpha=max(1.25, alpha_min * 1.05)
    )
    rng = np.random.default_rng(seed)
    universe = max(n * n, 4 * n)
    keys = np.sort(rng.choice(universe, size=n, replace=False))
    d = LowContentionDictionary(
        keys, universe, rng=np.random.default_rng(seed + 1), params=params
    )
    assert verify_dictionary(d, keys) == []
    qrng = np.random.default_rng(seed + 2)
    for x in keys[:: max(1, n // 8)]:
        assert d.query(int(x), qrng)
