"""DM family R^d_{r,m} tests (Definition 4)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.hashing import DMFamily
from repro.hashing.dm import DMHashFunction
from repro.utils.primes import next_prime

PRIME = next_prime(1 << 16)


def test_definition_formula(rng):
    """h(x) = (f(x) + z_{g(x)}) mod m, literally."""
    fam = DMFamily(PRIME, 50, 8, 3)
    h = fam.sample(rng)
    for x in rng.integers(0, 1 << 16, size=100):
        x = int(x)
        assert h(x) == (h.f(x) + int(h.z[h.g(x)])) % 50


def test_scalar_matches_batch(rng):
    fam = DMFamily(PRIME, 77, 13, 3)
    h = fam.sample(rng)
    xs = rng.integers(0, 1 << 16, size=400)
    assert all(h(int(x)) == int(v) for x, v in zip(xs, h.eval_batch(xs)))


def test_parameter_words_roundtrip(rng):
    fam = DMFamily(PRIME, 40, 6, 3)
    h = fam.sample(rng)
    words = h.parameter_words()
    assert len(words) == fam.words_per_function == 2 * 3 + 6
    h2 = fam.from_parameter_words(words)
    xs = np.arange(2000)
    assert np.array_equal(h.eval_batch(xs), h2.eval_batch(xs))


def test_mod_reduced(rng):
    """h' = h mod m agrees with reducing the output (needs m | s)."""
    s, m = 60, 12
    fam = DMFamily(PRIME, s, 5, 3)
    h = fam.sample(rng)
    h_prime = h.mod_reduced(m)
    xs = np.arange(3000)
    assert np.array_equal(h.eval_batch(xs) % m, h_prime.eval_batch(xs))
    assert h_prime.range_size == m


def test_mod_reduced_requires_divisibility(rng):
    h = DMFamily(PRIME, 60, 5, 3).sample(rng)
    with pytest.raises(ParameterError):
        h.mod_reduced(7)


def test_z_validation(rng):
    fam = DMFamily(PRIME, 10, 4, 3)
    f = fam.f_family.sample(rng)
    g = fam.g_family.sample(rng)
    with pytest.raises(ParameterError):
        DMHashFunction(f, g, np.array([0, 1, 2]))  # wrong length
    with pytest.raises(ParameterError):
        DMHashFunction(f, g, np.array([0, 1, 2, 10]))  # out of range


def test_range_uniformity(rng):
    """Marginal over random h of a fixed key is ~uniform on [m]."""
    m = 8
    fam = DMFamily(PRIME, m, 4, 3)
    values = np.array([fam.sample(rng)(4242) for _ in range(4000)])
    freq = np.bincount(values, minlength=m) / values.size
    assert np.abs(freq - 1 / m).max() < 0.03


def test_max_load_improves_on_plain_polynomial(rng):
    """The DM shift spreads a clustered key set at least as well as f alone.

    (Statistical smoke test of the Lemma 9 motivation, not a proof.)
    """
    keys = np.arange(512)  # adversarially clustered keys
    m = 512
    fam = DMFamily(PRIME, m, 22, 3)
    dm_max = np.mean(
        [fam.sample(rng).loads(keys).max() for _ in range(30)]
    )
    poly_max = np.mean(
        [fam.f_family.sample(rng).loads(keys).max() for _ in range(30)]
    )
    assert dm_max <= poly_max * 1.5  # never much worse


def test_from_parameter_words_validates_count():
    fam = DMFamily(PRIME, 10, 4, 3)
    with pytest.raises(ParameterError):
        fam.from_parameter_words([0] * 5)
