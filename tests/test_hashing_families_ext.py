"""Multiply-shift and tabulation extension families."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.hashing import MultiplyShiftFamily, TabulationFamily


class TestMultiplyShift:
    def test_scalar_matches_batch(self, rng):
        fam = MultiplyShiftFamily(64)
        h = fam.sample(rng)
        xs = rng.integers(0, 1 << 32, size=500)
        assert all(h(int(x)) == int(v) for x, v in zip(xs, h.eval_batch(xs)))

    def test_range_respected(self, rng):
        h = MultiplyShiftFamily(16).sample(rng)
        v = h.eval_batch(np.arange(10000))
        assert int(v.min()) >= 0 and int(v.max()) < 16

    def test_power_of_two_required(self):
        with pytest.raises(ParameterError):
            MultiplyShiftFamily(10)

    def test_range_one(self, rng):
        h = MultiplyShiftFamily(1).sample(rng)
        assert h(123) == 0
        assert np.all(h.eval_batch(np.arange(10)) == 0)

    def test_parameter_roundtrip(self, rng):
        fam = MultiplyShiftFamily(32)
        h = fam.sample(rng)
        h2 = fam.from_parameter_words(h.parameter_words())
        xs = np.arange(1000)
        assert np.array_equal(h.eval_batch(xs), h2.eval_batch(xs))

    def test_collision_rate_2universal(self, rng):
        m = 32
        fam = MultiplyShiftFamily(m)
        collisions = sum(
            fam.sample(rng)(111) == fam.sample(rng)(111) for _ in range(1)
        )  # smoke only
        hits = 0
        trials = 2000
        for _ in range(trials):
            h = fam.sample(rng)
            hits += h(98765) == h(13579)
        assert hits / trials <= 2.5 / m  # 2-universality: <= 2/m (+ noise)


class TestTabulation:
    def test_scalar_matches_batch(self, rng):
        fam = TabulationFamily(97, char_bits=8, chars=3)
        h = fam.sample(rng)
        xs = rng.integers(0, 1 << 24, size=400)
        assert all(h(int(x)) == int(v) for x, v in zip(xs, h.eval_batch(xs)))

    def test_parameter_roundtrip(self, rng):
        fam = TabulationFamily(50, char_bits=4, chars=2)
        h = fam.sample(rng)
        words = h.parameter_words()
        assert len(words) == fam.words_per_function == 2 * 16
        h2 = fam.from_parameter_words(words)
        xs = np.arange(256)
        assert np.array_equal(h.eval_batch(xs), h2.eval_batch(xs))

    def test_three_wise_uniformity_smoke(self, rng):
        m = 8
        fam = TabulationFamily(m, char_bits=4, chars=2)
        vals = np.array([fam.sample(rng)(77) for _ in range(4000)])
        freq = np.bincount(vals, minlength=m) / vals.size
        assert np.abs(freq - 1 / m).max() < 0.03

    def test_load_balance_near_random(self, rng):
        """Tabulation max load on n balls/n bins ~ O(log n / log log n)."""
        n = 1024
        fam = TabulationFamily(n, char_bits=8, chars=4)
        h = fam.sample(rng)
        loads = h.loads(np.arange(n))
        assert int(loads.max()) <= 12  # fully random would be ~6-8

    def test_wrong_word_count(self, rng):
        fam = TabulationFamily(10, char_bits=4, chars=2)
        with pytest.raises(ParameterError):
            fam.from_parameter_words([0] * 3)
