"""Per-bucket perfect hashing tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConstructionError, ParameterError
from repro.hashing import PerfectHashFunction, find_perfect_hash
from repro.utils.primes import next_prime

PRIME = next_prime(1 << 16)


def test_find_perfect_hash_is_injective(rng):
    keys = rng.choice(1 << 16, size=25, replace=False)
    h, trials = find_perfect_hash(keys, PRIME, 25 * 25, rng)
    assert h.is_perfect_on(keys)
    values = h.eval_batch(keys)
    assert np.unique(values).size == keys.size
    assert trials >= 1


def test_expected_trials_small(rng):
    """Quadratic space: mean trials should be < 2 (success prob >= 1/2)."""
    totals = []
    for seed in range(40):
        local = np.random.default_rng(seed)
        keys = local.choice(1 << 16, size=20, replace=False)
        _, trials = find_perfect_hash(keys, PRIME, 400, local)
        totals.append(trials)
    assert np.mean(totals) < 2.5


def test_packed_word_roundtrip(rng):
    keys = rng.choice(1 << 16, size=10, replace=False)
    h, _ = find_perfect_hash(keys, PRIME, 100, rng)
    h2 = PerfectHashFunction.from_packed_word(h.packed_word(), PRIME, 100)
    xs = np.arange(1000)
    assert np.array_equal(h.eval_batch(xs), h2.eval_batch(xs))


def test_singleton_and_empty_buckets(rng):
    h, trials = find_perfect_hash(np.array([42]), PRIME, 1, rng)
    assert h(42) == 0 and trials == 1
    h2, _ = find_perfect_hash(np.array([], dtype=np.int64), PRIME, 1, rng)
    assert h2.is_perfect_on(np.array([], dtype=np.int64))


def test_range_too_small_rejected(rng):
    with pytest.raises(ParameterError):
        find_perfect_hash(np.array([1, 2, 3]), PRIME, 2, rng)


def test_impossible_search_raises(rng):
    # Range = size means only a perfect matching works; with max_trials=1
    # and adversarial luck it can fail — force failure deterministically
    # with colliding keys (x and x + PRIME hash identically).
    keys = np.array([5, 5 + PRIME])
    with pytest.raises(ConstructionError):
        find_perfect_hash(keys, PRIME, 4, rng, max_trials=8)


def test_scalar_matches_batch(rng):
    h = PerfectHashFunction(PRIME, 1234, 567, 89)
    xs = rng.integers(0, 1 << 16, size=300)
    assert all(h(int(x)) == int(v) for x, v in zip(xs, h.eval_batch(xs)))


def test_parameter_validation():
    with pytest.raises(ParameterError):
        PerfectHashFunction(10, 1, 1, 5)  # composite modulus
    with pytest.raises(ParameterError):
        PerfectHashFunction(PRIME, PRIME, 0, 5)  # a out of range
    with pytest.raises(ParameterError):
        PerfectHashFunction(PRIME, 0, 0, 0)  # empty range


@settings(max_examples=20)
@given(seed=st.integers(0, 10000), size=st.integers(2, 15))
def test_perfect_hash_property(seed, size):
    local = np.random.default_rng(seed)
    keys = local.choice(1 << 16, size=size, replace=False)
    h, _ = find_perfect_hash(keys, PRIME, size * size, local)
    assert h.is_perfect_on(keys)
    assert int(h.eval_batch(keys).max()) < size * size
