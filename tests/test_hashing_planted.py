"""Planted-block family tests (the E16 adversarial instance)."""

import numpy as np
import pytest

from repro.contention import exact_contention
from repro.dictionaries import FKSDictionary
from repro.distributions import UniformOverSet
from repro.errors import ConstructionError, ParameterError
from repro.hashing import PlantedBlockFamily
from repro.utils.primes import field_prime_for_universe

N_KEYS = 256
UNIVERSE = N_KEYS * N_KEYS


@pytest.fixture(scope="module")
def planted_setup():
    rng = np.random.default_rng(0)
    keys = np.sort(rng.choice(UNIVERSE, size=N_KEYS, replace=False))
    prime = field_prime_for_universe(UNIVERSE)
    family = PlantedBlockFamily(prime, N_KEYS, keys)
    return keys, prime, family


class TestFamily:
    def test_activated_member_has_heavy_bucket(self, planted_setup, rng):
        keys, prime, family = planted_setup
        h = family.sample_activated(rng)
        loads = h.loads(keys)
        assert int(loads[0]) >= family.block_size

    def test_inactive_member_behaves_like_base(self, planted_setup, rng):
        keys, prime, family = planted_setup
        h = family.from_parameter_words([12345 << 31 | 678, 0])
        assert not h.activated
        assert np.array_equal(h.eval_batch(keys), h.base.eval_batch(keys))

    def test_scalar_matches_batch(self, planted_setup, rng):
        keys, prime, family = planted_setup
        h = family.sample_activated(rng)
        xs = np.concatenate([keys[:50], np.arange(100)])
        assert all(h(int(x)) == int(v) for x, v in zip(xs, h.eval_batch(xs)))

    def test_collision_bound_near_2universal(self, planted_setup):
        keys, prime, family = planted_setup
        # Bound within a small constant of 1/m.
        assert family.pairwise_collision_bound() <= 3.5 / N_KEYS

    def test_empirical_collision_rate(self, planted_setup, rng):
        keys, prime, family = planted_setup
        x, y = int(keys[0]), int(keys[1])  # same block (sorted keys)
        trials = 4000
        collisions = 0
        for _ in range(trials):
            h = family.sample(rng)
            if h(x) == h(y):
                collisions += 1
        assert collisions / trials <= family.pairwise_collision_bound() * 2

    def test_activation_probability(self, planted_setup, rng):
        keys, prime, family = planted_setup
        rate = np.mean(
            [family.sample(rng).activated for _ in range(3000)]
        )
        assert rate == pytest.approx(family.activation_prob, abs=0.02)

    def test_validation(self, planted_setup):
        keys, prime, _ = planted_setup
        with pytest.raises(ParameterError):
            PlantedBlockFamily(prime, N_KEYS, keys[:2])
        with pytest.raises(ParameterError):
            PlantedBlockFamily(prime, N_KEYS, keys, block_size=1)
        with pytest.raises(ParameterError):
            PlantedBlockFamily(prime, N_KEYS, keys, activation_prob=1.5)


class TestFKSWithPlantedLevel1:
    def test_fks_accepts_activated_member(self, planted_setup, rng):
        keys, prime, family = planted_setup
        h = family.sample_activated(np.random.default_rng(1))
        fks = FKSDictionary(
            keys, UNIVERSE, rng=np.random.default_rng(2), level1=h
        )
        assert fks.level1 is h
        # Correctness end to end.
        for x in keys[:30]:
            assert fks.query(int(x), rng)
        assert not fks.query(
            next(v for v in range(UNIVERSE) if not fks.contains(v)), rng
        )

    def test_contention_is_block_over_n(self, planted_setup):
        keys, prime, family = planted_setup
        h = family.sample_activated(np.random.default_rng(1))
        fks = FKSDictionary(
            keys, UNIVERSE, rng=np.random.default_rng(2), level1=h
        )
        dist = UniformOverSet(UNIVERSE, keys)
        phi = exact_contention(fks, dist).max_step_contention()
        loads = h.loads(keys)
        assert phi == pytest.approx(int(loads.max()) / N_KEYS)

    def test_fks_condition_still_enforced(self, planted_setup):
        keys, prime, family = planted_setup
        huge = PlantedBlockFamily(
            prime, N_KEYS, keys, block_size=N_KEYS, activation_prob=1.0
        )
        h = huge.sample_activated(np.random.default_rng(3))
        with pytest.raises(ConstructionError):
            # A block of size n gives sum of squares ~ n**2 > 4n.
            FKSDictionary(
                keys, UNIVERSE, rng=np.random.default_rng(4), level1=h
            )

    def test_level1_range_checked(self, planted_setup):
        keys, prime, family = planted_setup
        wrong = PlantedBlockFamily(prime, N_KEYS // 2, keys)
        h = wrong.sample_activated(np.random.default_rng(5))
        with pytest.raises(ConstructionError):
            FKSDictionary(
                keys, UNIVERSE, rng=np.random.default_rng(6), level1=h
            )
