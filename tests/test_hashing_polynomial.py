"""Polynomial family: scalar/vector agreement, independence, storage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.hashing import PolynomialFamily
from repro.hashing.polynomial import PolynomialHashFunction
from repro.utils.primes import next_prime

PRIME = next_prime(1 << 16)


def test_scalar_matches_batch(rng):
    fam = PolynomialFamily(PRIME, 101, 4)
    h = fam.sample(rng)
    xs = rng.integers(0, 1 << 16, size=500)
    batch = h.eval_batch(xs)
    assert all(h(int(x)) == int(v) for x, v in zip(xs, batch))


def test_range_respected(rng):
    h = PolynomialFamily(PRIME, 37, 3).sample(rng)
    values = h.eval_batch(np.arange(5000))
    assert int(values.min()) >= 0 and int(values.max()) < 37


def test_parameter_word_roundtrip(rng):
    fam = PolynomialFamily(PRIME, 64, 3)
    h = fam.sample(rng)
    h2 = fam.from_parameter_words(h.parameter_words())
    xs = np.arange(1000)
    assert np.array_equal(h.eval_batch(xs), h2.eval_batch(xs))


def test_degree_one_is_constant(rng):
    fam = PolynomialFamily(PRIME, 100, 1)
    h = fam.sample(rng)
    values = h.eval_batch(np.arange(50))
    assert np.unique(values).size == 1


def test_pairwise_independence_statistics(rng):
    """Empirical collision rate of a 2-wise family ~ 1/m."""
    m = 64
    fam = PolynomialFamily(PRIME, m, 2)
    collisions = 0
    trials = 3000
    for _ in range(trials):
        h = fam.sample(rng)
        if h(12345) == h(54321):
            collisions += 1
    rate = collisions / trials
    assert abs(rate - 1 / m) < 4 * np.sqrt((1 / m) / trials)


def test_uniform_marginal_statistics(rng):
    """For a fixed key, h(x) over random h is ~uniform over [m]."""
    m = 16
    fam = PolynomialFamily(PRIME, m, 2)
    values = np.array([fam.sample(rng)(999) for _ in range(4000)])
    freq = np.bincount(values, minlength=m) / values.size
    assert np.abs(freq - 1 / m).max() < 0.03


def test_loads_and_buckets(rng):
    fam = PolynomialFamily(PRIME, 10, 2)
    h = fam.sample(rng)
    keys = np.arange(100)
    loads = h.loads(keys)
    buckets = h.buckets(keys)
    assert loads.sum() == 100
    assert [len(b) for b in buckets] == loads.tolist()
    for i, b in enumerate(buckets):
        assert all(h(int(x)) == i for x in b)


def test_validation():
    with pytest.raises(ParameterError):
        PolynomialFamily(10, 5, 2)  # not prime
    with pytest.raises(ParameterError):
        PolynomialFamily(PRIME, 0, 2)
    with pytest.raises(ParameterError):
        PolynomialFamily(PRIME, 5, 0)
    with pytest.raises(ParameterError):
        PolynomialHashFunction(PRIME, 5, [PRIME])  # coeff out of field
    with pytest.raises(ParameterError):
        PolynomialHashFunction(PRIME, 5, [])
    fam = PolynomialFamily(PRIME, 5, 2)
    with pytest.raises(ParameterError):
        fam.from_parameter_words([1])  # wrong count


def test_negative_keys_rejected(rng):
    h = PolynomialFamily(PRIME, 5, 2).sample(rng)
    with pytest.raises(ParameterError):
        h.eval_batch(np.array([-1]))


@settings(max_examples=25)
@given(
    x=st.integers(min_value=0, max_value=(1 << 31) - 1),
    seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_scalar_batch_agreement_property(x, seed):
    from repro.utils.primes import MAX_VECTOR_PRIME

    # 2**31 - 1 is prime (Mersenne) and is the largest legal modulus.
    fam = PolynomialFamily(MAX_VECTOR_PRIME, 997, 3)
    h = fam.sample(np.random.default_rng(seed))
    assert h(x) == int(h.eval_batch(np.array([x]))[0])
