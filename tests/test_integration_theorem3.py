"""Headline integration test: Theorem 3 end to end at a non-toy size.

Builds the full scheme at n = 512 (universe n**2), runs exact contention
against the paper's distribution class, executes plan-validated queries,
and asserts all four parameters of the
``(O(n), b, O(1), O(1/n))``-balanced scheme simultaneously.
"""

import numpy as np
import pytest

from repro.cellprobe import CellProbeMachine
from repro.contention import exact_contention
from repro.core import LowContentionDictionary
from repro.distributions import UniformPositiveNegative

N_KEYS = 512


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(2024)
    N = N_KEYS * N_KEYS
    keys = np.sort(rng.choice(N, size=N_KEYS, replace=False))
    d = LowContentionDictionary(keys, N, rng=rng)
    return keys, N, d


def test_theorem3_all_four_parameters(instance):
    keys, N, d = instance
    # (1) Space O(n): words per key bounded by rows * beta + slack.
    assert d.space_words <= 30 * N_KEYS
    # (2) Cell size b: 64 >= log2 N.
    assert 64 >= np.log2(N)
    # (3) Probes O(1).
    assert d.max_probes <= 2 * d.params.degree + d.params.rho + 4
    # (4) Contention O(1/n) at EVERY step (Definition 2), for the whole
    # distribution class: pure positive, pure negative, and mixes.
    for p in (1.0, 0.75, 0.5, 0.25, 0.0):
        dist = UniformPositiveNegative(N, keys, p)
        matrix = exact_contention(d, dist)
        phi = matrix.max_step_contention()
        assert phi * N_KEYS < 3.0, f"positive_mass={p}: phi*n = {phi * N_KEYS}"


def test_queries_correct_and_plan_conformant(instance):
    keys, N, d = instance
    rng = np.random.default_rng(7)
    machine = CellProbeMachine(d, check_plan=True)
    negatives = []
    x = 0
    key_set = set(keys.tolist())
    while len(negatives) < 50:
        if x not in key_set:
            negatives.append(x)
        x += 997
    for q in list(keys[:50]) + negatives:
        machine.run_query(int(q), rng)


def test_balanced_scheme_definition2(instance):
    """Definition 2 asks the contention bound per step AND per cell; the
    whole matrix (not just its max) must be <= c/n."""
    keys, N, d = instance
    dist = UniformPositiveNegative(N, keys, 0.5)
    matrix = exact_contention(d, dist)
    assert float(matrix.phi.max()) * N_KEYS < 3.0
    # And the total contention (summed over steps) is O(1/n) too since
    # there are O(1) steps.
    assert matrix.max_total_contention() * N_KEYS < 3.0 * d.max_probes


def test_empirical_execution_agrees_with_exact(instance):
    keys, N, d = instance
    from repro.contention import empirical_contention

    dist = UniformPositiveNegative(N, keys, 0.5)
    exact = exact_contention(d, dist)
    emp = empirical_contention(d, dist, 20_000, np.random.default_rng(3))
    assert emp.expected_probes() == pytest.approx(
        exact.expected_probes(), rel=0.01
    )
    # Hot-cell estimates within Monte-Carlo noise.
    assert emp.max_step_contention() <= 3.0 * exact.max_step_contention()


@pytest.mark.parametrize("seed", [11, 222, 3333])
def test_theorem3_seed_robustness(seed):
    """The O(1/n) constant is stable across independent instances."""
    rng = np.random.default_rng(seed)
    n = 256
    N = n * n
    keys = np.sort(rng.choice(N, size=n, replace=False))
    d = LowContentionDictionary(keys, N, rng=rng)
    dist = UniformPositiveNegative(N, keys, 0.5)
    phi = exact_contention(d, dist).max_step_contention()
    assert phi * n < 3.0
    assert d.construction_trials <= 5
