"""Table rendering and result serialization."""

import json

import pytest

from repro.io import ExperimentResult, render_table, save_results


class TestRenderTable:
    def test_basic_render(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        out = render_table(rows)
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "22" in lines[-1]
        assert set(lines[1]) <= {"-", "+"}

    def test_heterogeneous_rows_union_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        out = render_table(rows)
        assert "a" in out and "b" in out

    def test_float_formatting(self):
        out = render_table([{"v": 0.000123456}, {"v": 123456.0}, {"v": 0.5}])
        assert "1.235e-04" in out
        assert "1.235e+05" in out
        assert "0.5" in out

    def test_bool_formatting(self):
        out = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="T")

    def test_title_and_explicit_columns(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b"], title="only b")
        assert out.startswith("only b")
        assert "a" not in out.splitlines()[1]


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="E0",
            title="demo",
            claim="the claim",
            rows=[{"x": 1}],
            finding="the finding",
            notes="a note",
        )

    def test_render_contains_sections(self):
        text = self._result().render()
        assert "[E0] demo" in text
        assert "Claim: the claim" in text
        assert "Finding: the finding" in text
        assert "Notes: a note" in text

    def test_as_dict_roundtrips_json(self):
        d = self._result().as_dict()
        assert json.loads(json.dumps(d)) == d

    def test_save_results(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([self._result()], path)
        data = json.loads(path.read_text())
        assert data[0]["experiment_id"] == "E0"
        assert data[0]["rows"] == [{"x": 1}]
