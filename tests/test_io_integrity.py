"""Shared integrity primitives: frames, checksums, atomic publication.

``repro.io.integrity`` is the single implementation behind the
shared-memory fabric header CRCs, the construction-cache frames, and
the durable checkpoint format — these tests pin its contract: frame
round-trips, each verification failure's ordered reason string, CRC32
over array-likes, and crash-safe ``atomic_write_bytes`` publication.
"""

import os

import numpy as np
import pytest

from repro.io.integrity import (
    CRC_BYTES,
    SHA256_BYTES,
    atomic_write_bytes,
    check_frame,
    crc32_bytes,
    frame,
    sha256_bytes,
)

MAGIC = b"TESTMAGIC:1\n"


class TestChecksums:
    def test_crc32_is_unsigned_and_stable(self):
        assert crc32_bytes(b"hello") == 0x3610A686
        assert 0 <= crc32_bytes(b"\xff" * 64) <= 0xFFFFFFFF

    def test_crc32_accepts_tobytes_objects(self):
        arr = np.arange(16, dtype=np.int64)
        assert crc32_bytes(arr) == crc32_bytes(arr.tobytes())

    def test_sha256_matches_hashlib_width(self):
        digest = sha256_bytes(b"payload")
        assert isinstance(digest, bytes)
        assert len(digest) == SHA256_BYTES == 32


class TestFrame:
    def test_round_trip(self):
        payload = b"some pickled state" * 7
        blob = frame(payload, MAGIC)
        assert blob.startswith(MAGIC)
        assert len(blob) == len(MAGIC) + CRC_BYTES + SHA256_BYTES + len(payload)
        got, reason = check_frame(blob, MAGIC)
        assert got == payload
        assert reason is None

    def test_empty_payload_round_trips(self):
        got, reason = check_frame(frame(b"", MAGIC), MAGIC)
        assert got == b""
        assert reason is None

    def test_bad_magic_doubles_as_version_check(self):
        blob = frame(b"x", b"TESTMAGIC:2\n")
        got, reason = check_frame(blob, MAGIC)
        assert got is None
        assert "magic" in reason

    def test_truncated_header(self):
        blob = frame(b"payload", MAGIC)
        got, reason = check_frame(blob[: len(MAGIC) + 3], MAGIC)
        assert got is None
        assert reason == "truncated header"

    def test_payload_corruption_is_a_crc_mismatch(self):
        blob = bytearray(frame(b"payload bytes", MAGIC))
        blob[-1] ^= 0x40  # flip one payload bit
        got, reason = check_frame(bytes(blob), MAGIC)
        assert got is None
        assert "CRC32" in reason

    def test_digest_corruption_is_a_sha_mismatch(self):
        # Damage the stored SHA-256, not the payload: the CRC still
        # matches, so verification must fall through to the digest.
        blob = bytearray(frame(b"payload bytes", MAGIC))
        blob[len(MAGIC) + CRC_BYTES] ^= 0x01
        got, reason = check_frame(bytes(blob), MAGIC)
        assert got is None
        assert "SHA-256" in reason

    def test_truncated_payload_detected(self):
        blob = frame(b"a longer payload to cut", MAGIC)
        got, reason = check_frame(blob[:-4], MAGIC)
        assert got is None
        assert reason is not None


class TestAtomicWrite:
    def test_publishes_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"generation one")
        assert target.read_bytes() == b"generation one"
        atomic_write_bytes(target, b"generation two", fsync=False)
        assert target.read_bytes() == b"generation two"
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_failure_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write_bytes(tmp_path / "no" / "such" / "dir.bin", b"x")

    def test_tmp_name_is_pid_scoped(self, tmp_path):
        # The sibling tmp name embeds the pid, so two writers on the
        # same path never tear each other's staging file.
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"data")
        assert f".tmp.{os.getpid()}" not in {
            p.name for p in tmp_path.iterdir()
        }
