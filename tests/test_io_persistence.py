"""Dictionary serialization round-trip tests."""

import numpy as np
import pytest

from repro.cellprobe import CellProbeMachine
from repro.contention import exact_contention
from repro.errors import ParameterError
from repro.io import load_dictionary, save_dictionary


@pytest.fixture()
def saved_path(lcd, tmp_path):
    path = tmp_path / "dict.npz"
    save_dictionary(lcd, path)
    return path


class TestRoundTrip:
    def test_queries_identical(self, lcd, saved_path, keys, negatives):
        loaded = load_dictionary(saved_path)
        rng = np.random.default_rng(0)
        for x in list(keys[:30]) + list(negatives[:30]):
            assert loaded.query(int(x), rng) == lcd.contains(int(x))

    def test_plans_identical(self, lcd, saved_path, keys, negatives):
        loaded = load_dictionary(saved_path)
        for x in list(keys[:15]) + list(negatives[:15]):
            a = lcd.probe_plan(int(x))
            b = loaded.probe_plan(int(x))
            assert len(a) == len(b)
            for sa, sb in zip(a, b):
                assert sa.row == sb.row
                assert np.array_equal(sa.support(), sb.support())

    def test_table_cells_identical(self, lcd, saved_path):
        loaded = load_dictionary(saved_path)
        assert np.array_equal(loaded.table._cells, lcd.table._cells)

    def test_contention_identical(self, lcd, saved_path, uniform_dist):
        loaded = load_dictionary(saved_path)
        a = exact_contention(lcd, uniform_dist)
        b = exact_contention(loaded, uniform_dist)
        assert np.allclose(a.phi, b.phi)

    def test_machine_validates_loaded(self, saved_path, keys, rng):
        loaded = load_dictionary(saved_path)
        machine = CellProbeMachine(loaded, check_plan=True)
        for x in keys[:10]:
            assert machine.run_query(int(x), rng).answer

    def test_params_preserved(self, lcd, saved_path):
        loaded = load_dictionary(saved_path)
        assert loaded.params == lcd.params
        assert loaded.prime == lcd.prime
        assert loaded.construction_trials == lcd.construction_trials


class TestValidation:
    def test_wrong_type_rejected(self, fks, tmp_path):
        with pytest.raises(ParameterError):
            save_dictionary(fks, tmp_path / "x.npz")

    def test_corrupt_version_rejected(self, lcd, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "bad.npz"
        save_dictionary(lcd, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        meta["format_version"] = 999
        data["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(ParameterError):
            load_dictionary(path)
