"""ASCII chart tests."""

import numpy as np
import pytest

from repro.contention import exact_contention
from repro.distributions import UniformOverSet
from repro.errors import ParameterError
from repro.io.plots import (
    contention_profile,
    horizontal_bars,
    loglog_series,
    sparkline,
)


class TestSparkline:
    def test_width_and_charset(self):
        out = sparkline(np.arange(100), width=20)
        assert len(out) == 20
        assert set(out) <= set(" ▁▂▃▄▅▆▇█")

    def test_monotone_input_monotone_output(self):
        out = sparkline(np.arange(64), width=8)
        levels = [" ▁▂▃▄▅▆▇█".index(c) for c in out]
        assert levels == sorted(levels)
        assert levels[-1] == 8  # max maps to full block

    def test_flat_zero(self):
        assert sparkline(np.zeros(10), width=5) == " " * 5

    def test_spike_visible(self):
        v = np.zeros(100)
        v[50] = 1.0
        out = sparkline(v, width=10)
        assert out.count("█") == 1

    def test_short_input(self):
        assert len(sparkline(np.array([1.0, 2.0]), width=64)) == 2

    def test_log_scale_preserves_nonzero(self):
        v = np.array([1e-6, 1e-3, 1.0])
        out = sparkline(v, width=3, log_scale=True)
        assert out[0] != " "  # tiny value still visible

    def test_validation(self):
        with pytest.raises(ParameterError):
            sparkline(np.array([]))
        with pytest.raises(ParameterError):
            sparkline(np.array([1.0]), width=0)


class TestContentionProfile:
    def test_whole_table_and_single_row(self, fks, keys):
        dist = UniformOverSet(fks.universe_size, keys)
        matrix = exact_contention(fks, dist)
        whole = contention_profile(matrix, width=32)
        assert len(whole.splitlines()) == fks.table.rows
        assert "row  0" in whole
        single = contention_profile(matrix, row=1, width=32)
        assert len(single) == 32


class TestHorizontalBars:
    def test_renders_all_labels(self):
        out = horizontal_bars(["a", "bb"], [1.0, 100.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("a")
        assert lines[1].count("#") > lines[0].count("#")

    def test_zero_values_get_empty_bars(self):
        out = horizontal_bars(["x", "y"], [0.0, 5.0])
        assert "#" not in out.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            horizontal_bars(["a"], [1.0, 2.0])
        with pytest.raises(ParameterError):
            horizontal_bars(["a"], [-1.0])


class TestLogLogSeries:
    def test_linear_law_slope_one(self):
        n = [64, 128, 256, 512]
        out = loglog_series(n, [2 * v for v in n])
        slopes = [
            float(line.split()[-1]) for line in out.splitlines()[2:]
        ]
        assert all(abs(s - 1.0) < 1e-9 for s in slopes)

    def test_constant_law_slope_zero(self):
        out = loglog_series([64, 128, 256], [5.0, 5.0, 5.0])
        slopes = [float(line.split()[-1]) for line in out.splitlines()[2:]]
        assert all(abs(s) < 1e-9 for s in slopes)

    def test_sqrt_law_slope_half(self):
        n = [64, 256, 1024]
        out = loglog_series(n, [v**0.5 for v in n])
        slopes = [float(line.split()[-1]) for line in out.splitlines()[2:]]
        assert all(abs(s - 0.5) < 1e-9 for s in slopes)

    def test_validation(self):
        with pytest.raises(ParameterError):
            loglog_series([1.0], [1.0])
