"""The executable Theorem 13 interaction (adversary loop)."""

import numpy as np
import pytest

from repro.errors import GameError
from repro.lowerbound import play_adversarial_game
from repro.lowerbound.adversarial_game import theorem_r

N, S, B = 64, 128, 16
PHI_NEAR_OPT = 1.5 / S  # the "contention within O(1) of optimal" regime


class TestGameLoop:
    def test_all_inequalities_hold_over_rounds(self):
        rounds, game = play_adversarial_game(
            N, S, B, PHI_NEAR_OPT, t_star=4, rng=0, r_override=16
        )
        assert len(rounds) == 4
        assert all(r.all_good_violated for r in rounds)
        assert game.transcript.rounds == 4

    def test_adversary_squeezes_information(self):
        rounds, _ = play_adversarial_game(
            N, S, B, PHI_NEAR_OPT, t_star=4, rng=0, r_override=16
        )
        # Concentration is priced out: the chosen specs yield a small
        # fraction of the uncapped (q = 0) information every round.
        for r in rounds:
            assert r.good_rows > 0
            assert r.chosen_bits < 0.2 * r.uncapped_bits

    def test_q_mass_monotone_and_stochastic(self):
        rounds, _ = play_adversarial_game(
            N, S, B, PHI_NEAR_OPT, t_star=4, rng=1, r_override=16
        )
        masses = [r.q_mass for r in rounds]
        assert masses == sorted(masses)
        assert masses[-1] <= 1.0
        # Per-round mass increase is at most epsilon = 1/t*.
        increments = np.diff([0.0] + masses)
        assert np.all(increments <= 1.0 / 4 + 1e-9)

    def test_loose_cap_at_small_scale_is_out_of_regime(self):
        """With the loose polylog cap at n = 64, Lemma 15's numeric
        preconditions fail (2*delta/r is not < epsilon/|T|): the checker
        detects that the adversary cannot deliver its guarantee —
        documenting that Theorem 13 is genuinely asymptotic here."""
        with pytest.raises(GameError):
            play_adversarial_game(
                N, S, B, (np.log2(N) ** 2) / S, t_star=3, rng=0
            )

    def test_information_below_uncapped_forever(self):
        rounds, game = play_adversarial_game(
            N, S, B, PHI_NEAR_OPT, t_star=6, rng=2, r_override=16
        )
        assert game.transcript.total_bits < 6 * rounds[0].uncapped_bits / 5

    def test_theorem_r_formula(self):
        r = theorem_r(64, 128, 0.01, 4, 8)
        expected = int(
            np.ceil(np.sqrt(5 * 4 * 0.01 * 128 * 64 * np.log(8)))
        )
        assert r == max(2, expected)

    def test_deterministic_given_seed(self):
        a, _ = play_adversarial_game(
            N, S, B, PHI_NEAR_OPT, t_star=3, rng=7, r_override=16
        )
        b, _ = play_adversarial_game(
            N, S, B, PHI_NEAR_OPT, t_star=3, rng=7, r_override=16
        )
        assert a == b
