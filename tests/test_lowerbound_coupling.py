"""Lemma 21 tests: coupled probe sets with small unions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.lowerbound.coupling import (
    couple_probe_sets,
    empirical_marginals,
    expected_union_bound,
)


def test_union_bound_formula():
    P = np.array([[0.5, 0.0], [0.25, 0.5]])
    assert expected_union_bound(P) == pytest.approx(0.5 + 0.5)


def test_sets_are_subsets_of_base(rng):
    P = rng.random((4, 20)) * 0.5
    sets, B = couple_probe_sets(P, rng)
    base = set(B.tolist())
    for L in sets:
        assert set(L.tolist()) <= base


def test_marginals_preserved(rng):
    P = rng.random((3, 15)) * 0.6
    marg, _ = empirical_marginals(P, 4000, rng)
    assert np.abs(marg - P).max() < 0.05


def test_union_within_bound(rng):
    P = rng.random((5, 25)) * 0.4
    _, mean_union = empirical_marginals(P, 3000, rng)
    assert mean_union <= expected_union_bound(P) + 0.2


def test_identical_rows_share_all_probes(rng):
    """When all marginals agree, the coupling makes L_i identical —
    that's the whole point: n queries, one union."""
    row = rng.random(30) * 0.5
    P = np.tile(row, (6, 1))
    sets, B = couple_probe_sets(P, rng)
    for L in sets:
        assert np.array_equal(np.sort(L), np.sort(B))
    assert expected_union_bound(P) == pytest.approx(row.sum())


def test_deterministic_columns(rng):
    """Columns with marginal 1 for some row are always in that row's set."""
    P = np.zeros((2, 5))
    P[0, 3] = 1.0
    sets, _ = couple_probe_sets(P, rng)
    assert 3 in set(sets[0].tolist())
    assert sets[1].size == 0


def test_validation():
    with pytest.raises(ParameterError):
        expected_union_bound(np.array([0.5, 0.5]))  # 1-D
    with pytest.raises(ParameterError):
        expected_union_bound(np.array([[1.5]]))  # out of [0, 1]


def test_empty_base_set(rng):
    P = np.zeros((3, 4))
    sets, B = couple_probe_sets(P, rng)
    assert B.size == 0
    assert all(L.size == 0 for L in sets)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10000), n=st.integers(1, 6), s=st.integers(1, 20))
def test_union_bound_property(seed, n, s):
    rng = np.random.default_rng(seed)
    P = rng.random((n, s)) * rng.random()
    # Exact: E|union L_i| = E|B restricted to cols any row uses|... the
    # bound sum_j ptilde_j always dominates the empirical mean union.
    _, mean_union = empirical_marginals(P, 400, rng)
    assert mean_union <= expected_union_bound(P) + 0.6  # MC slack
