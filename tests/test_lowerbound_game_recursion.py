"""Communication game (Lemma 14) and the t* recursion (Theorem 13)."""

import math

import numpy as np
import pytest

from repro.errors import GameError, ParameterError
from repro.lowerbound.game import (
    CommunicationGame,
    ProbeSpecification,
    specification_from_dictionary,
)
from repro.lowerbound.recursion import (
    information_deficit_tstar,
    recursion_bounds,
    recursion_trace,
    tstar_curve,
)


class TestProbeSpecification:
    def test_row_sum_constraint(self):
        with pytest.raises(GameError):
            ProbeSpecification(np.full((2, 4), 0.3))  # rows sum to 1.2
        ProbeSpecification(np.full((2, 4), 0.25))  # exactly 1: fine

    def test_contention_constraint(self):
        spec = ProbeSpecification(np.full((2, 4), 0.25))
        q = np.array([0.5, 0.5])
        spec.check_contention(q, phi_star=0.2)  # 0.25 <= 0.2/0.5 = 0.4
        with pytest.raises(GameError):
            spec.check_contention(q, phi_star=0.1)  # 0.25 > 0.2

    def test_zero_mass_queries_unconstrained(self):
        spec = ProbeSpecification(np.eye(2) * 1.0)
        spec.check_contention(np.zeros(2), phi_star=1e-9)

    def test_information_budget(self):
        P = np.zeros((3, 5))
        P[0, 0] = 1.0
        P[1, 0] = 0.5
        P[2, 4] = 0.25
        spec = ProbeSpecification(P)
        assert spec.information_budget(b=8) == pytest.approx(8 * 1.25)


class TestCommunicationGame:
    def test_round_accounting(self):
        game = CommunicationGame(n=4, s=10, b=8, phi_star=0.5)
        bits = game.play_round(game.uniform_specification())
        assert bits == pytest.approx(8 * 10 * (1 / 10))
        assert game.transcript.rounds == 1
        assert game.transcript.total_bits == pytest.approx(bits)

    def test_adversary_can_only_raise_q(self):
        game = CommunicationGame(n=3, s=5, b=4, phi_star=0.5)
        game.set_q(np.array([0.1, 0.0, 0.0]))
        with pytest.raises(GameError):
            game.set_q(np.array([0.05, 0.0, 0.0]))
        with pytest.raises(GameError):
            game.set_q(np.array([0.9, 0.9, 0.0]))  # over-mass

    def test_hot_query_forbids_concentration(self):
        game = CommunicationGame(n=2, s=4, b=1, phi_star=0.1)
        game.set_q(np.array([0.5, 0.0]))
        P = np.zeros((2, 4))
        P[0, 0] = 1.0  # query 0 concentrates: violates 0.1/0.5 = 0.2
        with pytest.raises(GameError):
            game.play_round(ProbeSpecification(P))
        # The clipped version is legal.
        clipped = game.clipped_specification(P)
        game.play_round(clipped)
        assert clipped.P[0, 0] == pytest.approx(0.2)

    def test_information_target(self):
        game = CommunicationGame(n=16, s=8, b=4, phi_star=0.5)
        assert game.transcript.information_target(16, 2) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        game = CommunicationGame(n=2, s=4, b=1, phi_star=0.5)
        with pytest.raises(ParameterError):
            game.play_round(ProbeSpecification(np.zeros((3, 4))))


class TestDictionarySpecifications:
    def test_specs_from_lcd_are_legal(self, lcd, keys):
        n = 16
        q = np.full(n, 0.5 / n)
        phi_star = (math.log2(n) ** 2) / lcd.table.s
        game = CommunicationGame(
            n=n, s=lcd.table.s, b=64, phi_star=phi_star, q=q
        )
        for t in range(lcd.max_probes):
            spec = specification_from_dictionary(lcd, keys[:n], t)
            game.play_round(spec)  # validates (1) and (2)
        assert game.transcript.rounds == lcd.max_probes
        assert game.transcript.total_bits > 0

    def test_spec_rows_match_plans(self, fks, keys):
        spec = specification_from_dictionary(fks, keys[:4], step=0)
        for i in range(4):
            plan0 = fks.probe_plan(int(keys[i]))[0]
            assert spec.P[i, plan0.support()].sum() == pytest.approx(1.0)

    def test_past_the_plan_is_zero(self, fks, keys):
        spec = specification_from_dictionary(fks, keys[:3], step=99)
        assert spec.P.sum() == 0.0


class TestRecursion:
    def test_closed_form_monotone_increasing_to_a(self):
        bounds = recursion_bounds(a1=2.0, a=1000.0, t_star=6)
        assert all(b1 <= b2 for b1, b2 in zip(bounds, bounds[1:]))
        assert bounds[-1] <= 1000.0

    def test_trace_feasibility_transition(self):
        """For fixed n, small t is infeasible, large t feasible."""
        n = 1 << 20
        lg = math.log2(n)
        s, b = 2 * n, lg
        phi = lg / s
        feasible = [
            recursion_trace(n, s, b, phi, t).feasible for t in range(1, 8)
        ]
        assert feasible[-1], "large t must be feasible"
        assert not all(feasible), "tiny t must be infeasible"
        # Once feasible, stays feasible (target shrinks, total grows).
        first = feasible.index(True)
        assert all(feasible[first:])

    def test_tstar_grows_like_loglog(self):
        curve = tstar_curve([4, 16, 64, 256, 512])
        ts = [t for (_, t, _) in curve]
        assert ts == sorted(ts)
        assert ts[-1] > ts[0]
        # Ratio to log log n stays bounded in a narrow band.
        ratios = [t / ll for (_, t, ll) in curve if ll > 0]
        assert max(ratios) < 1.5 and min(ratios) > 0.2

    def test_tstar_sublogarithmic(self):
        """t*(n) is genuinely tiny: for n = 2^256, still single digits."""
        assert information_deficit_tstar(2**256) <= 8

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            recursion_bounds(0, 1, 1)
        with pytest.raises(ParameterError):
            recursion_trace(10, 10, 1, 0.1, 0)

    def test_small_n_floor(self):
        assert information_deficit_tstar(2) == 1
