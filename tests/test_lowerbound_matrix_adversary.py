"""Lemma 16 (envelope bound) and Lemma 15 (adversary) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GameError, ParameterError
from repro.lowerbound.adversary import (
    lemma15_distribution,
    lemma15_r,
    violates_all_rows,
)
from repro.lowerbound.matrixbounds import (
    bad_row_budget,
    lemma16_holds,
    lemma16_lhs,
    lemma16_lhs_fractional,
    lemma16_rhs,
    row_is_good,
)


class TestLemma16:
    def test_concentrated_matrix(self):
        """Rows that each put mass 1 on distinct cells: rhs = min(n, s)."""
        n, s = 4, 10
        P = np.zeros((n, s))
        for i in range(n):
            P[i, i] = 1.0
        assert lemma16_rhs(P) == pytest.approx(4.0)
        assert lemma16_lhs(P) == 4  # each costs 1, budget s=10

    def test_spread_matrix(self):
        """Uniform rows: rhs = 1, and only one row fits the budget...
        but fractionally lhs >= 1 still holds."""
        P = np.full((3, 6), 1 / 6)
        assert lemma16_rhs(P) == pytest.approx(1.0)
        assert lemma16_lhs(P) == 1  # cost 6 each, budget 6
        assert lemma16_holds(P)

    def test_fractional_dominates_integer(self, rng):
        for _ in range(10):
            P = rng.random((6, 30))
            P /= P.sum(axis=1, keepdims=True) * rng.uniform(1, 4)
            frac = lemma16_lhs_fractional(P)
            assert lemma16_lhs(P) <= frac <= lemma16_lhs(P) + 1

    def test_row_sum_validation(self):
        with pytest.raises(ParameterError):
            lemma16_rhs(np.full((2, 3), 0.9))

    def test_zero_rows_handled(self):
        P = np.zeros((3, 5))
        P[0, 0] = 0.5
        assert lemma16_lhs(P) == 1
        assert lemma16_rhs(P) == pytest.approx(0.5)

    def test_row_goodness(self):
        row = np.array([1.0, 2.0, 3.0, 100.0])
        assert row_is_good(row, r=3, threshold=6.0)
        assert not row_is_good(row, r=4, threshold=6.0)
        assert not row_is_good(row, r=5, threshold=1e9)  # r > size

    def test_bad_row_budget_claim4(self, rng):
        """Claim (4): if the M-row is bad, rhs(P) <= r_t.

        Constructed instance: phi* = 0.01, s = 50; a spread-out P whose
        reciprocal maxima are large makes the row bad for small r_t.
        """
        s, phi_star = 50, 0.02
        P = np.full((8, s), 1.0 / s)  # max_j P = 1/s each row
        M_row = np.full(8, phi_star / (1.0 / s))  # = phi* s = 1.0 each
        r_t = 9  # sum of r_t smallest = r_t > phi*.s = 1 -> row is bad
        assert not row_is_good(M_row, r=len(M_row), threshold=phi_star * s)
        assert bad_row_budget(P, r_t)

    @settings(max_examples=40)
    @given(seed=st.integers(0, 10000), n=st.integers(1, 10), s=st.integers(1, 40))
    def test_corrected_lemma16_property(self, seed, n, s):
        rng = np.random.default_rng(seed)
        P = rng.random((n, s))
        P /= np.maximum(P.sum(axis=1, keepdims=True), 1.0) * rng.uniform(1, 3)
        assert lemma16_holds(P)


class TestLemma15:
    def test_constructed_q_violates_everything(self, rng):
        M = rng.random((60, 300)) * 0.01
        q, T = lemma15_distribution(M, epsilon=0.5, delta=1.5, rng=rng)
        assert violates_all_rows(M, q)
        assert q.sum() == pytest.approx(0.5)
        assert np.all(q[T] > 0)
        assert np.count_nonzero(q) == T.size

    def test_r_formula(self):
        assert lemma15_r(0.5, 2.0, 100, 50) == int(
            np.ceil(np.sqrt(5 * 2.0 * 100 * np.log(50) / 0.5))
        )

    def test_hypothesis_violation_detected(self, rng):
        M = np.full((5, 20), 10.0)  # every entry huge: no small R_u
        with pytest.raises(GameError):
            lemma15_distribution(M, epsilon=0.5, delta=1.0, rng=rng, r=5)

    def test_explicit_r(self, rng):
        M = rng.random((20, 100)) * 0.01
        q, T = lemma15_distribution(M, epsilon=0.3, delta=1.0, rng=rng, r=40)
        assert violates_all_rows(M, q)

    def test_mass_is_epsilon(self, rng):
        M = rng.random((10, 200)) * 0.005
        for eps in (0.1, 0.9):
            q, _ = lemma15_distribution(M, epsilon=eps, delta=1.0, rng=rng)
            assert q.sum() == pytest.approx(eps)

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            lemma15_r(0, 1, 10, 10)
        with pytest.raises(ParameterError):
            lemma15_distribution(np.zeros(3), 0.5, 1.0)
