"""Lemma 19 tests: success floor, conditional law, both proof cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbound.productspace import (
    FAIL,
    ProductSpaceProbe,
    simulate_probe_sequence,
)


def _dirichlet(seed, s):
    return np.random.default_rng(seed).dirichlet(np.ones(s))


class TestCaseOne:
    """All p_i <= 1/2."""

    def test_success_floor(self):
        p = np.full(10, 0.1)
        probe = ProductSpaceProbe(p)
        assert probe.success_probability() >= 0.25

    def test_worst_case_is_exactly_quarter(self):
        # Two cells at 1/2 minimize rho = prod(1 - p_i) = 1/4; success
        # = sum_i p_i rho = rho.
        probe = ProductSpaceProbe(np.array([0.5, 0.5]))
        assert probe.success_probability() == pytest.approx(0.25)

    def test_output_proportional_to_p(self):
        p = _dirichlet(0, 16)
        probe = ProductSpaceProbe(p)
        out = probe.output_distribution()
        assert np.allclose(out / out.sum(), p)

    def test_deterministic_probe(self):
        """p concentrated on one cell: case 2 with p_0 = 1."""
        p = np.zeros(5)
        p[2] = 1.0
        probe = ProductSpaceProbe(p)
        assert probe.success_probability() >= 0.25
        out = probe.output_distribution()
        assert out[2] == probe.success_probability()
        assert np.all(out[[0, 1, 3, 4]] == 0)


class TestCaseTwo:
    """One p_0 > 1/2."""

    def test_success_floor(self):
        p = np.array([0.7, 0.1, 0.1, 0.1])
        probe = ProductSpaceProbe(p)
        # rho' = prod_{j>0}(1 - p_j) > 1/2; success = rho'/2 > 1/4.
        assert probe.success_probability() > 0.25

    def test_output_proportional_to_p(self):
        p = np.array([0.6] + [0.4 / 7] * 7)
        probe = ProductSpaceProbe(p)
        out = probe.output_distribution()
        assert np.allclose(out / out.sum(), p)

    def test_marginals_never_exceed_p(self):
        """Inequality (6): the simulation never increases contention."""
        p = np.array([0.9, 0.05, 0.05])
        probe = ProductSpaceProbe(p)
        assert np.all(probe.marginal_probabilities() <= p + 1e-15)

    def test_expected_probes_at_most_one(self):
        """Inequality (5): E[|J|] = sum p'_i <= 1."""
        for seed in range(5):
            p = _dirichlet(seed, 12)
            assert ProductSpaceProbe(p).expected_probes() <= 1.0 + 1e-12


class TestSimulation:
    def test_empirical_matches_exact(self, rng):
        p = _dirichlet(3, 8)
        probe = ProductSpaceProbe(p)
        outcomes = np.array([probe.simulate(rng) for _ in range(20000)])
        emp_success = float(np.mean(outcomes != FAIL))
        assert emp_success == pytest.approx(
            probe.success_probability(), abs=0.02
        )
        succ = outcomes[outcomes != FAIL]
        freq = np.bincount(succ, minlength=8) / succ.size
        assert np.abs(freq - p).max() < 0.03

    def test_sequence_success_floor(self, rng):
        dists = [_dirichlet(s, 6) for s in range(4)]
        exact = np.prod(
            [ProductSpaceProbe(p).success_probability() for p in dists]
        )
        assert exact >= 4.0 ** (-4)
        wins = sum(
            simulate_probe_sequence(dists, rng)[1] for _ in range(4000)
        )
        assert wins / 4000 == pytest.approx(exact, abs=0.03)

    def test_sequence_outputs_mark_failures(self, rng):
        dists = [np.array([0.5, 0.5])] * 3
        outputs, success = simulate_probe_sequence(dists, rng)
        assert len(outputs) == 3
        assert success == all(o != FAIL for o in outputs)


@settings(max_examples=40)
@given(seed=st.integers(0, 100000), s=st.integers(2, 40))
def test_success_floor_property(seed, s):
    """Lemma 19's >= 1/4 holds for arbitrary probe distributions."""
    p = np.random.default_rng(seed).dirichlet(np.ones(s))
    probe = ProductSpaceProbe(p)
    assert probe.success_probability() >= 0.25 - 1e-12
    out = probe.output_distribution()
    nz = p > 1e-12
    ratios = out[nz] / p[nz]
    assert np.allclose(ratios, ratios[0])  # exactly proportional
