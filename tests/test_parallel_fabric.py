"""The multicore fabric: equivalence, crash failover, lifecycle, metrics."""

from __future__ import annotations

import itertools
import os
import signal

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.parallel import (
    FRAME_QUERY,
    build_parallel_service,
)
from repro.telemetry import MetricsRegistry


def _shm_names() -> set[str]:
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro")}


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(11)
    N = 1 << 13
    keys = np.sort(rng.choice(N, size=192, replace=False)).astype(np.int64)
    qs = np.concatenate(
        [rng.choice(keys, size=300), rng.integers(0, N, size=300)]
    ).astype(np.int64)
    return keys, N, qs


def _build(keys, N, procs, **kw):
    kw.setdefault("num_shards", 2)
    kw.setdefault("replicas", 3)
    kw.setdefault("router", "least-loaded")
    kw.setdefault("max_batch", 16)
    kw.setdefault("seed", 77)
    return build_parallel_service(keys, N, procs=procs, **kw)


# -- deterministic equivalence (the satellite-1 gate) --------------------------


def test_procs_2_and_4_byte_identical_to_in_process(instance):
    """Same seed + workload: identical answers, identical merged digests."""
    keys, N, qs = instance
    answers: dict[int, np.ndarray] = {}
    digests: dict[int, list[str]] = {}
    for procs in (0, 2, 4):
        svc = _build(keys, N, procs)
        try:
            # Both serving surfaces: tickets first, then bulk.
            for i, q in enumerate(qs[:200]):
                svc.submit(int(q), now=float(i))
            svc.drain(now=200.0)
            answers[procs] = svc.query_batch(qs)
            digests[procs] = [
                svc.merged_counter(s).digest() for s in range(2)
            ]
        finally:
            svc.close()
    assert np.array_equal(answers[0], answers[2])
    assert np.array_equal(answers[0], answers[4])
    assert digests[0] == digests[2] == digests[4]
    assert np.array_equal(answers[0], np.isin(qs, keys))  # ground truth


def test_equivalence_across_routers(instance):
    keys, N, qs = instance
    for router in ("random", "round-robin"):
        got = {}
        for procs in (0, 2):
            svc = _build(keys, N, procs, router=router)
            try:
                a = svc.query_batch(qs)
                got[procs] = (a, svc.merged_counter(0).digest())
            finally:
                svc.close()
        assert np.array_equal(got[0][0], got[2][0]), router
        assert got[0][1] == got[2][1], router


# -- crash failover (the satellite-2 regression) -------------------------------


def test_worker_killed_mid_batch_fails_over_and_cleans_up(instance):
    """SIGKILL one worker with groups on its ring: survivors finish them."""
    keys, N, qs = instance
    before = _shm_names()
    svc = _build(keys, N, procs=2, router="round-robin")
    try:
        # Hand-deal one batch's groups onto BOTH workers' rings, then
        # kill worker 0 while its share is still outstanding — the
        # deterministic version of "crash mid-batch".
        shard_of = (
            np.searchsorted(svc._boundaries, qs, side="right") - 1
        )
        groups = []
        for shard in range(svc.num_shards):
            sel = np.nonzero(shard_of == shard)[0][:64]
            for replica, lo in enumerate(range(0, sel.size, 16)):
                pick = sel[lo:lo + 16]
                groups.append(svc._make_group(
                    shard, replica % 3, qs[pick], pick,
                ))
        pending = {}
        for g, h in zip(groups, itertools.cycle(svc.pool.workers)):
            h.req.enqueue(FRAME_QUERY, g.payload())
            g.worker_id = h.worker_id
            pending[g.gid] = g
        victim = svc.pool.workers[0]
        os.kill(victim.proc.pid, signal.SIGKILL)
        victim.proc.wait()
        results = svc._collect(pending)
        # Every group answered correctly despite the crash.
        assert len(results) == len(groups)
        for g in groups:
            got, probes = results[g.gid]
            assert np.array_equal(got, np.isin(g.keys, keys))
            assert probes > 0
        # The dispatcher noticed and kept serving on the survivor.
        assert not victim.alive
        assert svc.query_batch(qs[:50]).shape == (50,)
        assert [h.worker_id for h in svc.pool.live_workers()] == [1]
    finally:
        svc.close()
    assert _shm_names() == before, "crash session leaked /dev/shm segments"


def test_respawn_rebuilds_dead_slot_and_keeps_accounting(instance):
    keys, N, qs = instance
    svc = _build(keys, N, procs=2)
    try:
        svc.query_batch(qs[:100])
        charged = svc.merged_counter(0).total_probes()
        assert charged > 0
        victim = svc.pool.workers[0]
        os.kill(victim.proc.pid, signal.SIGKILL)
        victim.proc.wait()
        svc.respawn_worker(0)
        assert len(svc.pool.live_workers()) == 2
        assert svc.fabric_stats.respawns == 1
        answers = svc.query_batch(qs)
        assert np.array_equal(answers, np.isin(qs, keys))
        # Probes charged before the crash survive the respawn.
        assert svc.merged_counter(0).total_probes() > charged
    finally:
        svc.close()


# -- lifecycle + misc ----------------------------------------------------------


def test_close_is_idempotent_and_unlinks_everything(instance):
    keys, N, qs = instance
    before = _shm_names()
    svc = _build(keys, N, procs=2)
    assert len(_shm_names() - before) > 0
    svc.close()
    svc.close()
    assert _shm_names() == before


def test_context_manager_closes(instance):
    keys, N, qs = instance
    before = _shm_names()
    with _build(keys, N, procs=1) as svc:
        assert svc.query_batch(qs[:20]).shape == (20,)
    assert _shm_names() == before


def test_queue_depths_and_metrics_export(instance):
    keys, N, qs = instance
    with _build(keys, N, procs=2) as svc:
        svc.query_batch(qs[:100])
        depths = svc.queue_depths()
        assert len(depths) == 2 and all(d >= 0 for d in depths)
        registry = MetricsRegistry()
        svc.export_metrics(registry)
        text = registry.to_prometheus()
        assert "repro_parallel_queue_depth_w0" in text
        assert "repro_parallel_queue_depth_w1" in text
        assert "repro_parallel_worker_up_w1 1" in text
        assert "repro_parallel_workers 2" in text


def test_inline_engine_has_no_pool_and_no_depths(instance):
    keys, N, qs = instance
    svc = _build(keys, N, procs=0)
    assert svc.pool is None
    assert svc.queue_depths() == []
    svc.close()  # no-op


def test_healing_is_rejected_on_the_fabric(instance):
    keys, N, qs = instance
    svc = _build(keys, N, procs=0)
    with pytest.raises(ParameterError):
        svc.enable_healing()


def test_negative_procs_rejected(instance):
    keys, N, qs = instance
    with pytest.raises(ParameterError):
        _build(keys, N, procs=-1)


# -- fault-injection hooks (the adversary's fabric genes) ----------------------


def test_kill_worker_hook_spares_last_live(instance):
    keys, N, qs = instance
    svc = _build(keys, N, procs=2)
    try:
        assert svc.pool.kill_worker(0) is True
        assert [h.worker_id for h in svc.pool.live_workers()] == [1]
        # Already dead: a no-op, not an error.
        assert svc.pool.kill_worker(0) is False
        # Never orphan the fabric by killing the last live worker.
        assert svc.pool.kill_worker(1) is False
        assert svc.query_batch(qs[:64]).shape == (64,)
        with pytest.raises(ParameterError):
            svc.pool.kill_worker(5)
    finally:
        svc.close()


def test_corrupt_table_segment_breaks_and_restores_crc(instance):
    keys, N, qs = instance
    svc = _build(keys, N, procs=2)
    try:
        cells, masks = (0, 7, 123), (0xDEAD, 0xBEEF, 0x1)
        assert svc.pool.table_crc_ok(0) is True
        assert svc.pool.corrupt_table_segment(0, cells, masks) is True
        assert svc.pool.table_crc_ok(0) is False
        # XOR is an involution: re-applying the masks restores bytes.
        assert svc.pool.corrupt_table_segment(0, cells, masks) is True
        assert svc.pool.table_crc_ok(0) is True
        # All-zero masks are a no-op.
        assert svc.pool.corrupt_table_segment(0, (1, 2), (0, 0)) is False
    finally:
        svc.close()


def test_apply_fabric_event_dispatch(instance):
    from repro.serve import ChaosEvent

    keys, N, qs = instance
    svc = _build(keys, N, procs=2)
    try:
        kill = ChaosEvent(time=1.0, kind="kill-worker", worker=0)
        assert svc.apply_fabric_event(kill) is True
        assert svc.fabric_stats.kills == 1
        # Sole survivor is spared; the attempt is not counted.
        assert svc.apply_fabric_event(
            ChaosEvent(time=2.0, kind="kill-worker", worker=1)
        ) is False
        assert svc.fabric_stats.kills == 1
        corrupt = ChaosEvent(
            time=3.0, kind="corrupt-segment", shard=0,
            cells=(3, 4), masks=(0x10, 0x20),
        )
        assert svc.apply_fabric_event(corrupt) is True
        assert svc.fabric_stats.segment_corruptions == 1
        assert svc.pool.table_crc_ok(0) is False
        # Other chaos kinds are not the fabric's business.
        assert svc.apply_fabric_event(
            ChaosEvent(time=4.0, kind="crash", replica=0)
        ) is False
    finally:
        svc.close()


def test_apply_fabric_event_inline_engine_noop(instance):
    from repro.serve import ChaosEvent

    keys, N, qs = instance
    svc = _build(keys, N, procs=0)
    try:
        assert svc.apply_fabric_event(
            ChaosEvent(time=1.0, kind="kill-worker", worker=0)
        ) is False
    finally:
        svc.close()
