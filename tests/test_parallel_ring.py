"""SPSC ring buffers: wrap-around, backpressure, ordering, two processes."""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import (
    OverloadError,
    ParameterError,
    RingFullError,
    SegmentFormatError,
)
from repro.parallel import (
    FRAME_QUERY,
    FRAME_RESPONSE,
    FRAME_STOP,
    RingBuffer,
    destroy_segment,
    segment_name,
)


@pytest.fixture
def ring():
    r = RingBuffer.create(segment_name("repro-test", "ring"), 64)
    yield r
    r.close()
    destroy_segment(r.seg)


def _payload(seed: int, size: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 2**63, size=size, dtype=np.uint64
    )


def test_roundtrip_single_frame(ring):
    sent = _payload(0, 7)
    ring.enqueue(FRAME_QUERY, sent)
    frames = ring.consume_batch()
    assert len(frames) == 1
    kind, got = frames[0]
    assert kind == FRAME_QUERY
    assert np.array_equal(got, sent)
    assert ring.depth_words == 0


def test_wraparound_preserves_payloads(ring):
    # 64-word ring, 13-word frames: the data region wraps constantly.
    for i in range(300):
        sent = _payload(i, 11)
        ring.enqueue(FRAME_QUERY, sent)
        kind, got = ring.consume_batch()[0]
        assert np.array_equal(got, sent), f"corrupt payload at frame {i}"


def test_wraparound_with_varying_sizes(ring):
    sizes = [1, 17, 3, 29, 0, 8]
    expected = []
    consumed = []
    for i in range(120):
        size = sizes[i % len(sizes)]
        sent = _payload(1000 + i, size)
        try:
            ring.enqueue(FRAME_RESPONSE, sent)
            expected.append(sent)
        except RingFullError:
            for kind, got in ring.consume_batch(max_frames=1000):
                consumed.append(got)
            ring.enqueue(FRAME_RESPONSE, sent)
            expected.append(sent)
    for kind, got in ring.consume_batch(max_frames=1000):
        consumed.append(got)
    assert len(consumed) == len(expected)
    for got, sent in zip(consumed, expected):
        assert np.array_equal(got, sent)


def test_full_ring_raises_typed_overload(ring):
    # 64 words / (2 overhead + 6 payload) = 8 frames fill it exactly.
    with pytest.raises(RingFullError) as exc:
        for _ in range(100):
            ring.enqueue(FRAME_QUERY, np.zeros(6, dtype=np.uint64))
    assert isinstance(exc.value, OverloadError)
    assert exc.value.capacity == 64
    # Draining unblocks the producer — backpressure, not deadlock.
    ring.consume_batch(max_frames=1)
    ring.enqueue(FRAME_QUERY, np.zeros(6, dtype=np.uint64))


def test_oversized_frame_is_parameter_error(ring):
    with pytest.raises(ParameterError):
        ring.enqueue(FRAME_QUERY, np.zeros(63, dtype=np.uint64))


def test_batched_dequeue_is_fifo_and_bounded(ring):
    for i in range(8):
        ring.enqueue(FRAME_QUERY, np.array([i], dtype=np.uint64))
    first = ring.consume_batch(max_frames=3)
    rest = ring.consume_batch(max_frames=100)
    order = [int(p[0]) for _, p in first + rest]
    assert len(first) == 3 and len(rest) == 5
    assert order == list(range(8))


def test_corrupt_descriptor_raises_segment_format_error(ring):
    ring.enqueue(FRAME_QUERY, np.array([1, 2], dtype=np.uint64))
    ring._data[1] = (0xFFFF << 48) | 2  # clobber the frame's descriptor
    with pytest.raises(SegmentFormatError):
        ring.consume_batch()


def test_stop_and_ready_flags(ring):
    assert not ring.ready and not ring.stopped
    ring.set_ready()
    ring.set_stop()
    assert ring.ready and ring.stopped
    assert ring.wait_ready(timeout=0.01)


_ECHO_CHILD = """
import sys
import numpy as np
sys.path.insert(0, {src!r})
from repro.parallel import FRAME_QUERY, FRAME_RESPONSE, FRAME_STOP, RingBuffer

req = RingBuffer.attach({req!r})
resp = RingBuffer.attach({resp!r})
req.set_ready()
running = True
while running:
    for kind, payload in req.consume_batch(64):
        if kind == FRAME_STOP:
            running = False
            break
        while True:
            try:
                resp.enqueue(FRAME_RESPONSE, payload[::-1].copy())
                break
            except Exception:
                pass
req.close()
resp.close()
"""


def test_two_process_stress_under_wall_clock_bound():
    """Pump thousands of frames through a real second process, bounded."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    req = RingBuffer.create(segment_name("repro-test", "sreq"), 1 << 12)
    resp = RingBuffer.create(segment_name("repro-test", "srsp"), 1 << 12)
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _ECHO_CHILD.format(
                src=src, req=req.seg.name, resp=resp.seg.name
            ),
        ]
    )
    try:
        assert req.wait_ready(timeout=30.0), "echo child never came up"
        total = 4000
        start = time.monotonic()
        deadline = start + 60.0  # hard wall-clock bound
        sent = received = 0
        rng = np.random.default_rng(5)
        payloads = {}
        while received < total:
            assert time.monotonic() < deadline, (
                f"stress stalled: {received}/{total} echoed"
            )
            while sent < total:
                p = rng.integers(0, 2**63, size=9, dtype=np.uint64)
                try:
                    req.enqueue(FRAME_QUERY, p)
                except RingFullError:
                    break
                payloads[sent] = p
                sent += 1
            for kind, got in resp.consume_batch(256):
                assert np.array_equal(got, payloads[received][::-1])
                received += 1
        req.enqueue(FRAME_STOP, np.zeros(0, dtype=np.uint64))
        assert child.wait(timeout=30.0) == 0
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
        for ring in (req, resp):
            ring.close()
            destroy_segment(ring.seg)
