"""Shared-memory segments: headers, checksums, counters, lifecycle."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cellprobe import ProbeCounter
from repro.cellprobe.table import Table
from repro.errors import ParameterError, SegmentFormatError
from repro.parallel import (
    KIND_COUNTER,
    KIND_RING,
    KIND_TABLE,
    ShmProbeCounter,
    attach_segment,
    attach_table,
    create_counter_segment,
    create_segment,
    destroy_segment,
    pack_table,
    read_counter,
    segment_name,
    verify_header,
    write_header,
)


def _shm_names() -> set[str]:
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro")}


# -- headers -------------------------------------------------------------------


def test_header_roundtrip():
    seg = create_segment(segment_name("repro-test", "hdr"), 256)
    try:
        write_header(seg.buf, KIND_RING, 11, 22, 33)
        assert verify_header(seg.buf, KIND_RING, seg.name) == (11, 22, 33)
    finally:
        destroy_segment(seg)


@pytest.mark.parametrize("word,value", [(0, 0xDEAD), (1, 99), (6, 0)])
def test_header_corruption_detected(word, value):
    seg = create_segment(segment_name("repro-test", "hdr"), 256)
    try:
        write_header(seg.buf, KIND_RING, 7)
        np.ndarray(8, dtype=np.uint64, buffer=seg.buf)[word] = value
        with pytest.raises(SegmentFormatError):
            verify_header(seg.buf, KIND_RING, seg.name)
    finally:
        destroy_segment(seg)


def test_header_kind_mismatch_detected():
    seg = create_segment(segment_name("repro-test", "hdr"), 256)
    try:
        write_header(seg.buf, KIND_RING, 7)
        with pytest.raises(SegmentFormatError):
            verify_header(seg.buf, KIND_TABLE, seg.name)
    finally:
        destroy_segment(seg)


# -- table segments ------------------------------------------------------------


def _small_table(rows=6, s=4, seed=0) -> Table:
    t = Table(rows, s, counter=ProbeCounter(rows * s))
    rng = np.random.default_rng(seed)
    for r in range(rows):
        for c in range(s):
            t.write(r, c, int(rng.integers(0, 2**50)))
    return t


def test_pack_attach_table_zero_copy():
    t = _small_table()
    seg = pack_table(segment_name("repro-test", "tab"), t)
    try:
        counter = ProbeCounter(t.rows * t.s)
        att = attach_segment(seg.name)
        view = attach_table(att, counter)
        assert view.rows == t.rows and view.s == t.s
        assert np.array_equal(view._cells, t._cells)
        # Reads through the view charge the attached counter.
        view.read_batch(
            np.arange(3, dtype=np.int64),
            np.zeros(3, dtype=np.int64),
            step=0,
        )
        assert counter.total_probes() == 3
        att.close()
    finally:
        destroy_segment(seg)


def test_attach_table_payload_checksum_mismatch():
    t = _small_table()
    seg = pack_table(segment_name("repro-test", "tab"), t)
    try:
        cells = np.ndarray(
            t.rows * t.s, dtype=np.uint64, buffer=seg.buf, offset=64
        )
        cells[5] ^= 1  # one flipped bit after packing
        with pytest.raises(SegmentFormatError):
            attach_table(seg, ProbeCounter(t.rows * t.s))
    finally:
        destroy_segment(seg)


def test_attach_table_counter_geometry_mismatch():
    t = _small_table()
    seg = pack_table(segment_name("repro-test", "tab"), t)
    try:
        with pytest.raises(ParameterError):
            attach_table(seg, ProbeCounter(3))
    finally:
        destroy_segment(seg)


# -- shared counters -----------------------------------------------------------


def _drive(counter) -> None:
    counter.record(0, 2)
    counter.record_batch(1, np.array([0, -1, 3, 3], dtype=np.int64))
    # All-negative batch: charges nothing but still allocates steps —
    # the in-process counter's lazy-allocation contract, pinned here
    # because digest parity depends on it.
    counter.record_batch(4, np.array([-1, -1], dtype=np.int64))


def test_shm_counter_digest_matches_in_process():
    plain = ProbeCounter(8)
    seg = create_counter_segment(segment_name("repro-test", "cnt"), 16, 8)
    try:
        shm = ShmProbeCounter(seg)
        _drive(plain)
        _drive(shm)
        assert shm.num_steps == plain.num_steps == 5
        assert shm.probes_charged == plain.total_probes() == 4
        assert shm.digest() == plain.digest()
        assert read_counter(seg).digest() == plain.digest()
    finally:
        destroy_segment(seg)


def test_shm_counter_merge_and_resume():
    seg = create_counter_segment(segment_name("repro-test", "cnt"), 16, 8)
    try:
        shm = ShmProbeCounter(seg)
        _drive(shm)
        # A fresh attach of the same segment resumes the exact state.
        resumed = ShmProbeCounter(seg)
        assert resumed.num_steps == 5
        assert resumed.probes_charged == 4
        assert resumed.digest() == shm.digest()
        # Merging two worker copies doubles every count.
        merged = ProbeCounter(8)
        merged.merge(read_counter(seg)).merge(read_counter(seg))
        assert merged.total_probes() == 8
    finally:
        destroy_segment(seg)


def test_shm_counter_rejects_steps_beyond_capacity():
    seg = create_counter_segment(segment_name("repro-test", "cnt"), 4, 8)
    try:
        shm = ShmProbeCounter(seg)
        with pytest.raises(ParameterError):
            shm.record(4, 0)
        with pytest.raises(ParameterError):
            shm.record_batch(7, np.array([1], dtype=np.int64))
    finally:
        destroy_segment(seg)


def test_shm_counter_reset_clears_segment():
    seg = create_counter_segment(segment_name("repro-test", "cnt"), 8, 4)
    try:
        shm = ShmProbeCounter(seg)
        shm.record(2, 1)
        shm.reset()
        assert shm.num_steps == 0 and shm.probes_charged == 0
        assert read_counter(seg).total_probes() == 0
    finally:
        destroy_segment(seg)


# -- lifecycle -----------------------------------------------------------------


def test_destroy_segment_unlinks_dev_shm():
    before = _shm_names()
    seg = create_segment(segment_name("repro-test", "life"), 1024)
    created = _shm_names() - before
    assert len(created) == 1
    destroy_segment(seg)
    assert _shm_names() == before
    destroy_segment(seg)  # idempotent


_INTERRUPTED_OWNER = """
import sys
sys.path.insert(0, {src!r})
from repro.parallel import create_segment, segment_name
for i in range(3):
    seg = create_segment(segment_name("repro-kbd", f"leak{{i}}"), 4096)
    print(seg.name, flush=True)
raise KeyboardInterrupt
"""


def test_keyboard_interrupt_owner_leaves_no_segments():
    """An owner dying to ctrl-c still unlinks everything (atexit net)."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _INTERRUPTED_OWNER.format(src=src)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    names = proc.stdout.split()
    assert len(names) == 3
    assert proc.returncode != 0  # the interrupt did propagate
    leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
    assert leaked == [], f"KeyboardInterrupt leaked {leaked}"
