"""Durable checkpoints + corruption-tolerant recovery (``repro.persist``).

Pins the PR-10 durability contract end to end: save/restore byte
identity, the per-shard fallback chain (quarantine → older generation
→ empty restart), typed errors for inspection and total loss, bounded
retained logs under a retention policy, the one-shot log warning's
re-arm after compaction, the new ``stats_row`` fields, and — in a real
subprocess — that a SIGKILL mid-checkpoint never damages a previously
published generation.
"""

import hashlib
import os
import pathlib
import subprocess
import sys
import textwrap
import warnings

import numpy as np
import pytest
from numpy.random import default_rng

from repro.errors import CheckpointCorruptError, CheckpointError
from repro.persist import CheckpointStore, restore_dynamic_service
from repro.serve.dynamic_service import build_dynamic_service

UNIVERSE = 1 << 10
SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def _service(**kwargs):
    defaults = dict(
        num_shards=2, replicas=2, seed=5, max_batch=4, max_delay=1.0,
        update_batch=4, update_delay=1.0, update_capacity=64,
        capacity=128, log_retention=32,
    )
    defaults.update(kwargs)
    return build_dynamic_service(UNIVERSE, **defaults)


def _apply(service, n, seed, now=0.0):
    """Apply ``n`` seeded updates and drain; returns the next now."""
    rng = default_rng(seed)
    for _ in range(n):
        x = int(rng.integers(0, UNIVERSE))
        service.submit_update(x, bool(rng.random() < 0.75), now)
        now += 0.5
    service.drain(now + 4.0)
    return now


def _cells_digest(shard) -> str:
    h = hashlib.sha256()
    for r in sorted(shard.live_replicas()):
        rep = shard._replicas[r]
        for lv in rep._levels.nonempty_levels:
            h.update(lv.structure.table._cells.tobytes())
    return h.hexdigest()


def _saved(tmp_path, n=60, seed=3, **kwargs):
    """A drained service with one saved generation; returns (svc, store)."""
    svc = _service(**kwargs)
    now = _apply(svc, n, seed)
    store = CheckpointStore(tmp_path)
    svc.attach_checkpoints(store)
    svc.checkpoint(now + 5.0)
    return svc, store, now


class TestRoundTrip:
    def test_restore_is_byte_identical(self, tmp_path):
        svc, _, _ = _saved(tmp_path)
        restored, report = restore_dynamic_service(tmp_path)
        for a, b in zip(svc.shards, restored.shards):
            assert _cells_digest(a) == _cells_digest(b)
        assert all(r["source"] == "checkpoint" for r in report["shards"])
        assert report["quarantined"] == 0
        # Same answers for every key in the universe.
        for a, b in zip(svc.shards, restored.shards):
            assert np.array_equal(a.live_keys(), b.live_keys())

    def test_restore_carries_service_geometry(self, tmp_path):
        svc, _, _ = _saved(tmp_path)
        restored, _ = restore_dynamic_service(tmp_path)
        assert restored.num_shards == svc.num_shards
        assert restored.universe_size == svc.universe_size
        assert restored.log_retention == svc.log_retention
        assert list(restored._boundaries) == list(svc._boundaries)

    def test_checkpoint_saves_suffix_without_forced_compaction(
        self, tmp_path
    ):
        # Retention far above the written volume: the save must carry
        # the retained suffix as-is (bounded replay on restore), not
        # compact it away.
        svc, _, _ = _saved(tmp_path, n=24, log_retention=500)
        assert svc.stats_compactions == 0
        assert svc.update_log_entries() > 0
        _, report = restore_dynamic_service(tmp_path)
        assert 0 < report["replayed"] <= 500

    def test_checkpoint_without_store_raises(self):
        svc = _service()
        with pytest.raises(CheckpointError, match="attach_checkpoints"):
            svc.checkpoint(1.0)

    def test_restore_empty_directory_refuses(self, tmp_path):
        with pytest.raises(CheckpointError, match="no usable"):
            restore_dynamic_service(tmp_path)


class TestInspect:
    def test_summary_fields(self, tmp_path):
        _, store, _ = _saved(tmp_path)
        for shard, generation, path in store.generations():
            info = store.inspect(path)
            assert info["shard"] == shard
            assert info["generation"] == generation == 1
            assert info["num_shards"] == 2
            assert info["universe_size"] == UNIVERSE
            assert info["epoch"] > 0
            assert info["live_keys"] > 0

    def test_corrupt_file_raises_typed_error(self, tmp_path):
        from repro.faults import flip_file_bit

        _, store, _ = _saved(tmp_path)
        _, _, path = store.generations()[0]
        flip_file_bit(path, seed=9, count=3)
        with pytest.raises(CheckpointCorruptError) as exc:
            store.inspect(path)
        assert exc.value.path == path
        assert exc.value.reason
        # Inspection reports; it never quarantines.
        assert os.path.exists(path)
        assert not os.path.exists(path + ".corrupt")


class TestFallbackChain:
    def test_damage_falls_back_a_generation(self, tmp_path):
        from repro.faults import torn_write

        svc, store, now = _saved(tmp_path)
        now = _apply(svc, 40, 17, now=now + 1.0)
        svc.checkpoint(now + 5.0)  # generation 2
        newest = store.generations(shard=0)[-1][2]
        torn_write(newest, fraction=0.4, seed=2)
        restored, report = restore_dynamic_service(tmp_path)
        by_shard = {r["shard"]: r for r in report["shards"]}
        assert by_shard[0]["generation"] == 1
        assert by_shard[1]["generation"] == 2
        assert report["quarantined"] == 1
        assert os.path.exists(newest + ".corrupt")
        assert report["quarantine_log"]

    def test_missing_shard_restarts_empty(self, tmp_path):
        _, store, _ = _saved(tmp_path)
        for _, _, path in store.generations(shard=1):
            os.unlink(path)
        restored, report = restore_dynamic_service(tmp_path)
        by_shard = {r["shard"]: r for r in report["shards"]}
        assert by_shard[0]["source"] == "checkpoint"
        assert by_shard[1]["source"] == "empty"
        assert by_shard[1]["generation"] == 0
        assert restored.shards[1].live_keys().size == 0

    def test_total_loss_refuses_with_typed_error(self, tmp_path):
        from repro.faults import flip_file_bit

        _, store, _ = _saved(tmp_path)
        for i, (_, _, path) in enumerate(store.generations()):
            flip_file_bit(path, seed=21 + i, count=5)
        with pytest.raises(CheckpointError, match="quarantined"):
            restore_dynamic_service(tmp_path)

    def test_verify_on_off_digests_identical(self, tmp_path):
        _saved(tmp_path)
        on, rep_on = restore_dynamic_service(tmp_path, verify=True)
        off, rep_off = restore_dynamic_service(tmp_path, verify=False)
        assert rep_on["recovery_probes"] > 0
        assert rep_off["recovery_probes"] == 0
        for a, b in zip(on.shards, off.shards):
            for r in sorted(a.live_replicas()):
                assert (
                    a.query_counter_digest(r) == b.query_counter_digest(r)
                )


class TestCompactionBounds:
    def test_retention_bounds_the_log(self):
        svc = _service(log_retention=16)
        peak = 0
        rng = default_rng(8)
        now = 0.0
        for _ in range(200):
            x = int(rng.integers(0, UNIVERSE))
            svc.submit_update(x, bool(rng.random() < 0.75), now)
            now += 0.5
            peak = max(peak, svc.update_log_entries())
        svc.drain(now + 4.0)
        assert peak <= 16 + svc.build_config["update_batch"]
        assert svc.stats_compactions > 0
        # Lifetime totals stay visible even though the log compacted.
        assert svc.stats.updates_applied == 200

    def test_stats_row_exposes_persistence_counters(self, tmp_path):
        svc, _, now = _saved(tmp_path, n=80, log_retention=16)
        row = svc.stats_row()
        assert row["update_log_entries"] == svc.update_log_entries()
        assert row["compactions"] == svc.stats_compactions > 0
        assert row["checkpoints"] == svc.stats_checkpoints == 1

    def test_store_prunes_beyond_keep(self, tmp_path):
        svc, store, now = _saved(tmp_path)
        store.keep = 2
        for i in range(3):
            now = _apply(svc, 8, 40 + i, now=now + 1.0)
            svc.checkpoint(now + 5.0)
        gens = sorted({g for _, g, _ in store.generations()})
        assert gens == [3, 4]


class TestLogWarning:
    def test_warns_once_then_rearms_after_compaction(self, monkeypatch):
        monkeypatch.setattr(
            "repro.serve.dynamic_service.UPDATE_LOG_WARN_THRESHOLD", 6
        )
        svc = _service(num_shards=1, log_retention=None)
        with pytest.warns(RuntimeWarning, match="update log"):
            _apply(svc, 8, 51)
        # Latched: staying above the threshold stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _apply(svc, 4, 52, now=10.0)
        # Compaction shrinks the log below the threshold; the next
        # applied group re-arms the latch, so a later runaway warns
        # again instead of being swallowed forever.
        svc.compact_logs()
        with pytest.warns(RuntimeWarning, match="update log"):
            _apply(svc, 12, 53, now=20.0)


_CHILD = textwrap.dedent("""
    import os, signal, sys
    from numpy.random import default_rng

    import repro.persist.checkpoint as ckpt_mod
    from repro.persist import CheckpointStore
    from repro.serve.dynamic_service import build_dynamic_service

    d = sys.argv[1]
    svc = build_dynamic_service(
        1024, num_shards=2, replicas=2, seed=7, update_batch=4,
        update_delay=1.0, update_capacity=64, log_retention=32,
    )
    rng = default_rng(11)
    now = 0.0
    for _ in range(60):
        x = int(rng.integers(0, 1024))
        svc.submit_update(x, bool(rng.random() < 0.75), now)
        now += 0.5
    svc.drain(now + 4.0)
    store = CheckpointStore(d)
    svc.attach_checkpoints(store)
    svc.checkpoint(now + 5.0)  # generation 1, published cleanly
    for _ in range(40):
        x = int(rng.integers(0, 1024))
        svc.submit_update(x, bool(rng.random() < 0.75), now)
        now += 0.5
    svc.drain(now + 4.0)

    def rigged(path, data, fsync=True):
        # Tear the first generation-2 file at its final name, then die
        # the hard way mid-checkpoint.
        with open(path, "wb") as fh:
            fh.write(bytes(data[: len(data) // 3]))
        os.kill(os.getpid(), signal.SIGKILL)

    ckpt_mod.atomic_write_bytes = rigged
    svc.checkpoint(now + 9.0)
""")


class TestSigkillMidCheckpoint:
    def test_previous_generation_stays_valid(self, tmp_path):
        script = tmp_path / "child.py"
        script.write_text(_CHILD)
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "ckpt")],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode < 0  # died by signal, not sys.exit
        store = CheckpointStore(tmp_path / "ckpt")
        # Generation 1 (both shards) still verifies byte-for-byte.
        gen1 = [p for s, g, p in store.generations() if g == 1]
        assert len(gen1) == 2
        for path in gen1:
            assert store.inspect(path)["generation"] == 1
        # Recovery quarantines the torn generation-2 file and falls
        # back; no shard is lost.
        restored, report = restore_dynamic_service(tmp_path / "ckpt")
        assert report["quarantined"] == 1
        assert all(r["source"] == "checkpoint" for r in report["shards"])
        assert all(r["generation"] >= 1 for r in report["shards"])
