"""Data-structure problem semantics."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.problems import (
    IntervalStabbingProblem,
    MembershipProblem,
    ParityProblem,
    ThresholdProblem,
)


class TestMembership:
    def test_evaluate(self):
        p = MembershipProblem(10, 3)
        S = frozenset({1, 5, 9})
        assert p.evaluate(5, S) and not p.evaluate(4, S)

    def test_batch_matches_scalar(self, rng):
        p = MembershipProblem(100, 10)
        S = p.sample_data_set(rng)
        xs = np.arange(100)
        batch = p.evaluate_batch(xs, S)
        assert all(bool(b) == p.evaluate(int(x), S) for x, b in zip(xs, batch))

    def test_sample_data_set_size(self, rng):
        p = MembershipProblem(50, 7)
        S = p.sample_data_set(rng)
        assert len(S) == 7 and all(0 <= x < 50 for x in S)

    def test_enumerate_count(self):
        import math

        p = MembershipProblem(6, 2)
        assert sum(1 for _ in p.enumerate_data_sets()) == math.comb(6, 2)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            MembershipProblem(3, 4)


class TestThreshold:
    def test_semantics(self):
        p = ThresholdProblem(10)
        assert p.evaluate(5, 5) and not p.evaluate(4, 5)
        assert np.array_equal(
            p.evaluate_batch(np.array([3, 7]), 5), [False, True]
        )

    def test_enumerate(self):
        assert list(ThresholdProblem(3).enumerate_data_sets()) == [0, 1, 2, 3]


class TestInterval:
    def test_semantics(self):
        p = IntervalStabbingProblem(10)
        assert p.evaluate(3, (2, 5)) and not p.evaluate(5, (2, 5))

    def test_batch(self):
        p = IntervalStabbingProblem(6)
        out = p.evaluate_batch(np.arange(6), (1, 4))
        assert out.tolist() == [False, True, True, True, False, False]

    def test_sample_ordered(self, rng):
        p = IntervalStabbingProblem(20)
        for _ in range(50):
            lo, hi = p.sample_data_set(rng)
            assert lo <= hi


class TestParity:
    def test_semantics(self):
        p = ParityProblem(3)
        assert p.evaluate(0b011, 0b001)  # one shared bit
        assert not p.evaluate(0b011, 0b011)  # two shared bits

    def test_batch_matches_scalar(self, rng):
        p = ParityProblem(5)
        S = p.sample_data_set(rng)
        xs = np.arange(32)
        batch = p.evaluate_batch(xs, S)
        assert all(bool(b) == p.evaluate(int(x), S) for x, b in zip(xs, batch))

    def test_width_cap(self):
        with pytest.raises(ParameterError):
            ParityProblem(25)


def test_classification_tuple():
    p = ThresholdProblem(5)
    assert p.classification([0, 2, 4], 3) == (False, False, True)
