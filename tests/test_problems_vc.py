"""VC-dimension machinery vs closed forms (Definition 11)."""

import pytest

from repro.errors import ParameterError
from repro.problems import (
    IntervalStabbingProblem,
    MembershipProblem,
    ParityProblem,
    ThresholdProblem,
    shattered,
    vc_dimension_exact,
    vc_dimension_lower_bound,
)
from repro.problems.vc import (
    realized_labellings,
    sauer_shelah_bound,
    shatter_coefficient,
)


def test_membership_vc_equals_n():
    for N, n in [(6, 3), (8, 2), (5, 1)]:
        p = MembershipProblem(N, n)
        assert vc_dimension_exact(p) == p.vc_dimension() == min(n, N - n)


def test_membership_vc_capped_by_complement():
    # n close to N: can't shatter more than N - n points (need negatives).
    p = MembershipProblem(8, 6)
    assert vc_dimension_exact(p) == 2 == p.vc_dimension()


def test_threshold_vc_is_one():
    p = ThresholdProblem(12)
    assert vc_dimension_exact(p) == 1
    assert shattered(p, [4])
    assert not shattered(p, [3, 7])  # labelling (1, 0) unrealizable


def test_interval_vc_is_two():
    p = IntervalStabbingProblem(12)
    assert vc_dimension_exact(p, max_k=4) == 2
    assert shattered(p, [3, 8])
    assert not shattered(p, [2, 5, 9])  # (1, 0, 1) unrealizable


def test_parity_vc_is_width():
    p = ParityProblem(3)
    assert vc_dimension_exact(p) == 3
    # The standard basis is shattered.
    assert shattered(p, [1, 2, 4])


def test_shattered_requires_distinct():
    with pytest.raises(ParameterError):
        shattered(ThresholdProblem(5), [1, 1])


def test_vc_lower_bound_search(rng):
    p = MembershipProblem(10, 4)
    assert vc_dimension_lower_bound(p, 4, rng)
    assert not vc_dimension_lower_bound(p, 11, rng)  # > |Q| impossible


def test_realized_labellings_threshold():
    p = ThresholdProblem(4)
    labels = realized_labellings(p, [0, 1, 2, 3])
    # Exactly the 5 suffix labellings.
    assert len(labels) == 5
    assert (False, False, False, False) in labels
    assert (True, True, True, True) in labels
    assert (True, False, True, False) not in labels


def test_shatter_coefficient_and_sauer_shelah():
    p = IntervalStabbingProblem(8)
    k = 5
    coeff = shatter_coefficient(p, k)
    assert coeff <= sauer_shelah_bound(k, 2)
    # Intervals over k points realize exactly C(k+1, 2) + 1 labellings.
    assert coeff == (k * (k + 1)) // 2 + 1


def test_sauer_shelah_values():
    assert sauer_shelah_bound(5, 0) == 1
    assert sauer_shelah_bound(5, 5) == 32
    assert sauer_shelah_bound(5, 2) == 1 + 5 + 10


def test_vc_exact_max_k_cap():
    p = MembershipProblem(8, 4)
    assert vc_dimension_exact(p, max_k=2) == 2  # capped below true value
