"""Unit and property tests for the serving subsystem (repro.serve)."""

from __future__ import annotations

import asyncio
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions import ZipfDistribution
from repro.errors import (
    FaultExhaustedError,
    OverloadError,
    ParameterError,
    QueryError,
)
from repro.experiments.common import make_instance, uniform_distribution
from repro.faults import FaultConfig
from repro.serve import (
    AdmissionController,
    AsyncDictionaryServer,
    MicroBatcher,
    ROUTERS,
    build_service,
    make_router,
    run_loadgen,
)


def test_import_serve_first_is_not_circular():
    # repro.experiments.e19_serving imports repro.serve; the reverse
    # edge must stay lazy, or `import repro.serve` breaks whenever it
    # is the first repro import in the process (regression: the suite
    # itself always imports repro.experiments first, hiding this).
    subprocess.run(
        [sys.executable, "-c", "import repro.serve"], check=True
    )


@pytest.fixture(scope="module")
def instance():
    keys, N = make_instance(128, seed=11)
    return keys, N


def small_service(keys, N, **kwargs):
    defaults = dict(num_shards=2, replicas=3, seed=5)
    defaults.update(kwargs)
    return build_service(keys, N, **defaults)


class TestMicroBatcher:
    def test_size_flush(self):
        b = MicroBatcher(max_size=3, max_delay=10.0)
        assert b.add("a", 0.0) is None
        assert b.add("b", 0.5) is None
        batch = b.add("c", 1.0)
        assert batch is not None
        assert batch.reason == "size"
        assert batch.requests == ["a", "b", "c"]
        assert batch.opened == 0.0 and batch.flushed == 1.0
        assert b.pending == 0

    def test_deadline_flush(self):
        b = MicroBatcher(max_size=100, max_delay=2.0)
        b.add("a", 1.0)
        assert b.poll(2.9) is None  # oldest is 1.9 old, deadline is 3.0
        batch = b.poll(3.0)
        assert batch is not None and batch.reason == "delay"
        assert b.next_deadline() is None

    def test_deadline_tracks_oldest_request(self):
        b = MicroBatcher(max_size=100, max_delay=2.0)
        b.add("a", 1.0)
        b.add("b", 2.5)  # younger request does not extend the deadline
        assert b.next_deadline() == 3.0

    def test_drain(self):
        b = MicroBatcher()
        assert b.drain(0.0) is None
        b.add("a", 0.0)
        batch = b.drain(1.0)
        assert batch is not None and batch.reason == "drain"

    def test_counters(self):
        b = MicroBatcher(max_size=2)
        b.add("a", 0.0)
        b.add("b", 0.0)
        b.add("c", 1.0)
        b.drain(2.0)
        assert b.flushed_batches == 2
        assert b.flushed_requests == 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            MicroBatcher(max_size=0)
        with pytest.raises(ParameterError):
            MicroBatcher(max_delay=-1.0)


class TestRouters:
    @pytest.mark.parametrize("name", ROUTERS)
    def test_assignments_are_live_replicas(self, name):
        router = make_router(name, 4, seed=3)
        router.mark_down(2)
        out = router.assign(50)
        assert out.shape == (50,)
        assert set(np.unique(out)) <= {0, 1, 3}

    def test_round_robin_cycles(self):
        router = make_router("round-robin", 3)
        picks = [int(router.assign(2)[0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_lightest(self):
        router = make_router("least-loaded", 3)
        router.record(0, 100)
        router.record(1, 10)
        router.record(2, 50)
        assert int(router.assign(4)[0]) == 1

    def test_least_loaded_ties_break_low(self):
        router = make_router("least-loaded", 3)
        assert int(router.assign(1)[0]) == 0

    def test_mark_down_last_replica_raises(self):
        router = make_router("random", 2)
        router.mark_down(0)
        with pytest.raises(FaultExhaustedError):
            router.mark_down(1)

    def test_mark_up_restores(self):
        router = make_router("round-robin", 2)
        router.mark_down(0)
        router.mark_up(0)
        assert router.live == [0, 1]

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            make_router("sticky", 3)


class TestAdmission:
    def test_sheds_beyond_capacity(self):
        ac = AdmissionController(capacity=2)
        ac.admit()
        ac.admit()
        with pytest.raises(OverloadError) as exc:
            ac.admit()
        assert exc.value.depth == 2 and exc.value.capacity == 2
        assert ac.shed == 1 and ac.admitted == 2

    def test_release_reopens(self):
        ac = AdmissionController(capacity=1)
        ac.admit()
        ac.release()
        ac.admit()
        assert ac.peak_in_flight == 1
        assert ac.shed_fraction == 0.0

    def test_release_validation(self):
        ac = AdmissionController(capacity=4)
        with pytest.raises(ParameterError):
            ac.release(1)


class TestShardedService:
    def test_shard_of_partitions_universe(self, instance):
        keys, N = instance
        svc = small_service(keys, N, num_shards=2)
        assert svc.shard_of(0) == 0
        assert svc.shard_of(N - 1) == 1
        boundary = N // 2
        assert svc.shard_of(boundary - 1) == 0
        assert svc.shard_of(boundary) == 1
        with pytest.raises(QueryError):
            svc.shard_of(N)

    def test_answers_are_ground_truth(self, instance):
        keys, N = instance
        svc = small_service(keys, N, max_batch=8)
        member = set(keys.tolist())
        tickets = []
        for i, x in enumerate(list(keys[:12]) + [1, N - 2]):
            tickets.append(svc.submit(int(x), float(i)))
        svc.drain(100.0)
        for t in tickets:
            assert t.done
            assert t.answer == (t.key in member)

    def test_submit_past_capacity_sheds(self, instance):
        keys, N = instance
        svc = small_service(
            keys, N, capacity=3, max_batch=100, max_delay=100.0
        )
        for i in range(3):
            svc.submit(int(keys[i]), 0.0)
        with pytest.raises(OverloadError):
            svc.submit(int(keys[3]), 0.0)
        assert svc.admission.shed == 1

    def test_probe_time_queues_on_busy_replica(self, instance):
        keys, N = instance
        svc = small_service(
            keys, N, num_shards=1, replicas=1, probe_time=1.0, max_batch=4
        )
        first = [svc.submit(int(keys[i]), 0.0) for i in range(4)]
        second = [svc.submit(int(keys[i]), 0.0) for i in range(4, 8)]
        # Same replica: the second batch starts after the first finishes.
        assert all(t.done for t in first + second)
        assert second[0].completion > first[0].completion
        assert first[0].completion > 0.0

    def test_crashed_replica_fails_over(self, instance):
        keys, N = instance
        svc = small_service(
            keys,
            N,
            num_shards=1,
            mode="failover",
            faults=FaultConfig(crashed_replicas=(0, 1), seed=2),
            router="least-loaded",
            max_batch=4,
        )
        tickets = [svc.submit(int(keys[i]), 0.0) for i in range(4)]
        assert all(t.done and t.replica == 2 for t in tickets)
        assert svc.routers[0].live == [2]
        assert svc.stats.failovers >= 1

    def test_all_replicas_crashed_exhausts(self, instance):
        keys, N = instance
        svc = small_service(
            keys,
            N,
            num_shards=1,
            replicas=2,
            mode="failover",
            faults=FaultConfig(crashed_replicas=(0, 1), seed=2),
            max_batch=2,
        )
        with pytest.raises(FaultExhaustedError):
            svc.submit(int(keys[0]), 0.0)
            svc.submit(int(keys[1]), 0.0)

    def test_empty_shard_rejected(self, instance):
        keys, N = instance
        with pytest.raises(ParameterError):
            # Far more shards than keys guarantees an empty range.
            build_service(keys[:2], N, num_shards=64, seed=1)

    def test_validation(self, instance):
        keys, N = instance
        with pytest.raises(ParameterError):
            build_service(keys, N, scheme="nope", seed=1)
        with pytest.raises(ParameterError):
            small_service(keys, N, router="nope")
        with pytest.raises(ParameterError):
            small_service(keys, N, probe_time=-1.0)


class TestLoadgen:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        discipline=st.sampled_from(["open", "closed"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_deterministic_and_correct(self, seed, discipline):
        keys, N = make_instance(64, seed=17)
        dist = uniform_distribution(keys, N)
        reports = []
        for _ in range(2):
            svc = build_service(
                keys, N, num_shards=2, replicas=3, seed=seed,
                probe_time=0.001, max_batch=8, max_delay=0.2,
            )
            reports.append(
                run_loadgen(
                    svc, dist, 300, discipline=discipline, rate=50.0,
                    clients=8, seed=seed + 1, expected_keys=keys,
                )
            )
        assert reports[0].row() == reports[1].row()
        assert reports[0].completed == 300
        assert reports[0].wrong_answers == 0
        assert reports[0].probes > 0

    def test_open_loop_sheds_under_overload(self):
        keys, N = make_instance(64, seed=17)
        dist = uniform_distribution(keys, N)
        svc = build_service(
            keys, N, capacity=8, max_batch=64, max_delay=50.0, seed=3
        )
        report = run_loadgen(
            svc, dist, 100, discipline="open", rate=1000.0, seed=4
        )
        assert report.shed > 0
        assert report.completed + report.shed == 100

    def test_zipf_workload_round_trips(self):
        keys, N = make_instance(64, seed=17)
        rng = np.random.default_rng(9)
        candidates = np.unique(
            np.concatenate([keys, rng.integers(0, N, size=64)])
        )
        dist = ZipfDistribution(N, candidates, 1.1, shuffle_ranks=3)
        svc = build_service(keys, N, num_shards=2, seed=5)
        report = run_loadgen(
            svc, dist, 400, discipline="open", rate=80.0, seed=6,
            expected_keys=keys,
        )
        assert report.completed == 400
        assert report.wrong_answers == 0

    def test_unknown_discipline_rejected(self):
        keys, N = make_instance(64, seed=17)
        svc = build_service(keys, N, seed=1)
        with pytest.raises(ParameterError):
            run_loadgen(
                svc, uniform_distribution(keys, N), 10, discipline="warp"
            )


class TestAsyncServer:
    def test_query_round_trip(self, instance):
        keys, N = instance

        async def scenario():
            svc = small_service(keys, N, max_batch=4, max_delay=0.01)
            async with AsyncDictionaryServer(svc) as server:
                hits = await server.query_many(keys[:8])
                miss = await server.query(1)
                return hits, miss

        hits, miss = asyncio.run(scenario())
        assert hits == [True] * 8
        assert miss is (1 in set(keys.tolist()))

    def test_deadline_flush_resolves_waiters(self, instance):
        keys, N = instance

        async def scenario():
            # max_batch high: only the deadline flusher can resolve it.
            svc = small_service(keys, N, max_batch=1000, max_delay=0.02)
            async with AsyncDictionaryServer(svc) as server:
                return await asyncio.wait_for(
                    server.query(int(keys[0])), timeout=5.0
                )

        assert asyncio.run(scenario()) is True

    def test_query_requires_running_server(self, instance):
        keys, N = instance
        svc = small_service(keys, N)
        server = AsyncDictionaryServer(svc)

        async def scenario():
            await server.query(int(keys[0]))

        with pytest.raises(Exception):
            asyncio.run(scenario())

    def test_stop_drains_pending(self, instance):
        keys, N = instance

        async def scenario():
            svc = small_service(keys, N, max_batch=1000, max_delay=60.0)
            server = AsyncDictionaryServer(svc)
            await server.start()
            task = asyncio.create_task(server.query(int(keys[0])))
            await asyncio.sleep(0.01)
            await server.stop()
            return await asyncio.wait_for(task, timeout=5.0)

        assert asyncio.run(scenario()) is True

    def test_stop_drains_even_when_flusher_crashed(self, instance):
        # Regression: stop() used to await the flusher and propagate its
        # exception *before* draining, leaving every pending future
        # hanging forever.  Now the crash is captured, the drain still
        # runs (clients get answers), and the error re-raises at the end.
        keys, N = instance
        boom = RuntimeError("flusher crashed")

        async def scenario():
            svc = small_service(keys, N, max_batch=1000, max_delay=0.005)
            server = AsyncDictionaryServer(svc)
            await server.start()
            task = asyncio.create_task(server.query(int(keys[0])))
            await asyncio.sleep(0)  # let the query submit its ticket

            def exploding(now):
                raise boom

            svc.advance = exploding  # deadline flush now crashes
            for _ in range(500):
                await asyncio.sleep(0.005)
                if server._flusher.done():
                    break
            with pytest.raises(RuntimeError, match="flusher crashed"):
                await server.stop()
            return await asyncio.wait_for(task, timeout=5.0)

        assert asyncio.run(scenario()) is True

    def test_metrics_snapshot_without_hub(self, instance):
        keys, N = instance

        async def scenario():
            svc = small_service(keys, N, max_batch=4, max_delay=0.01)
            async with AsyncDictionaryServer(svc) as server:
                await server.query_many(keys[:8])
                return server.metrics_snapshot(), server.metrics_text()

        snap, text = asyncio.run(scenario())
        assert snap["kind"] == "repro-metrics"
        assert snap["server"]["completed"] == 8
        assert snap["server"]["running"] is True
        assert snap["server"]["pending_futures"] == 0
        assert text == ""  # no hub: no exposition

    def test_metrics_snapshot_with_hub(self, instance):
        from repro.telemetry import TelemetryHub

        keys, N = instance

        async def scenario():
            svc = small_service(keys, N, max_batch=4, max_delay=0.01)
            svc.attach_telemetry(TelemetryHub(metrics=True))
            async with AsyncDictionaryServer(svc) as server:
                await server.query_many(keys[:8])
                return server.metrics_snapshot(), server.metrics_text()

        snap, text = asyncio.run(scenario())
        assert snap["counters"]["serve_completed"]["value"] == 8
        assert snap["server"]["completed"] == 8
        assert "serve_requests_total 8" in text
