"""Tests for the self-healing layer (repro.serve.health + repro.heal).

Covers the health state machines, circuit breakers, scrub/rebuild/
canary healing arcs, alarm intake, graceful degradation, verified
dispatch, the healing-disabled byte-identity gate, and the
``AsyncDictionaryServer.stop()`` vs in-flight quarantine race.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import DegradedModeError, HealError, ParameterError
from repro.experiments.common import make_instance, uniform_distribution
from repro.faults import FaultConfig
from repro.serve import (
    AsyncDictionaryServer,
    CircuitBreaker,
    HealthConfig,
    HealthManager,
    ReplicaHealth,
    build_service,
    run_loadgen,
)
from repro.serve.chaos import require_armed
from repro.telemetry import HotCellAlarm, RouterSkewAlarm, TelemetryHub


@pytest.fixture(scope="module")
def instance():
    keys, N = make_instance(64, seed=7)
    return keys, N


def healing_service(keys, N, *, replicas=5, enable=True, seed=3, **kwargs):
    defaults = dict(
        num_shards=1, replicas=replicas, router="random",
        faults=FaultConfig(armed=True), seed=seed,
    )
    defaults.update(kwargs)
    service = build_service(keys, N, **defaults)
    manager = service.enable_healing(seed=seed + 1) if enable else None
    return service, manager


def heal_until(manager, predicate, start=1.0, ticks=200):
    """Tick the manager until ``predicate()`` holds; fail if it never does."""
    now = start
    for _ in range(ticks):
        if predicate():
            return now
        now += 1.0
        manager.tick(now)
    raise AssertionError(f"healing did not converge in {ticks} ticks")


class TestReplicaHealth:
    def test_initial_state(self):
        m = ReplicaHealth(0, 2)
        assert m.state == "healthy" and m.serving
        assert m.down_since is None and not m.crashed

    def test_transition_records_history_and_down_since(self):
        m = ReplicaHealth(0, 0)
        m.to("degraded", "alarm", 1.0)
        assert m.down_since == 1.0 and m.serving
        m.to("quarantined", "errors", 2.0)
        assert m.down_since == 1.0  # anchored at leaving healthy
        assert not m.serving
        m.to("rebuilding", "rebuild-start", 3.0)
        m.to("healthy", "canary-pass", 4.0)
        assert m.down_since is None and not m.crashed
        assert [t[1:3] for t in m.transitions] == [
            ("healthy", "degraded"), ("degraded", "quarantined"),
            ("quarantined", "rebuilding"), ("rebuilding", "healthy"),
        ]

    def test_unknown_state_rejected(self):
        with pytest.raises(HealError):
            ReplicaHealth(0, 0).to("zombie", "?", 0.0)


class TestCircuitBreaker:
    def test_lifecycle(self):
        b = CircuitBreaker(1)
        assert b.state == "closed" and b.allows_traffic
        b.open()
        assert b.state == "open" and not b.allows_traffic and b.opens == 1
        b.half_open(100)
        assert b.state == "half-open" and not b.allows_traffic
        b.spend(60)
        assert b.canary_budget == 40
        b.close()
        assert b.state == "closed" and b.allows_traffic

    def test_router_skips_open_breaker(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        router = service.routers[0]
        router.breakers[2].open()
        assert 2 not in router.live
        assert 2 not in set(np.asarray(router.assign(200)).tolist())
        router.mark_up(2)
        assert 2 in router.live


class TestSignals:
    def test_crash_quarantines_and_opens_breaker(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        manager.on_crash(0, 1, 5.0)
        machine = manager.machines[(0, 1)]
        assert machine.state == "quarantined" and machine.crashed
        assert not service.routers[0].breakers[1].allows_traffic

    def test_corruption_quarantines(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        manager.on_corruption(0, 2, 5.0)
        assert manager.state_of(0, 2) == "quarantined"
        assert not manager.machines[(0, 2)].crashed

    def test_alarm_only_degrades_then_errors_quarantine(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        manager.on_alarm_signal(0, 3, 1.0)
        assert manager.state_of(0, 3) == "degraded"
        # Alarms are soft: more of them do not escalate.
        manager.on_alarm_signal(0, 3, 2.0)
        assert manager.state_of(0, 3) == "degraded"
        for i in range(manager.config.quarantine_after):
            manager.on_error(0, 3, 3.0 + i)
        assert manager.state_of(0, 3) == "quarantined"

    def test_degraded_recovers_on_clean_streak(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        manager.on_alarm_signal(0, 0, 1.0)
        for i in range(manager.config.recover_after):
            manager.note_dispatch(0, 0, 2.0 + i)
        assert manager.state_of(0, 0) == "healthy"

    def test_dispatch_to_quarantined_counts_violation(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        manager.on_corruption(0, 1, 1.0)
        manager.note_dispatch(0, 1, 2.0)
        assert manager.violations == 1

    def test_pick_witness_avoids_primary(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        for _ in range(50):
            w = manager.pick_witness(0, 2)
            assert w is not None and w != 2
        for r in range(1, 5):
            service.routers[0].mark_down(r)
        assert manager.pick_witness(0, 0) is None


class TestAlarmIntake:
    def test_monitor_alarms_degrade_the_implicated_replica(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        hub = TelemetryHub(metrics=True)
        service.attach_telemetry(hub)
        d = service.shards[0]
        block = d.inner_rows * d.table.s
        hub.alarms.append(RouterSkewAlarm(
            replica=1, observed=90, expected=40.0, sigma=6.0, z=8.0,
            threshold=5.0, total=200, check=1,
        ))
        hub.alarms.append(HotCellAlarm(
            step=0, cell=3 * block + 7, observed=50, expected=10.0,
            sigma=3.0, z=13.0, threshold=5.0, queries=200, check=1,
        ))
        manager.tick(1.0)
        assert manager.state_of(0, 1) == "degraded"
        assert manager.state_of(0, 3) == "degraded"
        # The cursor advanced: old alarms are not re-consumed.
        manager.machines[(0, 1)].to("healthy", "test", 2.0)
        manager.tick(3.0)
        assert manager.state_of(0, 1) == "healthy"


class TestHealingArcs:
    def test_scrub_repairs_corruption_and_readmits(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        require_armed(service)
        d = service.shards[0]
        reference = np.array(d.inner.table._cells, copy=True)
        block = d.inner_rows * d.table.s
        rng = np.random.default_rng(5)
        cells = rng.choice(block, size=6, replace=False)
        for c in cells:
            d.corrupt_cell(1, int(c), 0x5A5A5A5A)
        manager.on_corruption(0, 1, 1.0)
        query_counter_before = d.table.counter.total_probes()
        heal_until(manager, lambda: manager.state_of(0, 1) == "healthy")
        assert np.array_equal(
            d.table._cells[d.inner_rows:2 * d.inner_rows], reference
        )
        assert service.routers[0].breakers[1].allows_traffic
        assert manager.stats.cells_repaired >= 6
        assert len(manager.mttr) == 1 and manager.mttr_values()[0] > 0
        # All healing work charged to the repair counter, none to the
        # query-path counter.
        assert d.table.counter.total_probes() == query_counter_before
        assert manager.repair_counters[0].total_probes() > 0

    def test_rebuild_reconstructs_crashed_replica(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        d = service.shards[0]
        reference = np.array(d.inner.table._cells, copy=True)
        d.crash_replica(3)
        manager.on_crash(0, 3, 1.0)
        assert not np.array_equal(
            d.table._cells[3 * d.inner_rows:4 * d.inner_rows], reference
        )
        heal_until(manager, lambda: manager.state_of(0, 3) == "healthy")
        assert np.array_equal(
            d.table._cells[3 * d.inner_rows:4 * d.inner_rows], reference
        )
        assert manager.stats.rebuilds == 1
        assert manager.stats.rows_rebuilt == d.inner_rows
        # The revived replica answers queries again.
        rng = np.random.default_rng(0)
        xs = np.asarray(keys[:4], dtype=np.int64)
        assert list(d.query_batch_on(xs, 3, rng)) == [True] * 4

    def test_stuck_cells_diagnosed_incorrigible(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N)
        d = service.shards[0]
        block = d.inner_rows * d.table.s
        inner_flats = np.asarray([3, block - 2], dtype=np.int64)
        rows, cols = np.divmod(inner_flats, d.table.s)
        values = np.asarray(
            [
                int(d.table._cells[2 * d.inner_rows + r, c]) ^ 0xDEAD
                for r, c in zip(rows, cols)
            ],
            dtype=np.uint64,
        )
        d.stick_cells(2, inner_flats, values)
        machine = manager.machines[(0, 2)]
        heal_until(
            manager,
            lambda: machine.incorrigible
            and machine.state == "quarantined",
        )
        assert manager.stats.stuck_cells >= 1
        assert 2 not in service.routers[0].live
        # Further healing never resurrects it.
        for i in range(30):
            manager.tick(500.0 + i)
        assert machine.state == "quarantined" and machine.incorrigible

    def test_degradation_sheds_low_priority_only(self, instance):
        keys, N = instance
        service, manager = healing_service(keys, N, capacity=10)
        manager.on_corruption(0, 1, 1.0)
        manager.on_crash(0, 2, 1.0)
        manager._update_degradation()
        admission = service.admission
        assert admission.degraded_fraction == pytest.approx(3 / 5)
        assert admission.effective_capacity == 6
        admission.in_flight = 6
        with pytest.raises(DegradedModeError) as exc_info:
            admission.admit(priority=0)
        assert exc_info.value.fraction == pytest.approx(3 / 5)
        admission.admit(priority=1)  # high priority keeps the full queue
        assert admission.degraded_shed == 1

    def test_healing_without_injector_rejected(self, instance):
        keys, N = instance
        service = build_service(
            keys, N, num_shards=1, replicas=3, seed=3
        )
        service.enable_healing()
        with pytest.raises(HealError):
            require_armed(service)


class TestVerifiedDispatch:
    def test_corrupt_replica_never_serves_wrong_answers(self, instance):
        # Whole-block corruption on one replica: the witness echo must
        # catch it, the vote must quarantine it, scrubbing must repair
        # it, and the client must never see a wrong answer.
        keys, N = instance
        service, manager = healing_service(keys, N, max_delay=0.25)
        d = service.shards[0]
        reference = np.array(d.inner.table._cells, copy=True)
        block = d.inner_rows * d.table.s
        rng = np.random.default_rng(11)
        for c in range(block):
            d.corrupt_cell(1, c, int(rng.integers(1, 1 << 63)))
        report = run_loadgen(
            service, uniform_distribution(keys, N), 600,
            rate=64.0, seed=13, expected_keys=keys,
        )
        assert report.wrong_answers == 0
        assert manager.violations == 0
        history = [t[2] for t in manager.machines[(0, 1)].transitions]
        assert "quarantined" in history
        assert manager.state_of(0, 1) == "healthy"
        assert np.array_equal(
            d.table._cells[d.inner_rows:2 * d.inner_rows], reference
        )


class TestDisabledByteIdentity:
    def _digest(self, keys, N, *, armed, requests=300):
        faults = FaultConfig(armed=True) if armed else None
        service = build_service(
            keys, N, num_shards=2, replicas=3, seed=5, faults=faults,
        )
        run_loadgen(
            service, uniform_distribution(keys, N), requests,
            rate=64.0, seed=9, expected_keys=keys,
        )
        return tuple(s.table.counter.digest() for s in service.shards)

    def test_armed_but_unhealed_is_byte_identical(self, instance):
        # The healing-disabled gate: with enable_healing never called,
        # probe accounting is byte-identical whether or not the fault
        # layer is armed — the new serve-path branches are all guarded
        # by `service.health is not None`.
        keys, N = instance
        assert self._digest(keys, N, armed=False) == self._digest(
            keys, N, armed=True
        )

    def test_disabled_runs_are_deterministic(self, instance):
        keys, N = instance
        a = self._digest(keys, N, armed=False)
        assert a == self._digest(keys, N, armed=False)

    def test_enabling_healing_changes_accounting_on_purpose(self, instance):
        # Sanity check that the byte-identity test has teeth: verified
        # dispatch (witness echo) visibly changes the probe stream.
        keys, N = instance
        service, _ = healing_service(keys, N, replicas=3, seed=5)
        run_loadgen(
            service, uniform_distribution(keys, N), 300,
            rate=64.0, seed=9, expected_keys=keys,
        )
        enabled = tuple(s.table.counter.digest() for s in service.shards)
        assert enabled != self._digest(keys, N, armed=True)


class TestStopVsHealingRace:
    def test_stop_drains_through_inflight_quarantine(self, instance):
        # satellite: stop() racing an in-flight quarantine + rebuild.
        # A replica crashes while queries are pending; stop() must still
        # drain every ticket — no query lost, none double-answered, all
        # answers correct.
        keys, N = instance

        async def scenario():
            service, manager = healing_service(
                keys, N, max_batch=1000, max_delay=60.0
            )
            d = service.shards[0]
            server = AsyncDictionaryServer(service)
            await server.start()
            xs = [int(k) for k in keys[:12]] + [1, 2]
            tasks = [
                asyncio.create_task(server.query(x)) for x in xs
            ]
            await asyncio.sleep(0.01)  # tickets submitted, none flushed
            d.crash_replica(2)  # crash lands under the pending batch
            await server.stop()
            answers = await asyncio.wait_for(
                asyncio.gather(*tasks), timeout=5.0
            )
            return service, manager, xs, answers

        service, manager, xs, answers = asyncio.run(scenario())
        member = set(keys.tolist())
        assert answers == [x in member for x in xs]
        # Exactly one answer per query: completed matches submissions.
        assert service.stats.completed == len(xs)
        assert service.admission.in_flight == 0
        assert manager.violations == 0
        # The crash was noticed and quarantined mid-drain.
        assert manager.machines[(0, 2)].state in (
            "quarantined", "rebuilding", "healthy"
        )
        assert manager.stats.quarantines >= 1
