"""Event bus semantics: zero overhead off, ordered fan-out on."""

import pytest

from repro.telemetry import (
    BUS,
    EVENT_TYPES,
    AdmissionEvent,
    EventBus,
    ProbeEvent,
    get_bus,
)


def test_global_bus_starts_disabled():
    assert get_bus() is BUS
    assert BUS.active is False
    assert BUS.subscribers == 0


def test_subscribe_toggles_active():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    assert bus.active is True
    bus.emit(ProbeEvent(step=0, probes=2))
    bus.unsubscribe(seen.append)
    assert bus.active is False
    assert seen == [ProbeEvent(step=0, probes=2)]


def test_emit_preserves_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe(lambda e: order.append("first"))
    bus.subscribe(lambda e: order.append("second"))
    bus.emit(ProbeEvent(step=0, probes=1))
    assert order == ["first", "second"]


def test_emit_on_disabled_bus_is_harmless():
    bus = EventBus()
    bus.emit(ProbeEvent(step=0, probes=1))  # no subscribers: no-op


def test_subscribed_context_restores_state():
    bus = EventBus()
    seen = []
    with bus.subscribed(seen.append):
        assert bus.active
        bus.emit(ProbeEvent(step=1, probes=3))
    assert not bus.active
    assert seen[0].probes == 3


def test_capture_filters_by_type():
    bus = EventBus()
    with bus.capture(AdmissionEvent) as events:
        bus.emit(ProbeEvent(step=0, probes=1))
        bus.emit(AdmissionEvent(admitted=True, depth=1, capacity=8))
    assert len(events) == 1
    assert events[0].admitted is True
    assert not bus.active


def test_capture_unfiltered_takes_everything():
    bus = EventBus()
    with bus.capture() as events:
        bus.emit(ProbeEvent(step=0, probes=1))
        bus.emit(AdmissionEvent(admitted=False, depth=8, capacity=8))
    assert len(events) == 2


def test_events_are_frozen():
    event = ProbeEvent(step=0, probes=1)
    with pytest.raises(Exception):
        event.probes = 2


def test_event_types_registry_is_complete():
    # Every event class the library emits is introspectable.
    from repro.telemetry.events import (
        CheckpointEvent,
        EpochEvent,
        HealEvent,
        HealthTransitionEvent,
        RebuildEvent,
        ReconfigEvent,
        RecoveryEvent,
        UpdateEvent,
    )

    assert ProbeEvent in EVENT_TYPES
    assert AdmissionEvent in EVENT_TYPES
    assert HealthTransitionEvent in EVENT_TYPES
    assert HealEvent in EVENT_TYPES
    assert UpdateEvent in EVENT_TYPES
    assert EpochEvent in EVENT_TYPES
    assert RebuildEvent in EVENT_TYPES
    assert ReconfigEvent in EVENT_TYPES
    assert CheckpointEvent in EVENT_TYPES
    assert RecoveryEvent in EVENT_TYPES
    assert len(EVENT_TYPES) == 17
    assert all(isinstance(t, type) for t in EVENT_TYPES)


def test_table_reads_emit_probe_events():
    import numpy as np

    from repro.cellprobe import Table

    table = Table(rows=2, s=8)
    with BUS.capture(ProbeEvent) as events:
        table.read(0, 3, step=0)
        table.read_batch(1, np.array([0, -1, 5]), step=1)
    assert [e.probes for e in events] == [1, 2]
    assert [e.step for e in events] == [0, 1]
    assert not BUS.active


def test_finish_execution_emits():
    from repro.cellprobe import ProbeCounter
    from repro.telemetry import ExecutionEvent

    counter = ProbeCounter(4)
    with BUS.capture(ExecutionEvent) as events:
        counter.finish_execution(3)
    assert events == [ExecutionEvent(count=3)]
