"""Integration: observation is free, hubs record the truth, E20 structure.

The property test here is the PR's central safety claim: turning the
full telemetry layer on (event-bus subscriber + metrics + tracing +
hub) leaves per-cell, per-step probe accounting **byte-identical** to
the same seeded run with telemetry absent — instrumentation guards
never construct events, never touch an RNG stream, never reorder work.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LowContentionDictionary
from repro.experiments.common import make_instance, uniform_distribution
from repro.serve import build_service, run_loadgen
from repro.telemetry import (
    BUS,
    BusMetricsCollector,
    ContentionMonitor,
    ReplicaBalanceMonitor,
    TelemetryHub,
    collect_bus_metrics,
)


def bus_is_quiet():
    return not BUS.active and BUS.subscribers == 0


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_bus_collection_is_byte_invisible_to_probe_accounting(seed):
    """Property: identical seeds => identical counters, observed or not."""
    keys, N = make_instance(48, seed)
    queries = np.random.default_rng(seed + 1).integers(0, N, size=200)

    def run(observe):
        d = LowContentionDictionary(
            keys, N, rng=np.random.default_rng(seed + 2)
        )
        rng = np.random.default_rng(seed + 3)
        if observe:
            with collect_bus_metrics() as reg:
                answers = d.query_batch(queries, rng=rng)
            return d, answers, reg
        answers = d.query_batch(queries, rng=rng)
        return d, answers, None

    d_bare, ans_bare, _ = run(observe=False)
    d_obs, ans_obs, reg = run(observe=True)
    assert bus_is_quiet()
    counts_bare = d_bare.table.counter.counts_per_step()
    counts_obs = d_obs.table.counter.counts_per_step()
    assert counts_bare.tobytes() == counts_obs.tobytes()
    assert np.array_equal(ans_bare, ans_obs)
    # And the observer saw exactly what the counter recorded.
    assert reg.counter("probes").value == int(counts_obs.sum())
    assert reg.counter("executions").value == d_obs.table.counter.executions


def test_attached_hub_is_byte_invisible_to_the_service():
    keys, N = make_instance(64, seed=23)
    dist = uniform_distribution(keys, N)

    def run(with_hub):
        svc = build_service(
            keys, N, num_shards=1, replicas=3, max_batch=8,
            max_delay=0.2, seed=5,
        )
        hub = None
        if with_hub:
            hub = TelemetryHub(metrics=True, tracing=True)
            svc.attach_telemetry(hub)
        report = run_loadgen(
            svc, dist, 400, discipline="open", rate=64.0, seed=7,
            expected_keys=keys,
        )
        return svc, report, hub

    svc_off, rep_off, _ = run(False)
    svc_on, rep_on, hub = run(True)
    assert rep_off.row() == rep_on.row()
    assert (
        svc_off.cell_load_matrix(0).tobytes()
        == svc_on.cell_load_matrix(0).tobytes()
    )
    # The hub's books agree with the service's own lifetime stats.
    assert (
        hub.metrics.counter("serve_completed").value
        == svc_on.stats.completed == 400
    )
    assert hub.metrics.counter("serve_probes").value == svc_on.stats.probes
    assert (
        hub.metrics.counter("serve_batches").value == svc_on.stats.batches
    )


def test_hub_trace_tree_follows_the_request_path():
    keys, N = make_instance(64, seed=3)
    svc = build_service(
        keys, N, num_shards=1, replicas=2, max_batch=4, max_delay=0.1,
        seed=4,
    )
    hub = TelemetryHub(metrics=False, tracing=True)
    svc.attach_telemetry(hub)
    run_loadgen(
        svc, uniform_distribution(keys, N), 40, discipline="open",
        rate=64.0, seed=6, expected_keys=keys,
    )
    tracer = hub.tracer
    names = {s.name for s in tracer.spans}
    assert names == {
        "request", "admission", "batch", "route", "replica", "table-probe",
    }
    roots = tracer.roots()
    assert len(roots) == 40  # one root span per admitted request
    assert all(s.name == "request" and s.finished for s in roots)
    # Every batch hangs off a request; every replica span off a batch.
    by_id = {s.span_id: s for s in tracer.spans}
    for span in tracer.spans:
        if span.name == "batch":
            assert by_id[span.parent_id].name == "request"
        if span.name == "replica":
            assert by_id[span.parent_id].name == "batch"
        if span.name == "table-probe":
            assert by_id[span.parent_id].name == "replica"


def test_hub_runs_monitors_and_snapshots_alarms():
    keys, N = make_instance(64, seed=9)
    svc = build_service(
        keys, N, num_shards=1, replicas=3, router="round-robin",
        max_batch=8, max_delay=0.2, seed=11,
    )
    # An impossible prediction (phi = 0 where probes land is not
    # constructible; instead use a monitor whose min_expected gate is
    # tiny and whose prediction is uniformly tiny) => alarms fire.
    steps_cells = svc.cell_load_matrix(0)
    phi = np.full((8, steps_cells.shape[1]), 1e-4)
    mon = ContentionMonitor(phi, sigma_threshold=3.0, min_expected=0.01)
    bal = ReplicaBalanceMonitor(3, min_total=10_000_000)  # gated off
    hub = TelemetryHub(
        metrics=True, contention=mon, balance=bal, check_every=2
    )
    svc.attach_telemetry(hub)
    run_loadgen(
        svc, uniform_distribution(keys, N), 300, discipline="open",
        rate=64.0, seed=13, expected_keys=keys,
    )
    assert mon.checks > 0
    assert hub.alarms  # probes landed where the fake prediction said not
    assert (
        hub.metrics.counter("telemetry_alarms").value == len(hub.alarms)
    )
    snap = hub.snapshot()
    assert snap["alarms"][0]["kind"] == "hot-cell"
    assert bal.checks > 0 and bal.alarms == []  # min_total gate held


def test_e20_registered_and_fast_mode_passes():
    from repro.experiments import run_experiment

    result = run_experiment("E20", fast=True, seed=0)
    assert result.experiment_id == "E20"
    parts = [r["part"] for r in result.rows]
    assert parts == ["A:identical", "B:uniform", "C:hot-cell", "D:router"]
    a, b, c, d = result.rows
    assert a["byte_identical"] is True
    assert a["probes_bare"] == a["probes_observed"] == a["bus_probes"]
    assert b["false_alarms"] == 0 and b["checks"] >= 100
    assert c["alarm_batch"] != "never"
    assert c["alarm_batch"] <= c["budget"]
    assert d["healthy_alarms"] == 0
    assert d["stuck_alarm_check"] != "never"
    assert bus_is_quiet()


def test_bus_collector_accepts_external_registry():
    from repro.telemetry import MetricsRegistry, ProbeEvent

    reg = MetricsRegistry()
    with BusMetricsCollector(reg) as collector:
        assert collector.registry is reg
        BUS.emit(ProbeEvent(step=0, probes=5))
    assert reg.counter("probes").value == 5
    assert bus_is_quiet()
