"""Metrics: counters/gauges/histogram sketch, snapshot, merge, exposition."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TelemetryError
from repro.io.results import load_snapshot, save_snapshot
from repro.telemetry import (
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter("reqs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(3.0)
        g.inc(-1.0)
        assert g.value == 2.0

    def test_invalid_names_rejected(self):
        with pytest.raises(TelemetryError):
            Counter("bad name")
        with pytest.raises(TelemetryError):
            Gauge("9starts_with_digit")


class TestLogHistogram:
    def test_exact_moments_sketched_quantiles(self):
        h = LogHistogram("lat")
        for v in [0.0, 1.0, 2.0, 4.0, 8.0]:
            h.record(v)
        assert h.count == 5
        assert h.sum == 15.0
        assert h.mean == 3.0
        assert h.min == 0.0 and h.max == 8.0
        assert h.zeros == 1
        # Geometric buckets: any quantile within ~9% relative error.
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) <= 8.0
        assert h.quantile(0.5) == pytest.approx(2.0, rel=0.10)

    def test_record_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(1.0, size=500)
        a, b = LogHistogram("a"), LogHistogram("b")
        a.record_many(values)
        for v in values:
            b.record(v)
        assert a.buckets == b.buckets
        assert a.count == b.count and a.sum == pytest.approx(b.sum)

    def test_rejects_bad_values(self):
        h = LogHistogram("h")
        with pytest.raises(TelemetryError):
            h.record(-1.0)
        with pytest.raises(TelemetryError):
            h.record(float("nan"))
        with pytest.raises(TelemetryError):
            h.record_many([1.0, -2.0])

    def test_merge_requires_same_geometry(self):
        a = LogHistogram("a")
        b = LogHistogram("b", growth=2.0)
        with pytest.raises(TelemetryError):
            a.merge(b)

    @given(
        left=st.lists(
            st.floats(min_value=0.0, max_value=1e6), max_size=50
        ),
        right=st.lists(
            st.floats(min_value=0.0, max_value=1e6), max_size=50
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_equals_combined_stream(self, left, right):
        separate = LogHistogram("a")
        separate.record_many(left)
        other = LogHistogram("b")
        other.record_many(right)
        separate.merge(other)
        combined = LogHistogram("c")
        combined.record_many(left + right)
        assert separate.buckets == combined.buckets
        assert separate.count == combined.count
        assert separate.zeros == combined.zeros
        assert separate.sum == pytest.approx(combined.sum)


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("serve_requests", "requests").inc(10)
    reg.gauge("in_flight", "depth").set(3.0)
    h = reg.histogram("latency", "seconds")
    h.record_many([0.0, 0.1, 0.2, 0.4])
    return reg


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_snapshot_round_trip(self):
        reg = populated_registry()
        snap = reg.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        assert snap["kind"] == "repro-metrics"
        back = MetricsRegistry.from_snapshot(json.loads(json.dumps(snap)))
        assert back.snapshot() == snap

    def test_snapshot_round_trip_through_files(self, tmp_path):
        reg = populated_registry()
        path = save_snapshot(reg.snapshot(), tmp_path / "snap.json")
        loaded = load_snapshot(path)
        assert MetricsRegistry.from_snapshot(loaded).snapshot() == (
            reg.snapshot()
        )

    def test_from_snapshot_tolerates_unknown_keys(self):
        # Forward compatibility: a newer writer may add keys anywhere.
        snap = populated_registry().snapshot()
        snap["future_section"] = {"x": 1}
        snap["counters"]["serve_requests"]["future_field"] = "y"
        snap["histograms"]["latency"]["future_field"] = [1, 2]
        back = MetricsRegistry.from_snapshot(snap)
        assert back.counter("serve_requests").value == 10
        assert back.histogram("latency").count == 4

    def test_from_snapshot_rejects_newer_version(self):
        snap = populated_registry().snapshot()
        snap["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(TelemetryError):
            MetricsRegistry.from_snapshot(snap)

    def test_merge_folds_every_kind(self):
        a, b = populated_registry(), populated_registry()
        a.merge(b)
        assert a.counter("serve_requests").value == 20
        assert a.gauge("in_flight").value == 3.0  # max, not sum
        assert a.histogram("latency").count == 8
        # Merging into an empty registry copies everything.
        c = MetricsRegistry()
        c.merge(b)
        assert c.snapshot() == b.snapshot()

    def test_prometheus_exposition(self):
        text = populated_registry().to_prometheus()
        assert "# TYPE serve_requests counter" in text
        assert "serve_requests_total 10" in text
        assert "in_flight 3" in text
        assert '# TYPE latency histogram' in text
        assert 'latency_bucket{le="0"} 1' in text
        assert 'latency_bucket{le="+Inf"} 4' in text
        assert "latency_count 4" in text
        assert text.endswith("\n")

    def test_rows_for_table_rendering(self):
        rows = populated_registry().rows()
        kinds = {r["metric"]: r["kind"] for r in rows}
        assert kinds == {
            "serve_requests": "counter",
            "in_flight": "gauge",
            "latency": "histogram",
        }
        hist_row = next(r for r in rows if r["kind"] == "histogram")
        assert hist_row["value"] == 4 and hist_row["max"] == 0.4


def test_empty_histogram_snapshot_round_trips():
    reg = MetricsRegistry()
    reg.histogram("empty")
    back = MetricsRegistry.from_snapshot(reg.snapshot())
    h = back.histogram("empty")
    assert h.count == 0 and h.min == math.inf
    assert math.isnan(h.quantile(0.5))
