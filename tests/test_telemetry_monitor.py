"""Monitors: the Binomial(Q, Phi) law, corrected thresholds, typed alarms."""

import math

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    ContentionMonitor,
    HotCellAlarm,
    ReplicaBalanceMonitor,
    RouterSkewAlarm,
)


def uniform_phi(steps=2, cells=50, p=0.01):
    return np.full((steps, cells), p)


class TestContentionMonitor:
    def test_validation(self):
        with pytest.raises(TelemetryError):
            ContentionMonitor(np.zeros(4))  # not a matrix
        with pytest.raises(TelemetryError):
            ContentionMonitor(np.full((2, 2), 1.5))  # not probabilities
        with pytest.raises(TelemetryError):
            ContentionMonitor(uniform_phi(), sigma_threshold=0.0)
        mon = ContentionMonitor(uniform_phi())
        with pytest.raises(TelemetryError):
            mon.observe(np.zeros((2, 3)), 10)  # wrong cell count
        with pytest.raises(TelemetryError):
            mon.observe(np.zeros((2, 50)), -1)

    def test_effective_threshold_grows_with_cells(self):
        mon = ContentionMonitor(uniform_phi(), sigma_threshold=3.0)
        assert mon.effective_threshold(1) == 3.0
        assert mon.effective_threshold(100) == pytest.approx(
            3.0 + math.sqrt(2 * math.log(100))
        )

    def test_gate_suppresses_small_samples(self):
        # Expected counts below min_expected: nothing is tested, so even
        # a wildly skewed count cannot alarm on noise from tiny samples.
        mon = ContentionMonitor(uniform_phi(p=0.01), min_expected=10.0)
        counts = np.zeros((2, 50))
        counts[0, 0] = 500
        assert mon.observe(counts, queries=100) == []  # E = 1 < 10
        assert mon.cells_tested == 0

    def test_exact_counts_never_alarm(self):
        mon = ContentionMonitor(uniform_phi(p=0.05))
        q = 1000
        counts = np.full((2, 50), q * 0.05)
        assert mon.observe(counts, q) == []
        assert mon.cells_tested == 100
        assert mon.first_alarm_check is None

    def test_hot_cell_alarms_with_typed_value(self):
        mon = ContentionMonitor(uniform_phi(p=0.05), sigma_threshold=3.0)
        q = 1000
        counts = np.full((2, 50), q * 0.05)
        counts[1, 7] = q * 0.05 + 200  # ~29 sigma excess
        new = mon.observe(counts, q)
        assert len(new) == 1
        alarm = new[0]
        assert isinstance(alarm, HotCellAlarm)
        assert (alarm.step, alarm.cell) == (1, 7)
        assert alarm.kind == "hot-cell"
        assert alarm.z > alarm.threshold
        assert alarm.check == 1 and mon.first_alarm_check == 1
        assert alarm.row()["observed"] == int(counts[1, 7])

    def test_one_sided_deficits_do_not_alarm(self):
        mon = ContentionMonitor(uniform_phi(p=0.05))
        counts = np.full((2, 50), 50.0)
        counts[0, 0] = 0.0  # huge deficit, not an excess
        assert mon.observe(counts, 1000) == []

    def test_fewer_measured_steps_than_phi_is_fine(self):
        mon = ContentionMonitor(uniform_phi(steps=3, p=0.05))
        counts = np.full((1, 50), 50.0)
        # Missing steps count as zero (deficit: silent, one-sided test).
        assert mon.observe(counts, 1000) == []

    def test_reset(self):
        mon = ContentionMonitor(uniform_phi(p=0.05))
        counts = np.full((2, 50), 50.0)
        counts[0, 0] = 500.0
        mon.observe(counts, 1000)
        assert mon.alarms and mon.checks == 1
        mon.reset()
        assert mon.alarms == [] and mon.checks == 0
        assert mon.first_alarm_check is None


class TestReplicaBalanceMonitor:
    def test_validation(self):
        with pytest.raises(TelemetryError):
            ReplicaBalanceMonitor(1)
        with pytest.raises(TelemetryError):
            ReplicaBalanceMonitor(3, cluster=0.5)
        mon = ReplicaBalanceMonitor(3)
        with pytest.raises(TelemetryError):
            mon.observe(np.array([1, 2]))

    def test_min_total_gates_checks(self):
        mon = ReplicaBalanceMonitor(2, min_total=100)
        assert mon.observe(np.array([50, 0])) == []  # below the gate
        assert mon.checks == 1

    def test_balanced_loads_stay_quiet(self):
        mon = ReplicaBalanceMonitor(4, min_total=100)
        assert mon.observe(np.array([250, 251, 249, 250])) == []

    def test_stuck_router_alarms(self):
        mon = ReplicaBalanceMonitor(3, min_total=100)
        new = mon.observe(np.array([900, 50, 50]))
        assert len(new) == 1
        alarm = new[0]
        assert isinstance(alarm, RouterSkewAlarm)
        assert alarm.replica == 0 and alarm.kind == "router-skew"
        assert alarm.total == 1000
        assert mon.first_alarm_check == 1

    def test_cluster_correction_widens_tolerance(self):
        # Whole-batch routing moves loads in clusters; the same skew that
        # alarms a per-probe model must survive the cluster correction.
        loads = np.array([420, 290, 290])
        assert ReplicaBalanceMonitor(3, min_total=100).observe(loads)
        quiet = ReplicaBalanceMonitor(3, min_total=100, cluster=64.0)
        assert quiet.observe(loads) == []

    def test_effective_threshold_uses_replica_count(self):
        mon = ReplicaBalanceMonitor(4, sigma_threshold=3.0)
        assert mon.effective_threshold() == pytest.approx(
            3.0 + math.sqrt(2 * math.log(4))
        )
