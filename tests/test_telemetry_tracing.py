"""Tracer semantics: deterministic ids, tree structure, both exports."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import TRACE_VERSION, Tracer


def make_tree(tracer):
    root = tracer.start("request", 0.0, key=7)
    child = tracer.start("batch", 0.5, parent=root, size=4)
    tracer.instant("route", 0.5, parent=child, replica=2)
    tracer.finish(child, 1.0)
    tracer.finish(root, 1.5)
    return root, child


def test_ids_are_sequential_and_deterministic():
    t1, t2 = Tracer(), Tracer()
    for t in (t1, t2):
        make_tree(t)
    assert [s.span_id for s in t1.spans] == [1, 2, 3]
    assert [s.as_dict() for s in t1.spans] == [s.as_dict() for s in t2.spans]


def test_tree_structure():
    tracer = Tracer()
    root, child = make_tree(tracer)
    assert tracer.roots() == [root]
    assert tracer.children_of(root) == [child]
    assert len(tracer.children_of(child)) == 1
    assert root.duration == pytest.approx(1.5)
    assert root.finished


def test_instant_has_zero_duration():
    tracer = Tracer()
    span = tracer.instant("route", 2.0)
    assert span.start == span.end == 2.0
    assert span.duration == 0.0


def test_finish_validation():
    tracer = Tracer()
    span = tracer.start("request", 1.0)
    with pytest.raises(TelemetryError):
        tracer.finish(span, 0.5)  # before start
    tracer.finish(span, 1.0)
    with pytest.raises(TelemetryError):
        tracer.finish(span, 2.0)  # already finished


def test_max_spans_caps_memory_but_ids_advance():
    tracer = Tracer(max_spans=2)
    kept = [tracer.instant("a", 0.0), tracer.instant("b", 0.0)]
    dropped = tracer.instant("c", 0.0)
    assert len(tracer) == 2
    assert tracer.dropped == 1
    assert dropped.span_id == 3  # id allocation is unaffected
    assert [s.span_id for s in kept] == [1, 2]
    with pytest.raises(TelemetryError):
        Tracer(max_spans=0)


def test_json_export_is_versioned():
    tracer = Tracer()
    make_tree(tracer)
    open_span = tracer.start("late", 9.0)
    payload = tracer.to_json()
    assert payload["version"] == TRACE_VERSION
    assert payload["kind"] == "repro-trace"
    assert len(payload["spans"]) == 4
    # Open spans survive the JSON export (crash dumps stay inspectable).
    assert payload["spans"][-1]["end"] is None
    assert payload["spans"][-1]["span_id"] == open_span.span_id
    json.dumps(payload)  # plain JSON types only


def test_chrome_export_shape():
    tracer = Tracer()
    make_tree(tracer)
    tracer.start("open", 5.0)  # open spans are dropped by chrome export
    payload = tracer.to_chrome()
    events = payload["traceEvents"]
    assert len(events) == 3
    phases = {e["name"]: e["ph"] for e in events}
    assert phases == {"request": "X", "batch": "X", "route": "i"}
    req = next(e for e in events if e["name"] == "request")
    assert req["ts"] == 0.0 and req["dur"] == pytest.approx(1.5e6)
    assert req["args"]["span_id"] == 1 and req["args"]["key"] == 7
    route = next(e for e in events if e["name"] == "route")
    assert route["args"]["parent_id"] == 2


def test_save_round_trips_both_formats(tmp_path):
    tracer = Tracer()
    make_tree(tracer)
    chrome = json.loads(tracer.save(tmp_path / "t.chrome.json").read_text())
    assert "traceEvents" in chrome
    raw = json.loads(
        tracer.save(tmp_path / "t.json", fmt="json").read_text()
    )
    assert raw["version"] == TRACE_VERSION
    with pytest.raises(TelemetryError):
        tracer.save(tmp_path / "t.bin", fmt="protobuf")
