"""Group-histogram codec and word-packing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.bits import (
    WORD_BITS,
    decode_unary_histogram,
    encode_unary_histogram,
    pack_pair,
    unary_histogram_bit_length,
    unpack_pair,
)


def test_empty_histogram():
    assert encode_unary_histogram([]) == []
    assert decode_unary_histogram([], 0) == []


def test_single_bucket():
    assert decode_unary_histogram(encode_unary_histogram([5]), 1) == [5]
    assert decode_unary_histogram(encode_unary_histogram([0]), 1) == [0]


def test_known_encoding():
    # loads (1, 2): bits 1 0 1 1 0 -> little-endian word 0b01101 = 13.
    assert encode_unary_histogram([1, 2]) == [0b01101]


def test_bit_length():
    assert unary_histogram_bit_length([3, 0, 2]) == 3 + 0 + 2 + 3


def test_word_boundary_crossing():
    # Force the unary string across a word boundary with tiny words.
    loads = [5, 7, 3]
    words = encode_unary_histogram(loads, word_bits=8)
    assert len(words) == (sum(loads) + len(loads) + 7) // 8
    assert decode_unary_histogram(words, 3, word_bits=8) == loads


def test_truncated_histogram_raises():
    # Trailing zero bits of the last word decode as empty buckets, so a
    # "too many buckets" request only fails once the words run out of bits.
    words = encode_unary_histogram([3, 3], word_bits=8)
    with pytest.raises(ParameterError):
        decode_unary_histogram(words, 20, word_bits=8)


def test_negative_load_rejected():
    with pytest.raises(ParameterError):
        encode_unary_histogram([1, -1])


@given(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=30),
    st.sampled_from([8, 16, 64]),
)
def test_histogram_roundtrip(loads, word_bits):
    words = encode_unary_histogram(loads, word_bits)
    assert all(0 <= w < (1 << word_bits) for w in words)
    assert decode_unary_histogram(words, len(loads), word_bits) == loads


@given(
    st.integers(min_value=0, max_value=(1 << 31) - 1),
    st.integers(min_value=0, max_value=(1 << 31) - 1),
)
def test_pack_pair_roundtrip(a, b):
    word = pack_pair(a, b)
    assert 0 <= word < (1 << WORD_BITS)
    assert unpack_pair(word) == (a, b)


def test_pack_pair_range_check():
    with pytest.raises(ParameterError):
        pack_pair(1 << 31, 0)
    with pytest.raises(ParameterError):
        pack_pair(0, -1)
