"""Primality and prime-search tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.primes import (
    MAX_VECTOR_PRIME,
    field_prime_for_universe,
    is_prime,
    next_prime,
    prev_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 101, 997, 7919, 104729, 2147483647]
KNOWN_COMPOSITES = [0, 1, 4, 6, 9, 100, 1000, 7917, 104730, 2147483649]
# Strong pseudoprimes to small bases — Miller-Rabin stress cases.
PSEUDOPRIME_TRAPS = [2047, 1373653, 25326001, 3215031751, 3825123056546413051]


def test_known_primes():
    assert all(is_prime(p) for p in KNOWN_PRIMES)


def test_known_composites():
    assert not any(is_prime(c) for c in KNOWN_COMPOSITES)


def test_pseudoprime_traps_are_composite():
    assert not any(is_prime(n) for n in PSEUDOPRIME_TRAPS)


def test_next_prime_basics():
    assert next_prime(0) == 2
    assert next_prime(2) == 2
    assert next_prime(8) == 11
    assert next_prime(7919) == 7919
    assert next_prime(7920) == 7927


def test_prev_prime_basics():
    assert prev_prime(2) == 2
    assert prev_prime(10) == 7
    assert prev_prime(7919) == 7919
    with pytest.raises(ParameterError):
        prev_prime(1)


@given(st.integers(min_value=2, max_value=200_000))
def test_next_prime_is_prime_and_minimal(n):
    p = next_prime(n)
    assert p >= n and is_prime(p)
    # No prime strictly between n and p.
    assert not any(is_prime(k) for k in range(n, p))


@given(st.integers(min_value=2, max_value=10_000))
def test_is_prime_matches_trial_division(n):
    by_trial = n >= 2 and all(n % d for d in range(2, int(n**0.5) + 1))
    assert is_prime(n) == by_trial


def test_field_prime_covers_universe():
    p = field_prime_for_universe(1 << 20)
    assert is_prime(p) and p >= (1 << 20)


def test_field_prime_rejects_oversized_universe():
    with pytest.raises(ParameterError):
        field_prime_for_universe(MAX_VECTOR_PRIME + 1)
    with pytest.raises(ParameterError):
        field_prime_for_universe(0)
