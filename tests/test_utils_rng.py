"""Seeding-discipline tests."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, sample_distinct, spawn_generators


def test_as_generator_passthrough():
    g = np.random.default_rng(0)
    assert as_generator(g) is g


def test_as_generator_from_int_deterministic():
    a = as_generator(42).integers(0, 1 << 30, size=10)
    b = as_generator(42).integers(0, 1 << 30, size=10)
    assert np.array_equal(a, b)


def test_as_generator_from_seedsequence():
    ss = np.random.SeedSequence(5)
    a = as_generator(ss).integers(0, 1 << 30, size=5)
    b = as_generator(np.random.SeedSequence(5)).integers(0, 1 << 30, size=5)
    assert np.array_equal(a, b)


def test_spawn_generators_independent_streams():
    gens = spawn_generators(7, 3)
    draws = [g.integers(0, 1 << 30, size=8) for g in gens]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_from_generator():
    g = np.random.default_rng(3)
    gens = spawn_generators(g, 2)
    assert len(gens) == 2
    assert not np.array_equal(
        gens[0].integers(0, 1 << 30, size=8),
        gens[1].integers(0, 1 << 30, size=8),
    )


def test_spawn_rejects_negative():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)


def test_sample_distinct_small_population():
    rng = np.random.default_rng(0)
    out = sample_distinct(rng, 10, 10)
    assert sorted(out.tolist()) == list(range(10))


def test_sample_distinct_large_population_floyd():
    rng = np.random.default_rng(0)
    out = sample_distinct(rng, 1 << 40, 1000)
    assert len(set(out.tolist())) == 1000
    assert int(out.max()) < (1 << 40)


def test_sample_distinct_rejects_oversample():
    with pytest.raises(ValueError):
        sample_distinct(np.random.default_rng(0), 5, 6)


def test_sample_distinct_uniformity_rough():
    # Means of repeated draws should center on the population mean.
    rng = np.random.default_rng(1)
    means = [sample_distinct(rng, 1000, 50).mean() for _ in range(200)]
    assert abs(np.mean(means) - 499.5) < 15
