"""Validation-helper tests."""

import numpy as np
import pytest

from repro.errors import DistributionError, ParameterError
from repro.utils.validation import (
    check_integer,
    check_positive_integer,
    check_probability,
    check_probability_vector,
)


def test_check_integer_accepts_numpy_ints():
    assert check_integer("x", np.int64(5)) == 5
    assert isinstance(check_integer("x", np.int64(5)), int)


def test_check_integer_rejects_bool_and_float():
    with pytest.raises(ParameterError):
        check_integer("x", True)
    with pytest.raises(ParameterError):
        check_integer("x", 1.5)


def test_check_integer_bounds():
    assert check_integer("x", 5, minimum=5, maximum=5) == 5
    with pytest.raises(ParameterError):
        check_integer("x", 4, minimum=5)
    with pytest.raises(ParameterError):
        check_integer("x", 6, maximum=5)


def test_check_positive_integer():
    assert check_positive_integer("x", 1) == 1
    with pytest.raises(ParameterError):
        check_positive_integer("x", 0)


def test_check_probability():
    assert check_probability("p", 0.0) == 0.0
    assert check_probability("p", 1) == 1.0
    for bad in (-0.01, 1.01, float("nan")):
        with pytest.raises(ParameterError):
            check_probability("p", bad)


def test_probability_vector_normalizes_tiny_drift():
    v = check_probability_vector("q", [0.5, 0.5 + 1e-12])
    assert abs(v.sum() - 1.0) < 1e-15


def test_probability_vector_rejects_bad():
    with pytest.raises(DistributionError):
        check_probability_vector("q", [0.5, 0.6])
    with pytest.raises(DistributionError):
        check_probability_vector("q", [-0.5, 1.5])
    with pytest.raises(DistributionError):
        check_probability_vector("q", [])
    with pytest.raises(DistributionError):
        check_probability_vector("q", [[0.5], [0.5]])


def test_probability_vector_custom_total():
    v = check_probability_vector("q", [0.25, 0.25], total=0.5)
    assert abs(v.sum() - 0.5) < 1e-12
