"""Stateful workload tests."""

import numpy as np
import pytest

from repro.concurrent import ConcurrentSimulator, QueuedModel
from repro.distributions import PointMass, UniformOverSet, UniformPositiveNegative
from repro.errors import ParameterError
from repro.workloads import (
    PhasedWorkload,
    TraceWorkload,
    WorkingSetWorkload,
    synthesize_trace,
)

UNIVERSE = 1 << 14


@pytest.fixture()
def base_dist(keys):
    return UniformOverSet(UNIVERSE, np.arange(100))


class TestWorkingSet:
    def test_zero_locality_matches_base(self, base_dist, rng):
        wl = WorkingSetWorkload(base_dist, locality=0.0)
        samples = wl.sample(rng, 2000)
        # Roughly uniform over the 100-key support.
        counts = np.bincount(samples, minlength=100)[:100]
        assert counts.min() > 0
        assert counts.max() / counts.mean() < 2.5

    def test_high_locality_repeats_recent_queries(self, base_dist, rng):
        wl = WorkingSetWorkload(base_dist, working_set_size=4, locality=0.95)
        samples = wl.sample(rng, 2000)
        # The working set rotates over time, so *global* counts stay
        # spread; locality shows up as repeats of RECENT queries.
        recent_hits = sum(
            samples[i] in set(samples[max(0, i - 8) : i].tolist())
            for i in range(1, samples.size)
        )
        assert recent_hits / (samples.size - 1) > 0.7

    def test_samples_stay_in_support(self, base_dist, rng):
        wl = WorkingSetWorkload(base_dist, locality=0.7)
        samples = wl.sample(rng, 500)
        assert int(samples.max()) < 100

    def test_reset(self, base_dist, rng):
        wl = WorkingSetWorkload(base_dist, locality=1.0)
        wl.sample(rng, 10)
        wl.reset()
        assert len(wl._window) == 0

    def test_validation(self, base_dist):
        with pytest.raises(ParameterError):
            WorkingSetWorkload(base_dist, working_set_size=0)
        with pytest.raises(ParameterError):
            WorkingSetWorkload(base_dist, locality=1.5)


class TestPhased:
    def test_phase_switching(self, rng):
        p0 = PointMass(UNIVERSE, 1)
        p1 = PointMass(UNIVERSE, 2)
        wl = PhasedWorkload([p0, p1], phase_length=10)
        first = wl.sample(rng, 10)
        second = wl.sample(rng, 10)
        assert np.all(first == 1) and np.all(second == 2)
        third = wl.sample(rng, 10)
        assert np.all(third == 1)  # cycles back

    def test_mid_phase_boundary_in_one_call(self, rng):
        wl = PhasedWorkload(
            [PointMass(UNIVERSE, 5), PointMass(UNIVERSE, 6)], phase_length=3
        )
        out = wl.sample(rng, 8)
        assert out.tolist() == [5, 5, 5, 6, 6, 6, 5, 5]

    def test_reset_and_current_phase(self, rng):
        wl = PhasedWorkload(
            [PointMass(UNIVERSE, 0), PointMass(UNIVERSE, 1)], phase_length=2
        )
        wl.sample(rng, 3)
        assert wl.current_phase == 1
        wl.reset()
        assert wl.current_phase == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            PhasedWorkload([])
        with pytest.raises(ParameterError):
            PhasedWorkload([PointMass(10, 1), PointMass(20, 1)])


class TestTrace:
    def test_replay_is_cyclic_and_deterministic(self, rng):
        wl = TraceWorkload([3, 1, 4, 1, 5], 10)
        a = wl.sample(rng, 7)
        assert a.tolist() == [3, 1, 4, 1, 5, 3, 1]
        wl.reset()
        assert wl.sample(rng, 5).tolist() == [3, 1, 4, 1, 5]
        assert len(wl) == 5

    def test_validation(self):
        with pytest.raises(ParameterError):
            TraceWorkload([], 10)
        with pytest.raises(ParameterError):
            TraceWorkload([10], 10)

    def test_synthesize_trace_composition(self, rng):
        keys = np.arange(0, 512, 2)
        wl = synthesize_trace(
            keys, UNIVERSE, length=4000,
            zipf_exponent=1.0, scan_fraction=0.2, noise_fraction=0.1, seed=3,
        )
        samples = wl.sample(rng, 4000)
        in_keys = np.isin(samples, keys)
        # Most queries hit keys (zipf core + scans), some noise misses.
        assert 0.75 < in_keys.mean() <= 1.0
        # Scans create runs of consecutive keys (stride 2 here).
        diffs = np.diff(samples)
        assert np.sum(diffs == 2) > 50

    def test_synthesize_validation(self):
        with pytest.raises(ParameterError):
            synthesize_trace([], UNIVERSE, 10)
        with pytest.raises(ParameterError):
            synthesize_trace([1], UNIVERSE, 0)
        with pytest.raises(ParameterError):
            synthesize_trace([1], UNIVERSE, 10, scan_fraction=0.9, noise_fraction=0.5)


class TestSimulatorIntegration:
    def test_working_set_raises_stalls_on_fks(self, fks, keys, universe_size):
        """Temporal locality creates transient hot cells: the queued
        model should stall more than under the stationary distribution."""
        base = UniformPositiveNegative(universe_size, keys, 1.0)
        stationary = ConcurrentSimulator(
            fks, base, processors=64, model=QueuedModel(),
            rng=np.random.default_rng(0),
        ).run(300)
        local = ConcurrentSimulator(
            fks,
            WorkingSetWorkload(base, working_set_size=2, locality=0.95),
            processors=64,
            model=QueuedModel(),
            rng=np.random.default_rng(0),
        ).run(300)
        assert local.stall_fraction > stationary.stall_fraction
